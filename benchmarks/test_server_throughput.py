"""Concurrent-serving throughput: aggregate committed writes, 8 vs 1 clients.

Closed-loop benchmark in the style of the paper's serving evaluation:
each client is an application that does a fixed slice of its own work
(``THINK_S``) and then submits one durable autocommit ``INSERT`` over the
wire, waiting for the acknowledgement before continuing.  A single
connection therefore leaves the server idle for most of each loop; the
serving layer's job is to overlap many such clients onto one shared
store, with WAL group commit (``REPRO_WAL_FSYNC=group``) amortising the
fsync cost that concurrent commit points would otherwise each pay.

Each client writes its own table, so the aggregate measures the serving
layer and the log — not table-lock contention.  The server runs in a real
separate process (``python -m repro.server``); every count is a
client-acknowledged commit.

Writes ``benchmarks/results/BENCH_server.json`` plus the usual text
table.  Acceptance: 8 concurrent clients must deliver at least 2x the
aggregate committed-write throughput of 1 client.

``REPRO_BENCH_SMOKE=1`` (the CI server job) shrinks the measured window
and relaxes the ratio so the end-to-end path is exercised quickly on
noisy shared runners.
"""

import json
import os
import shutil
import signal
import statistics
import subprocess
import sys
import threading
from time import perf_counter, sleep

from benchmarks.conftest import RESULTS_DIR, record
from repro.bench.reporting import format_table
from repro.client import SQLGraphClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: per-iteration application think time (client-side work per commit)
THINK_S = 0.002
DURATION_S = 0.6 if SMOKE else 2.0
REPEATS = 1 if SMOKE else 3
CLIENT_COUNTS = (1, 8)
MIN_SPEEDUP = 1.3 if SMOKE else 2.0


def _boot_server(path, fsync_mode="group"):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_WAL_FSYNC"] = fsync_mode
    env["REPRO_WAL_CHECKPOINT_EVERY"] = "0"  # measure the log, not snapshots
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--path", str(path), "--dataset", "tinker",
         "--workers", "10", "--queue", "32"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    line = proc.stdout.readline().strip()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    return proc, int(line.rsplit(":", 1)[1])


def _stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0, "server did not shut down cleanly"


def _closed_loop(port, clients, duration_s, tag):
    """Run *clients* closed-loop writers; returns acknowledged commits/s."""
    counts = [0] * clients
    failures = []

    def worker(idx):
        try:
            with SQLGraphClient("127.0.0.1", port) as client:
                client.sql(
                    f"CREATE TABLE bench_{tag}_{idx} "
                    f"(id INTEGER PRIMARY KEY, v STRING)"
                )
                deadline = perf_counter() + duration_s
                i = 0
                while perf_counter() < deadline:
                    sleep(THINK_S)  # the application's own work
                    client.sql(
                        f"INSERT INTO bench_{tag}_{idx} VALUES (?, ?)",
                        [i, f"payload-{i}"],
                    )
                    i += 1  # counted only after the commit is acknowledged
                counts[idx] = i
        except Exception as exc:  # noqa: BLE001 - surfaced via assert below
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(idx,))
               for idx in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, f"client failures: {failures[:3]}"
    total = sum(counts)
    assert total > 0, "no commits were acknowledged"
    return total / duration_s


def test_server_concurrent_write_throughput(tmp_path):
    throughput = {n: [] for n in CLIENT_COUNTS}
    for attempt in range(REPEATS):
        directory = tmp_path / f"store{attempt}"
        proc, port = _boot_server(directory)
        try:
            for clients in CLIENT_COUNTS:
                throughput[clients].append(
                    _closed_loop(port, clients, DURATION_S,
                                 f"a{attempt}c{clients}")
                )
        finally:
            _stop_server(proc)
            shutil.rmtree(directory, ignore_errors=True)

    median = {n: statistics.median(samples)
              for n, samples in throughput.items()}
    speedup = median[8] / median[1]

    # one extra point (full runs only): the same 8-client workload with
    # fsync-per-commit, to show what group commit is buying at this
    # concurrency level
    always_ops = None
    if not SMOKE:
        directory = tmp_path / "store-always"
        proc, port = _boot_server(directory, fsync_mode="always")
        try:
            always_ops = _closed_loop(port, 8, DURATION_S, "always")
        finally:
            _stop_server(proc)
            shutil.rmtree(directory, ignore_errors=True)

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "think_time_ms": THINK_S * 1000.0,
        "duration_s": DURATION_S,
        "repeats": REPEATS,
        "wal_fsync": "group",
        "committed_writes_per_s": {
            str(n): {"median": median[n], "best": max(throughput[n])}
            for n in CLIENT_COUNTS
        },
        "speedup_8_over_1": speedup,
        "committed_writes_per_s_8_clients_fsync_always": always_ops,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_server.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [[f"{n} client{'s' if n > 1 else ''}", f"{median[n]:,.0f}"]
            for n in CLIENT_COUNTS]
    if always_ops is not None:
        rows.append(["8 clients (fsync=always)", f"{always_ops:,.0f}"])
    record(
        "server_throughput",
        format_table(
            ["configuration", "committed writes/s"],
            rows,
            title=f"Concurrent serving — closed-loop clients, "
                  f"{THINK_S * 1000:.0f}ms think time, group commit "
                  f"({speedup:.2f}x at 8 clients)",
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"8 clients delivered only {speedup:.2f}x the single-client "
        f"committed-write throughput (need >= {MIN_SPEEDUP}x)"
    )
