"""Experiment E2 — paper Figure 4 (+ Table 2): vertex attribute storage.

Sixteen attribute-lookup queries comparing the JSON attribute table (VA,
with expression indexes over queried keys) against the coloring-hashed
relational attribute table (with value indexes, CASTs for numerics, and
long-string/multi-value overflow joins).

Paper result: JSON lookups are ~3x faster on average (92ms vs 265ms);
`not null` existence checks are roughly equal — both shapes asserted.
"""

import pytest

from benchmarks.conftest import RUNS, record
from repro.baselines.schemas import HashAttributeTable
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets.dbpedia import ATTRIBUTE_QUERIES


@pytest.fixture(scope="module")
def json_attrs(dbpedia_data):
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    for key in dict.fromkeys(key for __, key, __k, __a in ATTRIBUTE_QUERIES):
        store.create_attribute_index("vertex", key, sorted_index=True)
    return store


@pytest.fixture(scope="module")
def hash_attrs(dbpedia_data):
    table = HashAttributeTable()
    table.load_graph(dbpedia_data.graph)
    indexed_columns = set()
    for key in dict.fromkeys(key for __, key, __k, __a in ATTRIBUTE_QUERIES):
        column = table.coloring.column_for(key)
        if column not in indexed_columns:
            indexed_columns.add(column)
            table.create_value_index(key)
    return table


def _json_sql(store, key, kind, argument):
    va = store.schema.table_names["va"]
    expr = f"JSON_VAL(attr, '{key}')"
    if kind == "exists":
        return f"SELECT vid FROM {va} WHERE {expr} IS NOT NULL"
    if kind == "like":
        return f"SELECT vid FROM {va} WHERE {expr} LIKE '{argument}'"
    if kind == "eq_string":
        return f"SELECT vid FROM {va} WHERE {expr} = '{argument}'"
    return f"SELECT vid FROM {va} WHERE {expr} = {argument}"


def _hash_sql(table, key, kind, argument):
    if kind == "exists":
        return table.exists_sql(key)
    if kind == "like":
        return table.string_lookup_sql(key, like_pattern=argument)
    if kind == "eq_string":
        return table.string_lookup_sql(key, equals=argument)
    return table.numeric_lookup_sql(key, "=", argument)


def test_fig4_attribute_lookup(benchmark, json_attrs, hash_attrs):
    rows = []
    json_times = []
    hash_times = []
    value_query_deltas = []
    exists_query_deltas = []
    for query_id, key, kind, argument in ATTRIBUTE_QUERIES:
        json_sql = _json_sql(json_attrs, key, kind, argument)
        hash_sql = _hash_sql(hash_attrs, key, kind, argument)
        json_result = len(json_attrs.database.execute(json_sql).rows)
        hash_result = len(hash_attrs.database.execute(hash_sql).rows)
        assert json_result == hash_result, (query_id, json_result, hash_result)
        json_mean, __ = warm_cache_time(
            lambda sql=json_sql: json_attrs.database.execute(sql), runs=RUNS
        )
        hash_mean, __ = warm_cache_time(
            lambda sql=hash_sql: hash_attrs.database.execute(sql), runs=RUNS
        )
        json_times.append(json_mean)
        hash_times.append(hash_mean)
        (exists_query_deltas if kind == "exists" else value_query_deltas).append(
            hash_mean - json_mean
        )
        rows.append([
            query_id, key, kind, json_result,
            milliseconds(json_mean), milliseconds(hash_mean),
            hash_mean / json_mean if json_mean else float("nan"),
        ])
    mean_json = sum(json_times) / len(json_times)
    mean_hash = sum(hash_times) / len(hash_times)
    rows.append(["mean", "", "", "", milliseconds(mean_json),
                 milliseconds(mean_hash), mean_hash / mean_json])
    record(
        "fig4_attributes",
        format_table(
            ["query", "key", "kind", "result", "json_ms", "hash_ms",
             "hash/json"],
            rows,
            title="Figure 4 — vertex attribute lookup "
                  "(JSON attribute table vs hash attribute table)",
        ),
    )
    # paper shape: JSON wins on average, driven by value queries
    assert mean_json < mean_hash
    assert sum(value_query_deltas) > 0

    benchmark(
        lambda: json_attrs.database.execute(
            _json_sql(json_attrs, "wikiPageID", "eq_number", 3_000_000)
        )
    )
