"""Committed-write scaling across hash-partitioned shard processes.

The scatter-gather serving tier exists to scale *writes*: every shard
process owns an independent hash-partition with its own WAL, so the
commit serialization point — one log file whose flushes a device
acknowledges one at a time — multiplies with the shard count.  This
benchmark measures exactly that: a fixed pool of writer clients issues
explicit-id ``add_vertex`` autocommits through the sharded router (the
ids hash-spread across the cluster) and the figure of merit is
acknowledged, durable writes per second at 1, 2, and 4 shards.

CI boxes hide the effect twice over: one core means shard CPU cannot
run in parallel, and the scratch filesystem acknowledges ``fsync`` in
~0.1ms.  As with the ``ClientServerLink`` round-trip sleeps used by the
client/server suites (EXPERIMENTS.md "Simulation parameters"), the
commit path is therefore measured under a modeled log device:
``REPRO_WAL_FSYNC=always`` with ``REPRO_WAL_FSYNC_LATENCY_MS`` adding a
per-fsync device wait.  The sleep holds the WAL lock (a real device
serializes flushes of one log the same way) but releases the GIL, so
what the benchmark observes is the genuine architectural effect: N
shard processes flush N logs concurrently.

``REPRO_BENCH_SMOKE=1`` shrinks the write batches ~8x for CI-speed
validation of the harness.  Writes ``benchmarks/results/
BENCH_sharding.json``; its ``summary`` strings are quoted verbatim in
``docs/SHARDING.md`` and the reprolint docs-links rule fails when the
two drift apart.

Acceptance: 4 shards must deliver >= 2.5x the committed-write
throughput of a single shard on the same workload.
"""

import json
import os
import threading
from time import perf_counter

from benchmarks.conftest import RESULTS_DIR, record
from repro.bench.reporting import format_table
from repro.sharding import ShardedStore
from repro.sharding.manager import ShardManager

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: shard counts under test (the paper-style scaling sweep)
SHARD_COUNTS = (1, 2, 4)
#: fixed writer-client pool — identical offered load at every width
WRITERS = 16
#: committed writes per configuration
TOTAL_WRITES = 96 if SMOKE else 600
#: best-of over repeats: the single-shard run is fsync-dominated and
#: stable, while the wider configurations are CPU-sensitive, so a
#: background-load hiccup on a shared CI core only ever *understates*
#: scaling — the fastest sample is the one that measured the
#: architecture rather than the interference (all samples are recorded)
REPEATS = 1 if SMOKE else 3
#: modeled log-device latency per fsync (ms); a rotational-disk flush,
#: matching the hardware class of the paper's experiments (see module
#: docstring for why CI filesystems need the model at all)
FSYNC_LATENCY_MS = 15.0
#: the dataset partitioned across the cluster before the write batch
DATASET_VERTICES = 4

WORKER_ENV = {
    "REPRO_WAL_FSYNC": "always",
    "REPRO_WAL_FSYNC_LATENCY_MS": str(FSYNC_LATENCY_MS),
    "REPRO_WAL_CHECKPOINT_EVERY": "0",
}

#: explicit vertex ids start far above the dataset's so the batch never
#: collides with loaded vertices at any shard count
VID_BASE = 100_000


def _write_batch(addresses, total_writes):
    """Drive *total_writes* explicit-id autocommits from WRITERS threads.

    Every thread owns its own router connection (own sockets) and an
    interleaved id range, so the request stream stays balanced across
    shards by the hash alone — no coordinator id-allocation in the
    measured path.  Returns elapsed wall-clock seconds; a write only
    counts when ``add_vertex`` returned, i.e. the owning shard
    acknowledged the commit point.
    """
    stores = [ShardedStore.connect(addresses) for __ in range(WRITERS)]
    start_gate = threading.Event()
    failures = []

    def writer(seat):
        store = stores[seat]
        start_gate.wait()
        try:
            for vid in range(VID_BASE + seat, VID_BASE + total_writes,
                             WRITERS):
                store.add_vertex(
                    vertex_id=vid, properties={"seat": seat, "vid": vid}
                )
        except Exception as exc:  # surfaced after join
            failures.append((seat, exc))

    threads = [
        threading.Thread(target=writer, args=(seat,))
        for seat in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    start = perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start
    for store in stores:
        store.close()
    assert not failures, f"writer failures: {failures[:3]}"
    return elapsed


def _measure_once(num_shards, cluster_dir, total_writes):
    manager = ShardManager(
        num_shards, cluster_dir, dataset="tinker",
        env=WORKER_ENV, supervise=False,
        # every writer client holds a session open on every shard, plus
        # the post-batch verification connection
        workers_per_shard=WRITERS + 4,
    ).start()
    try:
        elapsed = _write_batch(manager.addresses(), total_writes)
        check = ShardedStore.connect(manager.addresses())
        try:
            committed = check.vertex_count() - DATASET_VERTICES
            per_shard = [
                check.router.call(
                    index,
                    lambda c: c.sql(
                        "SELECT COUNT(*) FROM va WHERE vid >= 0"
                    ).scalar(),
                )
                for index in range(num_shards)
            ]
        finally:
            check.close()
    finally:
        manager.stop()
    assert committed == total_writes, (
        f"{num_shards} shards: {committed} committed != "
        f"{total_writes} acknowledged"
    )
    return elapsed, per_shard


def _measure(num_shards, tmp_path, total_writes):
    samples = []
    for attempt in range(REPEATS):
        elapsed, per_shard = _measure_once(
            num_shards, tmp_path / f"cluster-{num_shards}-{attempt}",
            total_writes,
        )
        samples.append(elapsed)
    elapsed = min(samples)
    return {
        "shards": num_shards,
        "writers": WRITERS,
        "writes": total_writes,
        "elapsed_s": round(elapsed, 4),
        "elapsed_samples_s": [round(sample, 4) for sample in samples],
        "writes_per_s": int(total_writes / elapsed),
        "vertices_per_shard": per_shard,
    }


def test_sharded_write_scaling(benchmark, tmp_path):
    runs = [
        _measure(num_shards, tmp_path, TOTAL_WRITES)
        for num_shards in SHARD_COUNTS
    ]
    by_shards = {entry["shards"]: entry for entry in runs}
    scaling = (
        by_shards[4]["writes_per_s"] / by_shards[1]["writes_per_s"]
    )

    payload = {
        "workload": {
            "writers": WRITERS,
            "writes_per_config": TOTAL_WRITES,
            "repeats": REPEATS,
            "fsync_mode": WORKER_ENV["REPRO_WAL_FSYNC"],
            "fsync_latency_ms": FSYNC_LATENCY_MS,
            "smoke": SMOKE,
        },
        "runs": runs,
        "scaling_4x_over_1x": round(scaling, 3),
        # quoted verbatim in docs/SHARDING.md; the reprolint docs-links
        # rule keeps the handbook in sync with these strings
        "summary": {
            "single": (
                f"1 shard commits {by_shards[1]['writes_per_s']:,} "
                "writes/s (one WAL serializes every commit)"
            ),
            "quad": (
                f"4 shards commit {by_shards[4]['writes_per_s']:,} "
                f"writes/s — {scaling:.1f}x the single shard"
            ),
            "workload": (
                f"{WRITERS} writer clients, {TOTAL_WRITES:,} explicit-id "
                "autocommit vertex inserts per configuration, "
                "fsync-per-commit with a "
                f"{FSYNC_LATENCY_MS:g}ms modeled log device"
            ),
            "command": (
                "PYTHONPATH=src python -m pytest "
                "benchmarks/test_sharding.py -q"
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sharding.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "sharded_write_scaling",
        format_table(
            ["shards", "writes", "elapsed (s)", "writes/s", "speedup"],
            [
                [
                    entry["shards"],
                    entry["writes"],
                    f"{entry['elapsed_s']:.2f}",
                    f"{entry['writes_per_s']:,}",
                    f"{entry['writes_per_s'] / by_shards[1]['writes_per_s']:.2f}x",
                ]
                for entry in runs
            ],
            title=(
                f"Sharded committed-write scaling — {WRITERS} writers, "
                f"fsync-per-commit ({FSYNC_LATENCY_MS:g}ms device)"
            ),
        ),
    )

    # acceptance: the per-shard WAL is the commit serialization point,
    # so quadrupling the shard count must buy >= 2.5x committed-write
    # throughput (smoke batches are too short for a stable ratio; the
    # harness still requires scaling to be visible)
    floor = 1.5 if SMOKE else 2.5
    assert scaling >= floor, (
        f"4-shard scaling {scaling:.2f}x below {floor}x"
    )
    # the hash really spread the batch: no shard in the 4-way run owns
    # more than half the writes
    assert max(by_shards[4]["vertices_per_shard"]) <= (
        DATASET_VERTICES + TOTAL_WRITES // 2
    )

    benchmark(lambda: None)
