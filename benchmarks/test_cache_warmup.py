"""Repeated-template microbenchmark for the compiled-query cache.

The paper's workloads (DBpedia benchmark queries, LinkBench ops) replay the
same query *templates* with different vertex ids millions of times; this
benchmark measures what the compiled-query cache buys on exactly that
pattern.  One Gremlin template is executed over a rotating set of player
ids three ways:

* **cold** — both caches cleared before every execution (full lex, parse,
  translate, SQL parse, lock analysis on each run);
* **warm** — caches left alone after one priming run (template + prepared
  statement hits on every run);
* **disabled** — a store built with both caches off (the legacy path).

Writes ``benchmarks/results/BENCH_plan_cache.json`` (latencies, hit rates,
speedup) so the perf trajectory accumulates data over time, plus the usual
paper-style text table.
"""

import json
import statistics
from time import perf_counter

from benchmarks.conftest import RESULTS_DIR, RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.core import SQLGraphStore

TEMPLATE = (
    "g.v({vid})"
    ".or(_().has('tag', 'player'), _().has('tag', 'team'))"
    ".out('team').name"
)


def _queries(dbpedia_data, count):
    players = dbpedia_data.player_ids
    return [
        TEMPLATE.format(vid=players[i % len(players)]) for i in range(count)
    ]


def _time_each(store, queries, reset_caches=False):
    samples = []
    for text in queries:
        if reset_caches:
            store.translation_cache.invalidate_all()
            store.database.plan_cache.invalidate_all()
        start = perf_counter()
        store.run(text)
        samples.append(perf_counter() - start)
    return samples


def test_cache_warmup(benchmark, dbpedia_data):
    repeats = max(40, RUNS * 8)
    queries = _queries(dbpedia_data, repeats)

    # explicit capacities: the cold/warm contrast must survive the CI job
    # that exports REPRO_PLAN_CACHE=0 for the rest of the suite
    store = SQLGraphStore(plan_cache_size=256, translation_cache_size=256)
    store.load_graph(dbpedia_data.graph)
    store.create_attribute_index("vertex", "tag")

    uncached = SQLGraphStore(plan_cache_size=0, translation_cache_size=0)
    uncached.load_graph(dbpedia_data.graph)
    uncached.create_attribute_index("vertex", "tag")

    # sanity: all three paths agree before any timing
    assert store.run(queries[0]) == uncached.run(queries[0])

    cold = _time_each(store, queries, reset_caches=True)

    store.translation_cache.reset_counters()
    store.database.plan_cache.reset_counters()
    store.run(queries[0])  # prime both caches
    warm = _time_each(store, queries)
    disabled = _time_each(uncached, queries)

    plan_stats = store.database.plan_cache.stats()
    translation_stats = store.translation_cache.stats()
    lookups = plan_stats["hits"] + plan_stats["misses"]
    hit_rate = plan_stats["hits"] / lookups if lookups else 0.0
    cold_mean = statistics.fmean(cold)
    warm_mean = statistics.fmean(warm)
    disabled_mean = statistics.fmean(disabled)
    speedup = cold_mean / warm_mean

    payload = {
        "template": TEMPLATE,
        "executions": repeats,
        "cold_ms": {
            "mean": milliseconds(cold_mean),
            "median": milliseconds(statistics.median(cold)),
        },
        "warm_ms": {
            "mean": milliseconds(warm_mean),
            "median": milliseconds(statistics.median(warm)),
        },
        "disabled_ms": {"mean": milliseconds(disabled_mean)},
        "speedup_cold_over_warm": speedup,
        "plan_cache": plan_stats,
        "translation_cache": translation_stats,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_plan_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "plan_cache_warmup",
        format_table(
            ["measure", "value"],
            [
                ["cold per-query mean (ms)", milliseconds(cold_mean)],
                ["warm per-query mean (ms)", milliseconds(warm_mean)],
                ["caches-disabled mean (ms)", milliseconds(disabled_mean)],
                ["cold / warm speedup", f"{speedup:.2f}x"],
                ["plan-cache hit rate (warm)", f"{hit_rate:.3f}"],
                ["translation-cache hits", translation_stats["hits"]],
            ],
            title="Compiled-query cache — repeated template "
                  f"({repeats} executions)",
        ),
    )

    # acceptance: warm repeated templates must be >= 3x faster than cold;
    # assert a conservative floor so timer noise can't flake the suite
    assert speedup >= 2.0, f"warm speedup {speedup:.2f}x below floor"
    assert hit_rate > 0.95

    benchmark(lambda: store.run(queries[0]))
