"""Cost-based planner vs the heuristic planner on the DBpedia workloads.

The statistics-driven planner (``docs/OPTIMIZER.md``) only changes
*plans* — SQL text and results are identical in both modes — so the
heuristic path is timed on the *same ANALYZEd store* by flipping the
``REPRO_COSTED`` knob between runs (the same protocol as the
``REPRO_VECTORIZED`` benchmark).  Three things are measured:

* **join ordering** — a self-join of the edge table pairing the huge
  ``rdf:type`` label (~4.8k edges) with the rare ``associatedAct`` label
  (~150 edges).  The heuristic planner estimates both sides as
  ``live_rows / ndv`` — a tie — and keeps the syntactic order, driving
  the index-nested-loop from the big side; the MCV statistics break the
  tie and drive from the rare side (target: >=1.5x).  The mirrored
  query, written rare-side-first, guards the no-regression direction:
  the cost model must not *undo* an already-optimal order;
* **Fig-8 no-regression** — the DBpedia benchmark + path query suites
  per-query in both modes: statistics must not regress any production
  query shape by more than 10% (plus a small absolute tolerance for
  timer noise on sub-millisecond queries);
* **estimation quality** — per-operator Q-error over the same suites via
  ``EXPLAIN ANALYZE``: the median must stay <= 4 after ANALYZE.

Writes ``benchmarks/results/BENCH_optimizer.json``.  Its ``summary``
strings are quoted verbatim in ``docs/OPTIMIZER.md``; the reprolint
``docs-links`` rule fails when the two drift apart, so re-recording the
benchmark means updating the handbook numbers in the same commit.
"""

import json

from benchmarks.conftest import RESULTS_DIR, RUNS, _indexed_keys, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia
from repro.relational import stats as stats_mod

# self-join pairing the common label with the rare one; the equi-join
# predicate makes both orders executable as index nested loops (ea_inv /
# ea_outv), so the only difference is which side drives the probes
JOIN_BIG_FIRST = (
    "SELECT COUNT(*) FROM ea e1, ea e2 "
    "WHERE e1.lbl = 'rdf:type' AND e2.lbl = 'associatedAct' "
    "AND e1.outv = e2.inv"
)
JOIN_RARE_FIRST = (
    "SELECT COUNT(*) FROM ea e1, ea e2 "
    "WHERE e1.lbl = 'associatedAct' AND e2.lbl = 'rdf:type' "
    "AND e1.inv = e2.outv"
)


def _build_store(dbpedia_data):
    # plain in-process store: no simulated client/server round trips, so
    # the timings isolate planner + executor work
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    for key, sorted_index in _indexed_keys().items():
        store.create_attribute_index("vertex", key, sorted_index=sorted_index)
    store.analyze_tables()
    return store


def _time_both_modes(fn, runs):
    """Best warm-cache seconds for *fn* costed and in heuristic mode.

    Takes the *minimum* warm sample per mode: plan-quality differences are
    systematic and survive the min, while GC pauses and scheduler noise —
    which would dominate a mean on sub-millisecond queries — do not.
    """
    times = {}
    old = stats_mod.set_costed(True)
    try:
        for mode, flag in (("costed", True), ("heuristic", False)):
            stats_mod.set_costed(flag)
            fn()  # warm this mode (plans are rebuilt per planner mode)
            __, samples = warm_cache_time(fn, runs=runs)
            times[mode] = min(samples[1:] if len(samples) > 1 else samples)
    finally:
        stats_mod.set_costed(old)
    return times


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def test_costed_planner(benchmark, dbpedia_data):
    store = _build_store(dbpedia_data)
    database = store.database
    fig8_queries = dbpedia.benchmark_queries(dbpedia_data) + dbpedia.path_queries(
        dbpedia_data
    )

    # sanity: both planners agree on every timed query before any timing
    old = stats_mod.set_costed(True)
    try:
        costed_results = [
            sorted(map(repr, store.run(text))) for __, text in fig8_queries
        ] + [database.execute(JOIN_BIG_FIRST).scalar()]
        stats_mod.set_costed(False)
        heuristic_results = [
            sorted(map(repr, store.run(text))) for __, text in fig8_queries
        ] + [database.execute(JOIN_BIG_FIRST).scalar()]
    finally:
        stats_mod.set_costed(old)
    assert costed_results == heuristic_results

    runs = max(3, RUNS)

    # --- join ordering ------------------------------------------------
    big_first = _time_both_modes(
        lambda: database.execute(JOIN_BIG_FIRST), runs
    )
    rare_first = _time_both_modes(
        lambda: database.execute(JOIN_RARE_FIRST), runs
    )
    join_speedup = big_first["heuristic"] / big_first["costed"]
    mirror_ratio = rare_first["heuristic"] / rare_first["costed"]

    # --- Fig-8 per-query no-regression --------------------------------
    per_query = []
    worst_ratio = 0.0
    for name, text in fig8_queries:
        times = _time_both_modes(lambda _t=text: store.run(_t), runs)
        ratio = times["costed"] / times["heuristic"]
        worst_ratio = max(worst_ratio, ratio)
        per_query.append(
            {
                "query": name,
                "heuristic_ms": milliseconds(times["heuristic"]),
                "costed_ms": milliseconds(times["costed"]),
                "ratio": round(ratio, 2),
                # 10% relative budget plus 0.5ms absolute timer slack
                "within_budget": times["costed"]
                <= times["heuristic"] * 1.10 + 5e-4,
            }
        )

    # --- estimation quality (median per-operator Q-error) -------------
    old = stats_mod.set_costed(True)
    medians = []
    try:
        for __, text in fig8_queries:
            sql = store.translate(text)
            database.execute("EXPLAIN ANALYZE " + sql)
            median = database.last_statement_stats.median_q_error()
            if median is not None:
                medians.append(median)
    finally:
        stats_mod.set_costed(old)
    median_q_error = _median(medians)

    payload = {
        "join_ordering": {
            "query": JOIN_BIG_FIRST,
            "heuristic_ms": milliseconds(big_first["heuristic"]),
            "costed_ms": milliseconds(big_first["costed"]),
            "speedup": round(join_speedup, 2),
            "mirror_ratio": round(mirror_ratio, 2),
        },
        "fig8_no_regression": {
            "queries": per_query,
            "worst_ratio": round(worst_ratio, 2),
        },
        "estimation": {
            "queries": len(medians),
            "median_q_error": round(median_q_error, 2),
        },
        "runs": runs,
        # quoted verbatim in docs/OPTIMIZER.md; the reprolint docs-links
        # rule keeps the handbook in sync with these strings
        "summary": {
            "join": (
                f"{join_speedup:.1f}x on the tied-estimate edge self-join"
            ),
            "regression": (
                f"worst Fig-8 ratio {worst_ratio:.2f}x "
                "(budget 1.10x + 0.5ms)"
            ),
            "q_error": (
                f"median per-operator q_err {median_q_error:.2f} "
                "after ANALYZE"
            ),
            "command": (
                "PYTHONPATH=src python -m pytest "
                "benchmarks/test_optimizer.py -q"
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_optimizer.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "costed_planner",
        format_table(
            ["workload", "heuristic (ms)", "costed (ms)", "speedup"],
            [
                [
                    "edge self-join (big side first)",
                    milliseconds(big_first["heuristic"]),
                    milliseconds(big_first["costed"]),
                    f"{join_speedup:.2f}x",
                ],
                [
                    "edge self-join (rare side first)",
                    milliseconds(rare_first["heuristic"]),
                    milliseconds(rare_first["costed"]),
                    f"{mirror_ratio:.2f}x",
                ],
                [
                    "Fig-8 worst query ratio",
                    "-",
                    "-",
                    f"{worst_ratio:.2f}x",
                ],
                [
                    "median q_err",
                    "-",
                    "-",
                    f"{median_q_error:.2f}",
                ],
            ],
            title="Cost-based planner — join ordering and estimation",
        ),
    )

    # acceptance: statistics win >=1.5x on the tied-estimate join ...
    assert join_speedup >= 1.5, join_speedup
    # ... without undoing the already-optimal mirrored order ...
    assert rare_first["costed"] <= rare_first["heuristic"] * 1.10 + 5e-4, (
        mirror_ratio
    )
    # ... or regressing any production query shape by more than 10%
    regressions = [
        entry for entry in per_query if not entry["within_budget"]
    ]
    assert not regressions, regressions
    # estimation quality: median per-operator Q-error after ANALYZE
    assert median_q_error <= 4.0, median_q_error

    benchmark(lambda: database.execute(JOIN_BIG_FIRST))
