"""Experiment E15 — ablation for §4.2: one SQL vs pipe-at-a-time.

Runs the same Gremlin queries against the same SQLGraph storage two ways:

* translated into a single SQL statement (the paper's approach);
* evaluated pipe-at-a-time by the reference interpreter over SQLGraph's
  Blueprints handles, issuing one SQL statement per primitive call (the
  "huge number of generated SQL queries" the paper warns about).

Paper shape: translation wins, and the gap grows with traversal depth
because the chatty plan multiplies statements.
"""

from benchmarks.conftest import RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.gremlin import GremlinInterpreter, parse_gremlin

# the probe is a team hub: every hop fans out to dozens of elements, so the
# pipe-at-a-time plan issues one statement per element per step
QUERIES = [
    ("1-hop", "g.v({v}).in('team').count()"),
    ("2-hop", "g.v({v}).in('team').out('team').count()"),
    ("3-hop", "g.v({v}).in('team').out('team').in('team').count()"),
    ("filtered", "g.v({v}).in('team').has('label').count()"),
]


def test_ablation_translation(benchmark, dbpedia_data):
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    interpreter = GremlinInterpreter(store)
    probe = dbpedia_data.team_ids[0]

    rows = []
    pairs = []
    for name, template in QUERIES:
        text = template.format(v=probe)
        parsed = parse_gremlin(text)
        translated = store.run(text)
        pipe_at_a_time = interpreter.run(parsed)
        assert translated == pipe_at_a_time, name

        translated_mean, __ = warm_cache_time(
            lambda q=text: store.run(q), runs=RUNS
        )
        before = store.database.statements_executed
        chatty_mean, __ = warm_cache_time(
            lambda p=parsed: interpreter.run(p), runs=RUNS
        )
        statements = (store.database.statements_executed - before) // RUNS
        pairs.append((translated_mean, chatty_mean))
        rows.append([
            name, milliseconds(translated_mean), 1,
            milliseconds(chatty_mean), statements,
            chatty_mean / translated_mean,
        ])
    record(
        "ablation_translation",
        format_table(
            ["query", "translated ms", "stmts", "pipe-at-a-time ms",
             "stmts", "slowdown"],
            rows,
            title="Ablation — single translated SQL vs pipe-at-a-time "
                  "Blueprints over the same storage",
        ),
    )
    # the paper's §4.2 argument: one-shot SQL wins on multi-step traversals
    assert pairs[1][0] < pairs[1][1]
    assert pairs[2][0] < pairs[2][1]

    text = QUERIES[2][1].format(v=probe)
    benchmark(lambda: store.run(text))
