"""Experiment E14 — ablation for §3.5: is the schema redundancy worth it?

The hybrid schema stores adjacency twice: shredded (OPA/OSA/IPA/ISA) and as
a triple table copy inside EA.  This ablation measures the two query
classes that motivate keeping both:

* single-step neighbour lookups — best through EA (no OSA join);
* multi-hop path queries — best through the hash tables;

and reports the storage overhead the redundancy costs.
"""

from benchmarks.conftest import RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia


def test_ablation_redundancy(benchmark, dbpedia_data):
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    store.create_attribute_index("vertex", "tag")
    names = store.schema.table_names

    probe = dbpedia_data.team_ids[0]
    # single-step lookup, via EA vs via the hash tables
    ea_sql = f"SELECT outv FROM {names['ea']} WHERE inv = {probe}"
    unnest = store.schema.unnest_triples_sql("p", "in")
    hash_sql = (
        f"WITH hop AS (SELECT t.val AS val FROM {names['ipa']} p, {unnest} "
        f"WHERE p.vid = {probe} AND t.val IS NOT NULL) "
        f"SELECT COALESCE(s.val, p.val) AS val FROM hop p "
        f"LEFT OUTER JOIN {names['isa']} s ON p.val = s.valid"
    )
    assert sorted(store.database.execute(ea_sql).rows) == sorted(
        store.database.execute(hash_sql).rows
    )
    ea_mean, __ = warm_cache_time(
        lambda: store.database.execute(ea_sql), runs=RUNS
    )
    hash_mean, __ = warm_cache_time(
        lambda: store.database.execute(hash_sql), runs=RUNS
    )

    # multi-hop traversal through the translator (hash tables)
    path_query = dbpedia.path_queries(dbpedia_data)[2][1]
    multi_mean, __ = warm_cache_time(
        lambda: store.run(path_query), runs=RUNS
    )

    adjacency_bytes = sum(
        store.database.table(names[key]).storage_bytes()
        for key in ("opa", "osa", "ipa", "isa")
    )
    store.database.buffer_pool.clear()
    adjacency_bytes = sum(
        store.database.table(names[key]).storage_bytes()
        for key in ("opa", "osa", "ipa", "isa")
    )
    ea_bytes = store.database.table(names["ea"]).storage_bytes()

    rows = [
        ["single-step lookup via EA (ms)", milliseconds(ea_mean)],
        ["single-step lookup via IPA+ISA (ms)", milliseconds(hash_mean)],
        ["9-hop path via hash tables (ms)", milliseconds(multi_mean)],
        ["adjacency tables on disk (KB)", adjacency_bytes // 1024],
        ["redundant EA copy on disk (KB)", ea_bytes // 1024],
    ]
    record(
        "ablation_redundancy",
        format_table(
            ["measure", "value"],
            rows,
            title="Ablation — the §3.5 redundancy: EA shortcut vs hash "
                  "tables, and its storage price",
        ),
    )
    # keeping EA pays for single-step lookups
    assert ea_mean <= hash_mean

    benchmark(lambda: store.database.execute(ea_sql))
