"""Experiments E6-E9 — paper Figure 8: the DBpedia benchmark.

* 8a: 20 benchmark queries (SPARQL→Gremlin conversions) on SQLGraph vs the
  native (Neo4j-like) and KV (Titan-like) pipe-at-a-time stores;
* 8b: the 11 long-path queries on the same three stores;
* 8c: SQLGraph mean query time as the buffer pool grows (the memory sweep);
* 8d: summary means (benchmark / path) per system.

Paper shape: SQLGraph ~2x faster than Titan and ~8x than Neo4j overall,
with lower variance; memory beyond the working set stops helping.
"""

import statistics

import pytest

from benchmarks.conftest import RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia


def _time_stores(stores, queries):
    """Run the warm-cache protocol for every query on every store."""
    results = {name: [] for name, __ in stores}
    for __, text in queries:
        for name, store in stores:
            mean, __samples = warm_cache_time(
                lambda q=text, s=store: s.run(q), runs=RUNS
            )
            results[name].append(mean)
    return results


def _check_agreement(stores, queries):
    baseline_name, baseline = stores[0]
    for query_id, text in queries:
        expected = sorted(map(repr, baseline.run(text)))
        for name, store in stores[1:]:
            got = sorted(map(repr, store.run(text)))
            assert got == expected, (query_id, baseline_name, name)


@pytest.fixture(scope="module")
def all_stores(sqlgraph_store, native_store, kv_store):
    return [
        ("sqlgraph", sqlgraph_store),
        ("titan-like(kv)", kv_store),
        ("neo4j-like(native)", native_store),
    ]


def test_fig8a_benchmark_queries(benchmark, all_stores, dbpedia_data):
    queries = dbpedia.benchmark_queries(dbpedia_data)
    _check_agreement(all_stores, queries)
    results = _time_stores(all_stores, queries)
    rows = []
    for position, (query_id, __text) in enumerate(queries):
        rows.append(
            [query_id]
            + [milliseconds(results[name][position]) for name, __ in all_stores]
        )
    means = {
        name: statistics.fmean(times) for name, times in results.items()
    }
    stdevs = {
        name: statistics.pstdev(times) for name, times in results.items()
    }
    rows.append(["mean"] + [milliseconds(means[n]) for n, __ in all_stores])
    rows.append(["stdev"] + [milliseconds(stdevs[n]) for n, __ in all_stores])
    record(
        "fig8a_benchmark_queries",
        format_table(
            ["query"] + [name for name, __ in all_stores],
            rows,
            title="Figure 8a — DBpedia benchmark queries (ms)",
        ),
    )
    # paper shape: SQLGraph has the best mean and the lowest variance
    assert means["sqlgraph"] < means["titan-like(kv)"]
    assert means["sqlgraph"] < means["neo4j-like(native)"]
    assert stdevs["sqlgraph"] <= min(
        stdevs["titan-like(kv)"], stdevs["neo4j-like(native)"]
    ) * 1.5

    sql_store = all_stores[0][1]
    benchmark(lambda: sql_store.run(queries[0][1]))


def test_fig8b_path_queries(benchmark, all_stores, dbpedia_data):
    queries = dbpedia.path_queries(dbpedia_data)
    _check_agreement(all_stores, queries)
    results = _time_stores(all_stores, queries)
    rows = []
    for position, (query_id, __text) in enumerate(queries):
        rows.append(
            [query_id]
            + [milliseconds(results[name][position]) for name, __ in all_stores]
        )
    means = {name: statistics.fmean(times) for name, times in results.items()}
    rows.append(["mean"] + [milliseconds(means[n]) for n, __ in all_stores])
    record(
        "fig8b_path_queries",
        format_table(
            ["query"] + [name for name, __ in all_stores],
            rows,
            title="Figure 8b — DBpedia path queries (ms)",
        ),
    )
    assert means["sqlgraph"] < means["titan-like(kv)"]
    assert means["sqlgraph"] < means["neo4j-like(native)"]

    sql_store = all_stores[0][1]
    benchmark(lambda: sql_store.run(queries[0][1]))


def test_fig8c_memory_sweep(benchmark, dbpedia_data):
    """SQLGraph mean query time vs buffer-pool size.

    The paper varies server memory 2-10GB and sees no benefit past the
    working set; here the buffer pool plays that role.
    """
    queries = (
        dbpedia.benchmark_queries(dbpedia_data)
        + dbpedia.path_queries(dbpedia_data)
    )
    pool_sizes = [2, 4, 8, 16, 32, None]
    rows = []
    sweep_means = []
    for pool in pool_sizes:
        store = SQLGraphStore(buffer_pool_pages=pool)
        store.load_graph(dbpedia_data.graph)
        store.create_attribute_index("vertex", "uri")
        store.create_attribute_index("vertex", "tag")

        def run_all(s=store):
            for __, text in queries:
                s.run(text)

        mean, __ = warm_cache_time(run_all, runs=max(4, RUNS // 2))
        misses = store.database.buffer_pool.misses
        sweep_means.append(mean)
        rows.append([
            "unbounded" if pool is None else pool,
            milliseconds(mean / len(queries)),
            misses,
        ])
    record(
        "fig8c_memory_sweep",
        format_table(
            ["buffer pool (pages)", "mean query ms", "pool misses"],
            rows,
            title="Figure 8c — SQLGraph mean query time vs memory",
        ),
    )
    # paper shape: more memory helps until the working set fits, then the
    # curve flattens ("neither ... showing any perceptible performance
    # benefits when memory increased beyond 8G")
    assert sweep_means[0] > sweep_means[-1] * 1.2
    tail_delta = abs(sweep_means[-2] - sweep_means[-1]) / sweep_means[-1]
    assert tail_delta < 0.35

    benchmark(lambda: None)


def test_fig8d_summary(benchmark, all_stores, dbpedia_data):
    bench_queries = dbpedia.benchmark_queries(dbpedia_data)
    path_queries = dbpedia.path_queries(dbpedia_data)
    bench_results = _time_stores(all_stores, bench_queries)
    path_results = _time_stores(all_stores, path_queries)
    rows = []
    for name, __ in all_stores:
        rows.append([
            name,
            milliseconds(statistics.fmean(bench_results[name])),
            milliseconds(statistics.fmean(path_results[name])),
        ])
    sql_bench = statistics.fmean(bench_results["sqlgraph"])
    sql_path = statistics.fmean(path_results["sqlgraph"])
    for name, __ in all_stores[1:]:
        rows.append([
            f"{name} / sqlgraph",
            statistics.fmean(bench_results[name]) / sql_bench,
            statistics.fmean(path_results[name]) / sql_path,
        ])
    record(
        "fig8d_summary",
        format_table(
            ["system", "benchmark mean (ms)", "path mean (ms)"],
            rows,
            title="Figure 8d — DBpedia performance summary",
        ),
    )
    benchmark(lambda: all_stores[0][1].run("g.V.count()"))
