"""Experiment E3 — paper Table 3: hash-table characteristics.

Reports, for the vertex-attribute hash table and both adjacency hash
tables: number of hashed labels/keys, average bucket size, spill-row
percentage, long-string rows and multi-value rows.

Paper shape: the *attribute* hash table has markedly more spills, long
strings and multi-values than the adjacency tables (which is why the final
schema stores attributes as JSON but adjacency shredded).
"""

from benchmarks.conftest import record
from repro.baselines.schemas import HashAttributeTable
from repro.bench.reporting import format_table
from repro.core import SQLGraphStore


def test_table3_hash_table_stats(benchmark, dbpedia_data):
    store = SQLGraphStore()
    load_report = store.load_graph(dbpedia_data.graph)

    # the paper fits the coloring on a sample and overloads columns heavily
    # (53K labels over ~500 columns); capping columns recreates the same
    # pressure at our scale
    attr_table = HashAttributeTable(max_columns=8)
    attr_table.load_graph(dbpedia_data.graph)
    attr_stats = attr_table.stats

    rows = [
        ["hashed labels/keys", attr_stats.hashed_keys,
         load_report.out.hashed_labels, load_report.incoming.hashed_labels],
        ["hashed bucket size", round(attr_stats.bucket_size, 2),
         round(load_report.out.bucket_size, 2),
         round(load_report.incoming.bucket_size, 2)],
        ["spill rows %", round(attr_stats.spill_percentage, 2),
         round(load_report.out.spill_percentage, 2),
         round(load_report.incoming.spill_percentage, 2)],
        ["long string rows", attr_stats.long_string_rows, "n/a", "n/a"],
        ["multi-value rows", attr_stats.multi_value_rows,
         load_report.out.multi_value_rows,
         load_report.incoming.multi_value_rows],
    ]
    record(
        "table3_stats",
        format_table(
            ["statistic", "vertex attr hash", "outgoing adjacency",
             "incoming adjacency"],
            rows,
            title="Table 3 — hash table characteristics",
        ),
    )
    # paper shape: attributes spill more than adjacency
    assert attr_stats.spill_percentage >= load_report.out.spill_percentage

    benchmark(lambda: store.table_stats())
