"""Vectorized vs row-at-a-time executor on the paper's warm workloads.

The batch executor (``docs/EXECUTION.md``) is a pure execution-layer
change: plans, SQL text, and results are identical in both modes, so the
row-at-a-time path can be timed on the *same store* by flipping the
``REPRO_VECTORIZED`` knob between runs.  Three workloads are measured,
all warm (plans and translations cached, buffer pool resident):

* **Fig-8 warm path** — the DBpedia benchmark + path query suites from
  ``test_fig8_dbpedia.py``, the headline number (target: >=2x);
* **adjacency suite** — the Table-1 k-hop traversals, the OPA/IPA
  batch-probe stress test;
* **plan-cache template** — the ``BENCH_plan_cache`` repeated-template
  microbenchmark: single-vertex point queries, the batch executor's
  worst case.  Each CTE holds ~1 row, so the per-block machinery
  (ColumnBatch construction, kernel dispatch) is pure overhead; the
  measured ~10% regression is the classic vectorization trade-off
  (scan throughput for point-query latency) and is bounded here.

Writes ``benchmarks/results/BENCH_vectorized.json``.  Its ``summary``
strings are quoted verbatim in ``docs/EXECUTION.md``; the reprolint
``docs-links`` rule fails when the two drift apart, so re-recording the
benchmark means updating the handbook numbers in the same commit.
"""

import json

from benchmarks.conftest import RESULTS_DIR, RUNS, _indexed_keys, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia
from repro.relational import batch as batch_mod

TEMPLATE = (
    "g.v({vid})"
    ".or(_().has('tag', 'player'), _().has('tag', 'team'))"
    ".out('team').name"
)


def _build_store(dbpedia_data):
    # plain in-process store: no simulated client/server round trips, so
    # the timings isolate executor work
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    for key, sorted_index in _indexed_keys().items():
        store.create_attribute_index("vertex", key, sorted_index=sorted_index)
    return store


def _time_both_modes(fn, runs):
    """Warm-cache mean seconds for *fn* vectorized and in row mode."""
    times = {}
    old = batch_mod.set_enabled(True)
    try:
        for mode, flag in (("vectorized", True), ("row", False)):
            batch_mod.set_enabled(flag)
            fn()  # warm this mode (plans compile batch kernels lazily)
            mean, __ = warm_cache_time(fn, runs=runs)
            times[mode] = mean
    finally:
        batch_mod.set_enabled(old)
    return times


def test_vectorized_speedup(benchmark, dbpedia_data):
    store = _build_store(dbpedia_data)
    fig8_queries = [
        text
        for __, text in (
            dbpedia.benchmark_queries(dbpedia_data)
            + dbpedia.path_queries(dbpedia_data)
        )
    ]
    adjacency = [
        text for __, text, __meta in dbpedia.adjacency_queries(dbpedia_data)
    ]
    players = dbpedia_data.player_ids
    template_queries = [
        TEMPLATE.format(vid=players[i % len(players)]) for i in range(40)
    ]

    # sanity: both executors agree on every timed query before any timing
    sample = fig8_queries + adjacency + template_queries[:1]
    old = batch_mod.set_enabled(True)
    try:
        vectorized_results = [store.run(text) for text in sample]
        batch_mod.set_enabled(False)
        row_results = [store.run(text) for text in sample]
    finally:
        batch_mod.set_enabled(old)
    assert vectorized_results == row_results

    runs = max(3, RUNS)

    def run_fig8():
        for text in fig8_queries:
            store.run(text)

    def run_adjacency():
        for text in adjacency:
            store.run(text)

    def run_template():
        for text in template_queries:
            store.run(text)

    fig8 = _time_both_modes(run_fig8, runs)
    adjacency_times = _time_both_modes(run_adjacency, runs)
    template = _time_both_modes(run_template, runs)

    fig8_speedup = fig8["row"] / fig8["vectorized"]
    adjacency_speedup = (
        adjacency_times["row"] / adjacency_times["vectorized"]
    )
    template_speedup = template["row"] / template["vectorized"]

    payload = {
        "workloads": {
            "fig8_warm_path": {
                "queries": len(fig8_queries),
                "row_ms": milliseconds(fig8["row"]),
                "vectorized_ms": milliseconds(fig8["vectorized"]),
                "speedup": round(fig8_speedup, 2),
            },
            "adjacency_suite": {
                "queries": len(adjacency),
                "row_ms": milliseconds(adjacency_times["row"]),
                "vectorized_ms": milliseconds(adjacency_times["vectorized"]),
                "speedup": round(adjacency_speedup, 2),
            },
            "plan_cache_template": {
                "executions": len(template_queries),
                "row_ms": milliseconds(template["row"]),
                "vectorized_ms": milliseconds(template["vectorized"]),
                "speedup": round(template_speedup, 2),
            },
        },
        "runs": runs,
        "batch_size": batch_mod.BATCH_SIZE,
        # quoted verbatim in docs/EXECUTION.md; the reprolint docs-links
        # rule keeps the handbook in sync with these strings
        "summary": {
            "fig8": f"{fig8_speedup:.1f}x on the Fig-8 warm path",
            "adjacency": (
                f"{adjacency_speedup:.1f}x on the Table-1 adjacency suite"
            ),
            "template": (
                f"{template_speedup:.2f}x on the warm plan-cache "
                "point-query template"
            ),
            "command": (
                "PYTHONPATH=src python -m pytest "
                "benchmarks/test_vectorized.py -q"
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_vectorized.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "vectorized_executor",
        format_table(
            ["workload", "row (ms)", "vectorized (ms)", "speedup"],
            [
                [
                    "fig8 warm path",
                    milliseconds(fig8["row"]),
                    milliseconds(fig8["vectorized"]),
                    f"{fig8_speedup:.2f}x",
                ],
                [
                    "adjacency suite",
                    milliseconds(adjacency_times["row"]),
                    milliseconds(adjacency_times["vectorized"]),
                    f"{adjacency_speedup:.2f}x",
                ],
                [
                    "plan-cache template",
                    milliseconds(template["row"]),
                    milliseconds(template["vectorized"]),
                    f"{template_speedup:.2f}x",
                ],
            ],
            title="Vectorized executor — warm-path speedups",
        ),
    )

    # acceptance: the batch executor wins >=2x on the Fig-8 warm path
    assert fig8_speedup >= 2.0, fig8_speedup
    assert adjacency_speedup >= 1.0, adjacency_speedup
    # point queries pay a bounded constant overhead (~1-row blocks);
    # anything past ~20% would mean the batch machinery got heavier
    assert template_speedup >= 0.8, template_speedup

    benchmark(lambda: store.run(fig8_queries[0]))
