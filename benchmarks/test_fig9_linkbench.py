"""Experiments E10-E11 — paper Figure 9: LinkBench throughput.

Closed-loop throughput (ops/sec) at 1 / 10 / 100 requesters across graph
scales, for SQLGraph and the two pipe-at-a-time baselines, plus the
largest-scale panel (paper 9d: 1B nodes — here the largest graph we load)
where only SQLGraph and the Neo4j-like store are compared.

Cost model (see EXPERIMENTS.md): every store's client pays an HTTP round
trip per request; the baselines additionally evaluate each request on a
small Rexster-like worker pool with per-request script-evaluation overhead
(ServerGate), which is what flattens their curves in the paper.

Paper shape: SQLGraph throughput is far higher and *grows* with
requesters (311 → 659 → 891 on the 100M graph); the baselines stay an
order of magnitude (10-30x) below.
"""

import pytest

from benchmarks.conftest import REQUEST_RTT, PRIMITIVE_RTT, record, scaled
from repro.baselines import ClientServerLink, KVGraphStore, NativeGraphStore
from repro.baselines.latency import GatedAdapter, ServerGate
from repro.bench.concurrency import run_throughput
from repro.bench.reporting import format_table
from repro.core import SQLGraphStore
from repro.datasets import linkbench

# Rexster-like server: three effective workers, 45ms script-eval overhead
# per request (calibrated against paper Table 6's 0.3-1.0s per-op latency
# at 10 requesters and Figure 9's 10-30x throughput gap)
GATE_WORKERS = 3
GATE_SERVICE = 0.045

SCALES = [scaled(1000), scaled(4000)]
XL_SCALE = scaled(12_000)
REQUESTERS = [1, 10, 100]
DURATION = 1.2


def _build_adapters(node_count, stores=("sqlgraph", "titan-like(kv)",
                                        "neo4j-like(native)")):
    data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=node_count))
    adapters = {}
    if "sqlgraph" in stores:
        store = SQLGraphStore(client=ClientServerLink(REQUEST_RTT, sleep=True))
        store.load_graph(data.graph)
        adapters["sqlgraph"] = linkbench.SQLGraphLinkBench(store)
    if "titan-like(kv)" in stores:
        store = KVGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
        store.load_graph(data.graph)
        adapters["titan-like(kv)"] = GatedAdapter(
            linkbench.BlueprintsLinkBench(store),
            ServerGate(GATE_WORKERS, GATE_SERVICE),
        )
    if "neo4j-like(native)" in stores:
        store = NativeGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
        store.load_graph(data.graph.copy())
        adapters["neo4j-like(native)"] = GatedAdapter(
            linkbench.BlueprintsLinkBench(store),
            ServerGate(GATE_WORKERS, GATE_SERVICE),
        )
    return data, adapters


def _throughput(data, adapter, requesters):
    result = run_throughput(
        adapter,
        lambda rid: linkbench.RequestGenerator(data, seed=13, requester_id=rid),
        requesters=requesters,
        duration=DURATION,
    )
    return result.ops_per_second


def test_fig9_linkbench_throughput(benchmark):
    rows = []
    summary = {}
    for node_count in SCALES:
        data, adapters = _build_adapters(node_count)
        for name, adapter in adapters.items():
            cells = [
                _throughput(data, adapter, requesters)
                for requesters in REQUESTERS
            ]
            summary[(name, node_count)] = cells
            rows.append([name, node_count] + [round(cell, 1) for cell in cells])
    record(
        "fig9_linkbench",
        format_table(
            ["system", "nodes"] + [f"{r} req" for r in REQUESTERS],
            rows,
            title="Figure 9 — LinkBench throughput (ops/sec)",
        ),
    )
    largest = SCALES[-1]
    sql = summary[("sqlgraph", largest)]
    kv = summary[("titan-like(kv)", largest)]
    native = summary[("neo4j-like(native)", largest)]
    # paper shape: SQLGraph throughput grows with requesters ...
    assert sql[2] > sql[0]
    # ... and beats both baselines by a large factor under concurrency
    assert sql[1] > 5 * kv[1]
    assert sql[1] > 5 * native[1]

    data, adapters = _build_adapters(SCALES[0], stores=("sqlgraph",))
    benchmark(lambda: adapters["sqlgraph"].execute(("get_node", {"id": 1})))


def test_fig9d_largest_scale(benchmark):
    """Panel 9d: the largest graph, SQLGraph vs the native store only
    (the paper could not run Titan on the 1B graph)."""
    data, adapters = _build_adapters(
        XL_SCALE, stores=("sqlgraph", "neo4j-like(native)")
    )
    rows = []
    summary = {}
    for name, adapter in adapters.items():
        cells = [
            _throughput(data, adapter, requesters) for requesters in REQUESTERS
        ]
        summary[name] = cells
        rows.append([name] + [round(cell, 1) for cell in cells])
    record(
        "fig9d_largest",
        format_table(
            ["system"] + [f"{r} req" for r in REQUESTERS],
            rows,
            title="Figure 9d — largest LinkBench graph (ops/sec)",
        ),
    )
    # paper shape: ~30x advantage at high concurrency on the largest graph
    assert summary["sqlgraph"][2] > 10 * summary["neo4j-like(native)"][2]

    benchmark(lambda: adapters["sqlgraph"].execute(("get_node", {"id": 1})))
