"""Experiment E5 — paper Figure 6: path queries, OPA+OSA vs EA self-joins.

Runs the 11 long-path queries (lq1-lq11) twice: through the normal
translation (hash adjacency tables) and through an EA-only rewrite where
every hop is a join against the redundant edge table.

Paper shape: the shredded adjacency tables win on long paths (mean 8.8s vs
17.8s) because the hash-table rows are far more compact than the vertical
EA representation, so the join cardinalities are smaller.
"""

import pytest

from benchmarks.conftest import RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia


class _EAOnlyStore(SQLGraphStore):
    """SQLGraph variant whose translator never uses the hash tables.

    Implemented by forcing the translator's single-traversal flag, so every
    adjacency step goes through the EA template (paper: "we therefore ran
    our long path queries using joins on the EA table alone").
    """

    def translate(self, gremlin_text):
        from repro.core.translator import _Translation
        from repro.gremlin.parser import parse_gremlin

        query = parse_gremlin(gremlin_text)
        translation = _Translation(self.schema, list(query.pipes))
        build = translation.build

        # pre-compute then pin the flag: _Translation sets single_traversal
        # inside build(), so wrap the adjacency chooser instead
        translation._adjacent_via_hash = (
            lambda tin, direction, labels:
            translation._adjacent_via_ea(tin, direction, labels)
        )
        return build()


# the paper runs in the scan-bound, disk-resident regime (16k-row frontiers
# joined against hundreds of millions of EA rows, where DB2 uses scan-based
# hash joins and pages stream through the buffer pool).  A high index-probe
# cost plus a small buffer pool pins both stores to that regime, so table
# compactness — the paper's stated mechanism (EA rows are wide, OPA rows
# pack a whole adjacency list) — governs the join costs.
_DISK_REGIME = {"index_probe_cost": 50.0}
_POOL_PAGES = 12


@pytest.fixture(scope="module")
def stores(dbpedia_data):
    hash_store = SQLGraphStore(
        buffer_pool_pages=_POOL_PAGES, planner_options=_DISK_REGIME
    )
    hash_store.load_graph(dbpedia_data.graph)
    hash_store.create_attribute_index("vertex", "tag")
    ea_store = _EAOnlyStore(
        buffer_pool_pages=_POOL_PAGES, planner_options=_DISK_REGIME
    )
    ea_store.load_graph(dbpedia_data.graph)
    ea_store.create_attribute_index("vertex", "tag")
    return hash_store, ea_store


def test_fig6_path_queries(benchmark, stores, dbpedia_data):
    hash_store, ea_store = stores
    rows = []
    hash_times = []
    ea_times = []
    for query_id, text in dbpedia.path_queries(dbpedia_data):
        assert hash_store.run(text) == ea_store.run(text), query_id
        hash_mean, __ = warm_cache_time(
            lambda q=text: hash_store.run(q), runs=RUNS
        )
        ea_mean, __ = warm_cache_time(
            lambda q=text: ea_store.run(q), runs=RUNS
        )
        hash_times.append(hash_mean)
        ea_times.append(ea_mean)
        rows.append([
            query_id, milliseconds(hash_mean), milliseconds(ea_mean),
            ea_mean / hash_mean if hash_mean else float("nan"),
        ])
    mean_hash = sum(hash_times) / len(hash_times)
    mean_ea = sum(ea_times) / len(ea_times)
    rows.append(["mean", milliseconds(mean_hash), milliseconds(mean_ea),
                 mean_ea / mean_hash])
    record(
        "fig6_paths",
        format_table(
            ["query", "OPA+OSA ms", "EA ms", "EA/OPA"],
            rows,
            title="Figure 6 — long-path queries: hash adjacency vs "
                  "EA-only joins",
        ),
    )
    # paper shape: OPA+OSA beats EA-only on average for long paths
    assert mean_hash < mean_ea

    query = dbpedia.path_queries(dbpedia_data)[1][1]
    benchmark(lambda: hash_store.run(query))
