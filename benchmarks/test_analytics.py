"""Bulk-analytics throughput on a LinkBench-scale graph.

One run per algorithm over the shared preferential-attachment generator
(:func:`repro.datasets.random_graphs.analytics_scale_graph` — the same
distribution the differential tests sample at toy scale).  The figure of
merit is **edge-iterations per second**: every PageRank / components /
label-propagation iteration joins the full edge table, so ``edges x
iterations / elapsed`` measures how fast the relational engine turns the
per-iteration join/aggregate crank; SSSP reports the same metric over
its (frontier-sized) relaxation rounds.

``REPRO_BENCH_SMOKE=1`` shrinks the graph ~17x for CI-speed validation
of the harness itself.  Writes ``benchmarks/results/BENCH_analytics.json``;
its ``summary`` strings are quoted verbatim in ``docs/ANALYTICS.md`` and
the reprolint docs-links rule fails when the two drift apart, so
re-recording the benchmark means updating the handbook in the same
commit.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, record, scaled
from repro.bench.reporting import format_table
from repro.core import SQLGraphStore
from repro.datasets.random_graphs import analytics_scale_graph

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: LinkBench-flavoured scale (paper §5: ~5k-node neighborhoods); smoke
#: mode keeps the same shape at ~1/17 size
N_VERTICES = 300 if SMOKE else 5000
N_EDGES = 1500 if SMOKE else 25000

#: fixed iteration counts so every recorded run does identical work
PAGERANK_ITERATIONS = 10
LABELPROP_ITERATIONS = 10


def _throughput(edges, stats):
    """Edge-iterations per second for one recorded run."""
    iterations = max(1, stats.iteration_count)
    return edges * iterations / max(stats.elapsed_s, 1e-9)


def test_analytics_throughput(benchmark):
    n_vertices = scaled(N_VERTICES)
    n_edges = scaled(N_EDGES)
    graph = analytics_scale_graph(n_vertices, n_edges, seed=13)
    store = SQLGraphStore()
    store.load_graph(graph)

    runs = {}

    def cache_delta(fn):
        before = dict(store.database.plan_cache.stats())
        values = fn()
        after = store.database.plan_cache.stats()
        return values, {
            key: after[key] - before[key] for key in ("hits", "misses")
        }

    def measure(name, fn):
        # cold then warm: the fixed per-iteration statement shapes (plus
        # the token free-list keeping scratch names stable) mean the warm
        # run replays entirely out of the prepared-statement cache
        __, cold_cache = cache_delta(fn)
        cold_elapsed_s = store.last_analytics_stats.elapsed_s
        values, warm_cache = cache_delta(fn)
        stats = store.last_analytics_stats
        runs[name] = {
            "result_rows": len(values),
            "iterations": stats.iteration_count,
            "converged": stats.converged,
            "statements": stats.statements_executed,
            "elapsed_s": round(stats.elapsed_s, 4),
            "edge_iterations_per_s": int(_throughput(n_edges, stats)),
            "plan_cache": {
                "cold": cold_cache,
                "warm": warm_cache,
                "cold_elapsed_s": round(cold_elapsed_s, 4),
                "warm_speedup": round(
                    cold_elapsed_s / max(stats.elapsed_s, 1e-9), 3
                ),
            },
        }
        return values

    measure(
        "pagerank",
        lambda: store.pagerank(
            tolerance=0.0, max_iterations=PAGERANK_ITERATIONS
        ),
    )
    components = measure("components", store.connected_components)
    measure(
        "labelprop",
        lambda: store.label_propagation(max_iterations=LABELPROP_ITERATIONS),
    )
    # source with global reach: a vertex of the biggest component
    sizes = {}
    for label in components.values():
        sizes[label] = sizes.get(label, 0) + 1
    source = max(sizes, key=lambda label: (sizes[label], -label))
    distances = measure(
        "sssp", lambda: store.shortest_paths(source, weight_key="weight")
    )

    # harness sanity on every recorded run (SSSP follows edge direction,
    # so it reaches a subset of the source's undirected component)
    assert runs["pagerank"]["result_rows"] == n_vertices
    assert runs["components"]["converged"]
    assert distances[source] == 0.0 and len(distances) <= sizes[source]
    for entry in runs.values():
        assert entry["edge_iterations_per_s"] > 0
        # the satellite claim: a warm rerun compiles nothing — every
        # fixed-shape statement is served from the prepared-statement
        # cache (changing values are bound ? params, scratch names are
        # reused via the token free-list)
        assert entry["plan_cache"]["warm"]["misses"] == 0, entry

    warm_hits = sum(
        entry["plan_cache"]["warm"]["hits"] for entry in runs.values()
    )

    payload = {
        "graph": {
            "vertices": n_vertices,
            "edges": n_edges,
            "smoke": SMOKE,
        },
        "algorithms": runs,
        # quoted verbatim in docs/ANALYTICS.md; the reprolint docs-links
        # rule keeps the handbook in sync with these strings
        "summary": {
            "pagerank": (
                f"pagerank {runs['pagerank']['edge_iterations_per_s']:,} "
                f"edge-iterations/s "
                f"({runs['pagerank']['iterations']} iterations)"
            ),
            "components": (
                f"components converged in "
                f"{runs['components']['iterations']} iterations at "
                f"{runs['components']['edge_iterations_per_s']:,} "
                f"edge-iterations/s"
            ),
            "labelprop": (
                f"labelprop {runs['labelprop']['edge_iterations_per_s']:,} "
                f"edge-iterations/s "
                f"({runs['labelprop']['iterations']} iterations)"
            ),
            "sssp": (
                f"sssp reached {runs['sssp']['result_rows']:,} vertices in "
                f"{runs['sssp']['iterations']} rounds"
            ),
            "graph": (
                f"{n_vertices:,} vertices / {n_edges:,} edges "
                "(preferential attachment)"
            ),
            "prepared": (
                f"warm reruns recompile nothing: {warm_hits:,} "
                "prepared-statement cache hits, 0 misses"
            ),
            "command": (
                "PYTHONPATH=src python -m pytest "
                "benchmarks/test_analytics.py -q"
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analytics.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "analytics_throughput",
        format_table(
            ["algorithm", "iterations", "elapsed (s)", "edge-iter/s"],
            [
                [
                    name,
                    entry["iterations"],
                    f"{entry['elapsed_s']:.2f}",
                    f"{entry['edge_iterations_per_s']:,}",
                ]
                for name, entry in runs.items()
            ],
            title=(
                f"Bulk analytics — {n_vertices:,} vertices / "
                f"{n_edges:,} edges"
            ),
        ),
    )

    benchmark(lambda: store.connected_components(max_iterations=2))
