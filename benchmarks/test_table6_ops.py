"""Experiments E12-E13 — paper Tables 6 and 7: per-operation latency.

Table 6: mean (max) seconds per LinkBench operation at 10 requesters on the
mid-scale graph, for all three stores.  Table 7: the largest graph at 100
requesters, SQLGraph vs the Neo4j-like store.

Paper shape (Table 6): SQLGraph is much faster on the read operations that
dominate the mix (get_node, count_link, get_link_list, multiget_link) but
*slower on delete_node / add_link / update_link* — multi-table maintenance
of the hybrid schema.  At the largest scale (Table 7) SQLGraph wins every
operation.
"""

from benchmarks.conftest import record
from repro.baselines import ClientServerLink, KVGraphStore, NativeGraphStore
from repro.baselines.latency import GatedAdapter, ServerGate
from repro.bench.concurrency import run_throughput
from repro.bench.reporting import format_table
from repro.core import SQLGraphStore
from repro.datasets import linkbench

from benchmarks.conftest import PRIMITIVE_RTT, REQUEST_RTT, scaled
from benchmarks.test_fig9_linkbench import GATE_SERVICE, GATE_WORKERS

OPERATIONS = [name for name, __ in linkbench.OPERATION_MIX]
READ_OPS = ("get_node", "count_link", "multiget_link", "get_link_list")
WRITE_OPS = ("delete_node", "add_link", "update_link")


def _latencies(adapter, data, requesters, duration=2.5):
    result = run_throughput(
        adapter,
        lambda rid: linkbench.RequestGenerator(data, seed=29, requester_id=rid),
        requesters=requesters,
        duration=duration,
        record_latency=True,
    )
    return result


def _format_cell(result, name):
    mean = result.per_op_seconds.get(name)
    peak = result.per_op_max.get(name)
    if mean is None:
        return "-"
    return f"{mean:.4f}({peak:.3f})"


def test_table6_operation_latency(benchmark):
    data = linkbench.build_graph(
        linkbench.LinkBenchConfig(nodes=scaled(4000))
    )
    sql_store = SQLGraphStore(client=ClientServerLink(REQUEST_RTT, sleep=True))
    sql_store.load_graph(data.graph)
    sql_adapter = linkbench.SQLGraphLinkBench(sql_store)
    kv = KVGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
    kv.load_graph(data.graph)
    kv_adapter = GatedAdapter(
        linkbench.BlueprintsLinkBench(kv), ServerGate(GATE_WORKERS, GATE_SERVICE)
    )
    native = NativeGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
    native.load_graph(data.graph.copy())
    native_adapter = GatedAdapter(
        linkbench.BlueprintsLinkBench(native),
        ServerGate(GATE_WORKERS, GATE_SERVICE),
    )

    results = {
        "sqlgraph": _latencies(sql_adapter, data, requesters=10),
        "titan-like(kv)": _latencies(kv_adapter, data, requesters=10),
        "neo4j-like(native)": _latencies(native_adapter, data, requesters=10),
    }
    mix = dict(linkbench.OPERATION_MIX)
    rows = []
    for name in OPERATIONS:
        rows.append([
            name,
            f"{100 * mix[name]:.1f}%",
            _format_cell(results["sqlgraph"], name),
            _format_cell(results["titan-like(kv)"], name),
            _format_cell(results["neo4j-like(native)"], name),
        ])
    record(
        "table6_ops",
        format_table(
            ["operation", "mix", "sqlgraph s(max)", "titan-like s(max)",
             "neo4j-like s(max)"],
            rows,
            title="Table 6 — LinkBench per-operation latency, mid scale, "
                  "10 requesters",
        ),
    )
    # paper shape: SQLGraph wins the dominant read operations
    for name in READ_OPS:
        sql_mean = results["sqlgraph"].per_op_seconds.get(name)
        for other in ("titan-like(kv)", "neo4j-like(native)"):
            other_mean = results[other].per_op_seconds.get(name)
            if sql_mean is not None and other_mean is not None:
                assert sql_mean < other_mean, name

    benchmark(lambda: sql_adapter.execute(("get_node", {"id": 1})))


def test_table7_largest_scale_latency(benchmark):
    data = linkbench.build_graph(
        linkbench.LinkBenchConfig(nodes=scaled(12_000))
    )
    sql_store = SQLGraphStore(client=ClientServerLink(REQUEST_RTT, sleep=True))
    sql_store.load_graph(data.graph)
    sql_adapter = linkbench.SQLGraphLinkBench(sql_store)
    native = NativeGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
    native.load_graph(data.graph.copy())
    native_adapter = GatedAdapter(
        linkbench.BlueprintsLinkBench(native),
        ServerGate(GATE_WORKERS, GATE_SERVICE),
    )
    results = {
        "sqlgraph": _latencies(sql_adapter, data, requesters=100, duration=3.0),
        "neo4j-like(native)": _latencies(
            native_adapter, data, requesters=100, duration=3.0
        ),
    }
    rows = []
    for name in OPERATIONS:
        rows.append([
            name,
            _format_cell(results["sqlgraph"], name),
            _format_cell(results["neo4j-like(native)"], name),
        ])
    record(
        "table7_ops_largest",
        format_table(
            ["operation", "sqlgraph s(max)", "neo4j-like s(max)"],
            rows,
            title="Table 7 — per-operation latency, largest graph, "
                  "100 requesters",
        ),
    )
    # paper shape: at the largest scale SQLGraph wins (almost) everywhere;
    # require it for the high-volume operations
    for name in READ_OPS + ("update_node", "add_node"):
        sql_mean = results["sqlgraph"].per_op_seconds.get(name)
        other_mean = results["neo4j-like(native)"].per_op_seconds.get(name)
        if sql_mean is not None and other_mean is not None:
            assert sql_mean < other_mean, name

    benchmark(lambda: sql_adapter.execute(("get_node", {"id": 1})))
