"""Group-commit microbenchmark for the write-ahead log.

An OLTP-style stream of single-row autocommit inserts is the worst case
for a durable engine: every statement is its own commit point.  This
benchmark measures the same insert stream under the three fsync modes:

* **always** — one ``fsync`` per commit point (strict durability);
* **group**  — commit points within one ``REPRO_WAL_GROUP_WINDOW_MS``
  window share a single ``fsync`` (bounded-staleness durability);
* **off**    — records are written but never synced (the ceiling: pure
  WAL-append + engine cost, no durability).

Writes ``benchmarks/results/BENCH_wal.json`` (throughputs, fsync counts,
speedups) so the perf trajectory accumulates data over time, plus the
usual paper-style text table.

Acceptance: group commit must deliver at least 2x the throughput of
fsync-per-commit on the same workload.
"""

import json
import shutil
import statistics
from time import perf_counter

from benchmarks.conftest import RESULTS_DIR, RUNS, record, scaled
from repro.bench.reporting import format_table
from repro.relational.database import Database

INSERTS = 300
REPEATS = max(3, RUNS // 2)


def _run_stream(directory, mode, n_inserts):
    """Time *n_inserts* autocommit inserts; returns (ops/s, wal stats)."""
    database = Database(
        path=str(directory), wal_fsync=mode, wal_checkpoint_every=0
    )
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
    start = perf_counter()
    for i in range(n_inserts):
        database.execute(f"INSERT INTO t VALUES ({i}, 'payload-{i}')")
    elapsed = perf_counter() - start
    stats = database.wal_stats()
    count = database.execute("SELECT COUNT(*) FROM t").scalar()
    database.close()
    shutil.rmtree(directory)
    assert count == n_inserts
    return n_inserts / elapsed, stats


def test_wal_group_commit(benchmark, tmp_path):
    n_inserts = scaled(INSERTS)
    throughputs = {"always": [], "group": [], "off": []}
    fsyncs = {}
    for attempt in range(REPEATS):
        for mode in throughputs:
            ops, stats = _run_stream(
                tmp_path / f"{mode}{attempt}", mode, n_inserts
            )
            throughputs[mode].append(ops)
            fsyncs[mode] = stats["fsyncs"]

    # medians over repeats: one slow fsync outlier must not skew a mode
    median = {m: statistics.median(ts) for m, ts in throughputs.items()}
    speedup = median["group"] / median["always"]
    ceiling = median["off"] / median["always"]

    payload = {
        "inserts_per_run": n_inserts,
        "repeats": REPEATS,
        "throughput_ops_per_s": {
            mode: {
                "median": median[mode],
                "best": max(samples),
            }
            for mode, samples in throughputs.items()
        },
        "fsyncs_per_run": fsyncs,
        "speedup_group_over_always": speedup,
        "speedup_off_over_always": ceiling,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wal.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record(
        "wal_group_commit",
        format_table(
            ["fsync mode", "ops/s (median)", "fsyncs/run"],
            [
                [mode, f"{median[mode]:,.0f}", fsyncs[mode]]
                for mode in ("always", "group", "off")
            ],
            title=f"WAL group commit — {n_inserts} autocommit inserts "
                  f"x{REPEATS} repeats (group {speedup:.2f}x over always)",
        ),
    )

    # acceptance: batching commit points behind one fsync window must buy
    # at least 2x over fsync-per-commit; assert conservatively so a noisy
    # CI box cannot flake the suite
    assert speedup >= 2.0, f"group commit speedup {speedup:.2f}x below 2x"
    # group mode really did batch: far fewer fsyncs than commit points
    assert fsyncs["group"] < fsyncs["always"] / 4

    benchmark(lambda: _run_stream(tmp_path / "bench", "group", n_inserts))
