"""Experiment E4 — paper Table 4: single-hop neighbours, EA vs IPA+ISA.

For vertices with increasing in-degree, compare answering "all incoming
neighbours" through the redundant edge table (one index lookup in EA)
against the hash adjacency tables (IPA unnest + ISA join).

Paper shape: the two are equal for selective vertices; the adjacency-table
plan degrades on very high-degree vertices (supernodes), which is why the
translator uses EA for single-step queries (§3.5).
"""

from benchmarks.conftest import RUNS, record
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.graph.blueprints import Direction


def _vertices_by_in_degree(dbpedia_data):
    """Pick probe vertices whose in-degree spans orders of magnitude."""
    graph = dbpedia_data.graph
    ranked = sorted(
        graph.vertices(), key=lambda vertex: vertex.degree(Direction.IN)
    )
    targets = []
    wanted = [1, 10, 100, 1000, 10_000]
    for degree_target in wanted:
        best = min(
            ranked,
            key=lambda v: abs(v.degree(Direction.IN) - degree_target),
        )
        if best.id not in [v.id for v in targets]:
            targets.append(best)
    return targets


def _ea_sql(store, vertex_id):
    ea = store.schema.table_names["ea"]
    return f"SELECT outv FROM {ea} WHERE inv = {vertex_id}"


def _ipa_sql(store, vertex_id):
    names = store.schema.table_names
    unnest = store.schema.unnest_triples_sql("p", "in")
    return (
        f"WITH hop AS (SELECT t.val AS val FROM {names['ipa']} p, {unnest} "
        f"WHERE p.vid = {vertex_id} AND t.val IS NOT NULL) "
        f"SELECT COALESCE(s.val, p.val) AS val FROM hop p "
        f"LEFT OUTER JOIN {names['isa']} s ON p.val = s.valid"
    )


def test_table4_neighbors(benchmark, dbpedia_data):
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    probes = _vertices_by_in_degree(dbpedia_data)
    rows = []
    for vertex in probes:
        degree = vertex.degree(Direction.IN)
        ea_sql = _ea_sql(store, vertex.id)
        ipa_sql = _ipa_sql(store, vertex.id)
        ea_rows = store.database.execute(ea_sql).rows
        ipa_rows = store.database.execute(ipa_sql).rows
        assert sorted(ea_rows) == sorted(ipa_rows)
        ea_mean, __ = warm_cache_time(
            lambda sql=ea_sql: store.database.execute(sql), runs=RUNS
        )
        ipa_mean, __ = warm_cache_time(
            lambda sql=ipa_sql: store.database.execute(sql), runs=RUNS
        )
        rows.append([
            degree, milliseconds(ea_mean), milliseconds(ipa_mean),
            ipa_mean / ea_mean if ea_mean else float("nan"),
        ])
    record(
        "table4_neighbors",
        format_table(
            ["result size", "EA ms", "IPA+ISA ms", "IPA/EA"],
            rows,
            title="Table 4 — incoming neighbours by selectivity "
                  "(EA lookup vs hash adjacency join)",
        ),
    )
    # paper shape: EA never loses badly, and wins on the largest vertex
    assert rows[-1][1] <= rows[-1][2] * 1.5

    largest = probes[-1]
    benchmark(lambda: store.database.execute(_ea_sql(store, largest.id)))
