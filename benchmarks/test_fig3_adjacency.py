"""Experiment E1 — paper Figure 3 (+ Table 1): adjacency storage.

Eleven k-hop traversal queries over the DBpedia-like graph, comparing the
shredded hash-adjacency schema (SQLGraph's OPA/OSA, queried through the
Gremlin→SQL translator) against adjacency stored as JSON documents.

Paper result: hash adjacency wins decisively (mean 3.2s vs 18.0s on the
real dataset); the shape to reproduce is JSON slower on every query, by a
growing factor as hops/result size increase.
"""

import pytest

from benchmarks.conftest import RUNS, record
from repro.baselines.schemas import JsonAdjacencyStore
from repro.bench.reporting import format_table, milliseconds
from repro.bench.runner import warm_cache_time
from repro.core import SQLGraphStore
from repro.datasets import dbpedia


@pytest.fixture(scope="module")
def hash_store(dbpedia_data):
    store = SQLGraphStore()
    store.load_graph(dbpedia_data.graph)
    store.create_attribute_index("vertex", "tag")
    return store


@pytest.fixture(scope="module")
def json_store(dbpedia_data):
    store = JsonAdjacencyStore()
    store.load_graph(dbpedia_data.graph)
    return store


def _json_equivalent(json_store, dbpedia_data, query_id, meta):
    """The same traversal expressed against the JSON-adjacency store."""
    graph = dbpedia_data.graph
    hops = meta["hops"]
    if query_id <= 3:
        starts = [
            place for place in dbpedia_data.place_ids
            if graph.get_vertex(place).get_property("tag") == "large"
        ]
        return lambda: json_store.k_hop(starts, hops, "in", ("isPartOf",))
    if query_id in (7, 8, 9):
        starts = [dbpedia_data.player_ids[0]]
    else:
        tag = {4: "p_small", 5: "p_mid", 6: "p_large", 10: "p_small",
               11: "p_mid"}[query_id]
        starts = [
            player for player in dbpedia_data.player_ids
            if graph.get_vertex(player).get_property("tag") == tag
        ]
    return lambda: json_store.k_hop(starts, hops, labels=("team",),
                                    undirected=True)


def test_fig3_adjacency_microbenchmark(benchmark, hash_store, json_store,
                                       dbpedia_data):
    queries = dbpedia.adjacency_queries(dbpedia_data)
    rows = []
    hash_times = []
    json_times = []
    for query_id, gremlin, meta in queries:
        hash_mean, __ = warm_cache_time(
            lambda q=gremlin: hash_store.run(q), runs=RUNS
        )
        json_fn = _json_equivalent(json_store, dbpedia_data, query_id, meta)
        json_mean, __ = warm_cache_time(json_fn, runs=RUNS)
        result_size = len(json_fn())
        hash_times.append(hash_mean)
        json_times.append(json_mean)
        rows.append([
            query_id, meta["hops"], result_size,
            milliseconds(hash_mean), milliseconds(json_mean),
            json_mean / hash_mean if hash_mean else float("nan"),
        ])
    mean_hash = sum(hash_times) / len(hash_times)
    mean_json = sum(json_times) / len(json_times)
    rows.append(["mean", "", "", milliseconds(mean_hash),
                 milliseconds(mean_json), mean_json / mean_hash])
    record(
        "fig3_adjacency",
        format_table(
            ["query", "hops", "result", "hash_ms", "json_ms", "json/hash"],
            rows,
            title="Figure 3 — adjacency micro-benchmark "
                  "(hash-shredded vs JSON adjacency)",
        ),
    )
    # paper shape: the shredded hash tables beat JSON documents on average
    assert mean_hash < mean_json

    # the headline traversal, benchmarked for pytest-benchmark's record
    query = queries[1][1]
    benchmark(lambda: hash_store.run(query))
