"""Shared benchmark fixtures.

Scale and cost-model parameters live here; every value is documented in
EXPERIMENTS.md.  Absolute numbers are not expected to match the paper (the
substrate is a Python engine, not DB2 on a 24GB server) — the benchmarks
regenerate the *shape* of each table/figure.

Environment knobs:

* ``REPRO_BENCH_RUNS``  — warm-cache repetitions (default 5; paper used 10)
* ``REPRO_BENCH_SCALE`` — multiplier for dataset sizes (default 1.0)
* ``REPRO_BENCH_METRICS`` — set to ``1`` to enable the engine metrics
  registry for the whole session and write an ``engine_metrics`` table to
  ``benchmarks/results/`` at the end.  Off by default: the timing numbers
  in the paper-shape tables should stay instrumentation-free.
"""

import os
import pathlib

import pytest

from repro.baselines import ClientServerLink, KVGraphStore, NativeGraphStore
from repro.bench.reporting import format_metrics
from repro.core import SQLGraphStore
from repro.datasets import dbpedia
from repro.obs.metrics import ENGINE_METRICS

RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
METRICS = os.environ.get("REPRO_BENCH_METRICS", "") == "1"

# client/server cost model (see EXPERIMENTS.md "Simulation parameters"):
# pipe-at-a-time stores pay one primitive-protocol round trip per Blueprints
# call; SQLGraph pays one request round trip per query.
PRIMITIVE_RTT = 15e-6  # per-primitive server dispatch + marshalling cost
REQUEST_RTT = 1.5e-3  # one HTTP request/response, localhost

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def scaled(value):
    return max(1, int(value * SCALE))


def record(name, text):
    """Print a paper-style table and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session", autouse=True)
def engine_metrics():
    """Optionally record engine counters across the benchmark session."""
    if not METRICS:
        yield None
        return
    ENGINE_METRICS.reset()
    ENGINE_METRICS.enable()
    try:
        yield ENGINE_METRICS
    finally:
        ENGINE_METRICS.disable()
        record("engine_metrics", format_metrics(ENGINE_METRICS.snapshot()))


@pytest.fixture(scope="session")
def dbpedia_data():
    config = dbpedia.DBpediaConfig(
        places=scaled(2500),
        players=scaled(1500),
        teams=scaled(80),
        persons=scaled(400),
        artists=scaled(300),
        seed=7,
    )
    return dbpedia.generate(config)


def _indexed_keys():
    # the paper adds indexes for queried keys (§3.3); uri/tag drive starts
    keys = {"uri": False, "tag": False}
    for __, key, kind, __arg in dbpedia.ATTRIBUTE_QUERIES:
        keys[key] = True  # sorted: exists/range/like predicates
    return keys


@pytest.fixture(scope="session")
def sqlgraph_store(dbpedia_data):
    store = SQLGraphStore(client=ClientServerLink(REQUEST_RTT, sleep=True))
    store.load_graph(dbpedia_data.graph)
    for key, sorted_index in _indexed_keys().items():
        store.create_attribute_index("vertex", key, sorted_index=sorted_index)
    return store


@pytest.fixture(scope="session")
def native_store(dbpedia_data):
    store = NativeGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
    store.load_graph(dbpedia_data.graph)
    for key in _indexed_keys():
        store.create_attribute_index(key)
    return store


@pytest.fixture(scope="session")
def kv_store(dbpedia_data):
    store = KVGraphStore(ClientServerLink(PRIMITIVE_RTT, sleep=True))
    store.load_graph(dbpedia_data.graph)
    for key in _indexed_keys():
        store.create_attribute_index(key)
    return store
