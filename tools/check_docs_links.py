#!/usr/bin/env python3
"""Back-compat wrapper: the docs checker now lives in reprolint.

The logic moved to :mod:`repro.analysis.docs` (rule ``docs-links``);
``python tools/reprolint.py`` is the analysis entry point.  This
wrapper keeps the old command and the ``run()`` API working::

    python tools/check_docs_links.py

Exits 0 when clean, 1 with a per-file report otherwise.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import docs  # noqa: E402


def run():
    """Check every markdown file; returns ``{relative_path: [problems]}``."""
    return docs.run(REPO_ROOT)


def cli_commands():
    """The set of ``:name`` commands src/repro/cli.py dispatches on."""
    return docs.cli_commands(REPO_ROOT)


def check_file(path, commands):
    """Problem strings for one markdown file (legacy line-less shape)."""
    return [
        problem
        for _line, problem in docs.check_file(
            REPO_ROOT, pathlib.Path(path), commands
        )
    ]


def main():
    report = run()
    if not report:
        print(f"docs links OK ({len(docs.markdown_files(REPO_ROOT))} files "
              f"checked)")
        return 0
    for name, problems in sorted(report.items()):
        for problem in problems:
            print(f"{name}: {problem}")
    print(f"\n{sum(map(len, report.values()))} problem(s) found")
    return 1


if __name__ == "__main__":
    sys.exit(main())
