#!/usr/bin/env python3
"""Check the repo's markdown docs for dead references.

Three kinds of drift are caught:

1. **Markdown links** — ``[text](path)`` whose relative target does not
   exist (external ``http(s)://`` / ``mailto:`` links and pure ``#anchor``
   links are skipped).
2. **Inline file paths** — backticked references like ``src/repro/cli.py``
   or ``tests/test_explain.py`` that point at files which are gone.
3. **CLI commands** — backticked ``:command`` references (``:explain``,
   ``:stats``, ...) that the shell in ``src/repro/cli.py`` no longer
   implements.

Run from anywhere::

    python tools/check_docs_links.py

Exits 0 when clean, 1 with a per-file report otherwise.  Used by CI and
``tests/test_docs_links.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: markdown files to check: repo root + docs/
MARKDOWN_GLOBS = ("*.md", "docs/*.md")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: backticked repo-relative file path, e.g. `src/repro/cli.py`
INLINE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples|tools)/[A-Za-z0-9_./-]+"
    r"\.[A-Za-z0-9]+)`"
)

#: backticked CLI command, e.g. `:translate` — also matches the command
#: at the start of a longer backticked example like `:sql SELECT ...`
INLINE_CLI_COMMAND = re.compile(r"`(:[a-z]+)[ `]")

#: ``:name`` commands the shell implements, read from the source
CLI_COMMAND_PATTERN = re.compile(r"\"(:[a-z]+)\"")


def markdown_files():
    files = []
    for pattern in MARKDOWN_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def cli_commands():
    """The set of ``:name`` commands src/repro/cli.py dispatches on."""
    source = (REPO_ROOT / "src/repro/cli.py").read_text()
    return set(CLI_COMMAND_PATTERN.findall(source))


def check_file(path, commands):
    """Return a list of problem strings for one markdown file."""
    problems = []
    text = path.read_text()
    base = path.parent

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not (base / target).exists() and not (REPO_ROOT / target).exists():
            problems.append(f"dead link: ({match.group(1)})")

    for match in INLINE_PATH.finditer(text):
        target = match.group(1)
        if target.endswith(".txt"):
            continue  # benchmark outputs are generated, not committed
        if not (REPO_ROOT / target).exists():
            problems.append(f"missing file reference: `{target}`")

    for match in INLINE_CLI_COMMAND.finditer(text):
        command = match.group(1)
        if command not in commands:
            problems.append(
                f"unknown CLI command `{command}` "
                f"(not dispatched in src/repro/cli.py)"
            )

    return problems


def run():
    """Check every markdown file; returns ``{relative_path: [problems]}``."""
    commands = cli_commands()
    report = {}
    for path in markdown_files():
        problems = check_file(path, commands)
        if problems:
            report[str(path.relative_to(REPO_ROOT))] = problems
    return report


def main():
    report = run()
    if not report:
        print(f"docs links OK ({len(markdown_files())} files checked)")
        return 0
    for name, problems in sorted(report.items()):
        for problem in problems:
            print(f"{name}: {problem}")
    print(f"\n{sum(map(len, report.values()))} problem(s) found")
    return 1


if __name__ == "__main__":
    sys.exit(main())
