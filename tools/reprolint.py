#!/usr/bin/env python3
"""reprolint — the repo's static-analysis entry point.

Runs every registered rule (see ``src/repro/analysis/``) over the
source tree and the golden translation corpus::

    python tools/reprolint.py                    # lint src/repro + docs
    python tools/reprolint.py src/repro/core     # lint a subtree
    python tools/reprolint.py --format json      # machine-readable output
    python tools/reprolint.py --list-rules       # rule catalog
    python tools/reprolint.py --select guarded-by,lock-order
    python tools/reprolint.py --write-baseline   # accept current findings

Exits 0 when no *new* (unbaselined) findings exist, 1 otherwise.  The
baseline lives at ``tools/reprolint-baseline.json`` and is empty — the
tree is clean; keep it that way.  See docs/ANALYSIS.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import analysis  # noqa: E402  (registers the rules)

DEFAULT_BASELINE = REPO_ROOT / "tools" / "reprolint-baseline.json"
DEFAULT_PATHS = [REPO_ROOT / "src" / "repro"]


def _split(value):
    return [name.strip() for name in value.split(",") if name.strip()]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="reprolint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file of accepted finding fingerprints")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and exit")
    parser.add_argument("--select", type=_split, default=None,
                        metavar="RULES", help="comma-separated rules to run")
    parser.add_argument("--disable", type=_split, default=None,
                        metavar="RULES", help="comma-separated rules to skip")
    parser.add_argument("--list-rules", action="store_true")
    options = parser.parse_args(argv)

    if options.list_rules:
        for name, checker in sorted(analysis.all_rules().items()):
            print(f"{name:20} [{checker.scope:7}] {checker.description}")
        return 0

    paths = [pathlib.Path(p) for p in options.paths] or DEFAULT_PATHS
    baseline = analysis.load_baseline(options.baseline)
    report = analysis.lint_paths(
        REPO_ROOT, paths,
        select=options.select, disable=options.disable, baseline=baseline,
    )

    if options.write_baseline:
        from repro.analysis.core import write_baseline
        fingerprints = write_baseline(options.baseline, report.findings)
        print(f"wrote {len(fingerprints)} fingerprint(s) to "
              f"{options.baseline}")
        return 0

    if options.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
