#!/usr/bin/env python3
"""reprolint — the repo's static-analysis entry point.

Runs every registered rule (see ``src/repro/analysis/``) over the
source tree and the golden translation corpus::

    python tools/reprolint.py                    # lint src/repro + docs
    python tools/reprolint.py src/repro/core     # lint a subtree
    python tools/reprolint.py --since main       # changed files only
    python tools/reprolint.py --format json      # machine-readable output
    python tools/reprolint.py --list-rules       # rule catalog
    python tools/reprolint.py --select guarded-by,lock-order
    python tools/reprolint.py --write-baseline   # accept current findings

``--since REF`` is the fast local/pre-commit mode: file-scope rules only
check files changed since the git ref; project-scope rules (lock-order,
wal-commit-reachability, error-code-conformance, ...) still analyze the
whole tree, because their invariants are cross-file by nature.

Exits 0 when no *new* (unbaselined) findings exist, 1 otherwise.  The
baseline lives at ``tools/reprolint-baseline.json`` and is empty — the
tree is clean; keep it that way.  Full default-path runs also fail on
*stale* baseline entries (fingerprints matching no live finding), so
the baseline cannot accumulate dead weight that would mask a future
regression.  See docs/ANALYSIS.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import analysis  # noqa: E402  (registers the rules)

DEFAULT_BASELINE = REPO_ROOT / "tools" / "reprolint-baseline.json"
DEFAULT_PATHS = [REPO_ROOT / "src" / "repro"]


def _split(value):
    return [name.strip() for name in value.split(",") if name.strip()]


def _changed_since(ref):
    """Paths of ``.py`` files changed since *ref*, as lint_paths names them.

    Git runs in the *invoking* directory's repository, so ``--since``
    works both here and when reprolint is pointed at another tree.  Names
    are normalized to the form :class:`SourceFile.relative` uses:
    REPO_ROOT-relative posix inside this repo, absolute posix elsewhere.
    """
    cwd = pathlib.Path.cwd()
    toplevel = pathlib.Path(subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        cwd=cwd, capture_output=True, text=True, check=True,
    ).stdout.strip())
    output = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        cwd=toplevel, capture_output=True, text=True, check=True,
    ).stdout
    changed = set()
    for line in output.splitlines():
        name = line.strip()
        if not name.endswith(".py"):
            continue
        path = (toplevel / name).resolve()
        try:
            changed.add(path.relative_to(REPO_ROOT).as_posix())
        except ValueError:
            changed.add(path.as_posix())
    return changed


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="reprolint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file of accepted finding fingerprints")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and exit")
    parser.add_argument("--select", type=_split, default=None,
                        metavar="RULES", help="comma-separated rules to run")
    parser.add_argument("--disable", type=_split, default=None,
                        metavar="RULES", help="comma-separated rules to skip")
    parser.add_argument("--since", metavar="REF", default=None,
                        help="only run file-scope rules on files changed "
                        "since this git ref (project rules still run whole-"
                        "project)")
    parser.add_argument("--list-rules", action="store_true")
    options = parser.parse_args(argv)

    if options.list_rules:
        for name, checker in sorted(analysis.all_rules().items()):
            print(f"{name:20} [{checker.scope:7}] {checker.description}")
        return 0

    paths = [pathlib.Path(p) for p in options.paths] or DEFAULT_PATHS
    file_filter = None
    if options.since is not None:
        try:
            file_filter = _changed_since(options.since)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"reprolint: --since {options.since}: {exc}",
                  file=sys.stderr)
            return 2
    baseline = analysis.load_baseline(options.baseline)
    # stale-baseline detection is only sound when every finding a
    # fingerprint could match was actually collected: full default run
    full_run = not options.paths and file_filter is None \
        and not options.select and not options.disable
    report = analysis.lint_paths(
        REPO_ROOT, paths,
        select=options.select, disable=options.disable, baseline=baseline,
        file_filter=file_filter, check_baseline=full_run,
    )

    if options.write_baseline:
        from repro.analysis.core import write_baseline
        fingerprints = write_baseline(options.baseline, report.findings)
        print(f"wrote {len(fingerprints)} fingerprint(s) to "
              f"{options.baseline}")
        return 0

    if options.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
