"""Tests for the benchmark harness (timing + concurrency drivers)."""

import itertools
import time

from repro.bench.concurrency import run_throughput
from repro.bench.reporting import format_table, milliseconds, ratio
from repro.bench.runner import StopWatch, median_time, warm_cache_time


class TestTimingProtocol:
    def test_warm_cache_discards_first(self):
        calls = []

        def fn():
            calls.append(1)

        mean, samples = warm_cache_time(fn, runs=5)
        assert len(calls) == 5
        assert len(samples) == 5
        assert mean >= 0

    def test_warm_mean_excludes_cold_run(self):
        state = {"first": True}

        def fn():
            if state["first"]:
                state["first"] = False
                time.sleep(0.05)

        mean, samples = warm_cache_time(fn, runs=4)
        assert samples[0] >= 0.05
        assert mean < 0.05

    def test_median_time(self):
        assert median_time(lambda: None, runs=3) >= 0

    def test_stopwatch(self):
        watch = StopWatch()
        watch.measure("op", lambda: time.sleep(0.01))
        watch.measure("op", lambda: None)
        assert watch.maximum("op") >= 0.01
        assert watch.mean("op") >= 0


class _CountingAdapter:
    def __init__(self, fail_every=0):
        self.count = 0
        self.fail_every = fail_every

    def execute(self, operation):
        self.count += 1
        if self.fail_every and self.count % self.fail_every == 0:
            raise RuntimeError("boom")
        time.sleep(0.001)


def op_stream(requester_id):
    return itertools.cycle([("noop", {})])


class TestThroughputDriver:
    def test_single_requester(self):
        adapter = _CountingAdapter()
        result = run_throughput(adapter, op_stream, requesters=1, duration=0.2)
        assert result.operations > 50
        assert result.ops_per_second > 0
        assert result.errors == 0

    def test_multiple_requesters_scale_sleepy_work(self):
        single = run_throughput(
            _CountingAdapter(), op_stream, requesters=1, duration=0.3
        )
        multi = run_throughput(
            _CountingAdapter(), op_stream, requesters=8, duration=0.3
        )
        assert multi.ops_per_second > single.ops_per_second * 2

    def test_errors_counted_not_fatal(self):
        adapter = _CountingAdapter(fail_every=5)
        result = run_throughput(adapter, op_stream, requesters=2, duration=0.2)
        assert result.errors > 0
        assert result.operations > 0

    def test_latency_recording(self):
        result = run_throughput(
            _CountingAdapter(), op_stream, requesters=1, duration=0.2,
            record_latency=True,
        )
        assert "noop" in result.per_op_seconds
        assert result.per_op_max["noop"] >= result.per_op_seconds["noop"] * 0.5


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 1.234], ["bb", 1234.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(10, 0) is None

    def test_milliseconds(self):
        assert milliseconds(0.25) == 250.0
