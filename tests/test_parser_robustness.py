"""Fuzz-style robustness: malformed inputs must raise the proper error
types (never KeyError/AttributeError/... from parser internals)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gremlin.errors import GremlinError
from repro.gremlin.parser import parse_gremlin
from repro.relational.errors import EngineError
from repro.relational.sql.parser import parse_statement

SQL_FRAGMENTS = [
    "SELECT", "FROM", "WHERE", "GROUP BY", "ORDER", "t", "a", ",", "(", ")",
    "*", "=", "1", "'x'", "AND", "JOIN", "ON", "WITH", "AS", "UNION",
    "LIMIT", "?", "||", "IN", "NULL", "CASE", "WHEN", "END", "COUNT",
]

GREMLIN_FRAGMENTS = [
    "g", ".", "V", "out", "(", ")", "'knows'", "{", "}", "it", "==", "1",
    "filter", "has", "loop", "_", ",", "&&", "T.gt", "[", "]", "count",
]


class TestSqlRobustness:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_token_soup(self, seed):
        rng = random.Random(seed)
        text = " ".join(
            rng.choice(SQL_FRAGMENTS) for __ in range(rng.randrange(1, 15))
        )
        try:
            parse_statement(text)
        except EngineError:
            pass  # the only acceptable failure mode

    @given(st.text(max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text(self, text):
        try:
            parse_statement(text)
        except EngineError:
            pass

    def test_deeply_nested_parens(self):
        text = "SELECT " + "(" * 40 + "1" + ")" * 40
        parse_statement(text)

    def test_truncated_statements(self):
        full = "SELECT a, b FROM t WHERE a = 1 GROUP BY b ORDER BY a LIMIT 2"
        for cut in range(1, len(full)):
            try:
                parse_statement(full[:cut])
            except EngineError:
                pass


class TestGremlinRobustness:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_token_soup(self, seed):
        rng = random.Random(seed)
        text = "g." + "".join(
            rng.choice(GREMLIN_FRAGMENTS) for __ in range(rng.randrange(1, 12))
        )
        try:
            parse_gremlin(text)
        except GremlinError:
            pass

    @given(st.text(max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text(self, text):
        try:
            parse_gremlin(text)
        except GremlinError:
            pass

    def test_truncated_pipelines(self):
        full = "g.V.has('age', T.gt, 29).out('knows').filter{it.a == 1}.count()"
        for cut in range(1, len(full)):
            try:
                parse_gremlin(full[:cut])
            except GremlinError:
                pass
