"""Tests for the SQLGraphStore facade."""

import pytest

from repro.baselines.latency import ClientServerLink
from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph
from repro.graph.blueprints import Direction


@pytest.fixture
def store():
    instance = SQLGraphStore()
    instance.load_graph(paper_figure_graph())
    return instance


class TestFacade:
    def test_query_returns_resultset(self, store):
        result = store.query("g.V.count()")
        assert result.columns[0] == "val"
        assert result.rows == [(4,)]

    def test_run_extracts_values(self, store):
        assert store.run("g.V.count()") == [4]

    def test_execute_sql_escape_hatch(self, store):
        result = store.execute_sql("SELECT COUNT(*) FROM ea")
        assert result.scalar() == 5

    def test_attribute_index_used_by_planner(self, store):
        store.create_attribute_index("vertex", "name")
        index = store.database.table("va").find_index(
            "json_val(col(attr),'name')"
        )
        assert index is not None
        assert store.run("g.V('name','josh')") == [4]

    def test_sorted_attribute_index(self, store):
        store.create_attribute_index("vertex", "age", sorted_index=True)
        assert sorted(store.run("g.V.has('age', T.gt, 28)")) == [1, 4]

    def test_table_stats(self, store):
        stats = store.table_stats()
        assert stats["rows"]["va"] == 4
        assert stats["rows"]["ea"] == 5
        assert stats["load"].vertex_count == 4

    def test_storage_bytes_positive(self, store):
        assert store.storage_bytes() > 0

    def test_round_trip_accounting(self):
        link = ClientServerLink()
        instance = SQLGraphStore(client=link)
        instance.load_graph(paper_figure_graph())
        instance.run("g.V.count()")
        assert link.calls == 1  # one query = one round trip
        instance.get_vertex(1)
        assert link.calls == 2

    def test_queries_translated_counter(self, store):
        before = store.queries_translated
        store.run("g.V.count()")
        assert store.queries_translated == before + 1


class TestBlueprintsHandles:
    def test_vertices_iterator(self, store):
        names = sorted(
            vertex.get_property("name") for vertex in store.vertices()
        )
        assert names == ["josh", "lop", "marko", "vadas"]

    def test_edges_iterator(self, store):
        labels = sorted(edge.label for edge in store.edges())
        assert labels == ["created", "created", "knows", "knows", "likes"]

    def test_lazy_vertex_navigation(self, store):
        vertex = store.get_vertex(1)
        out = sorted(v.id for v in vertex.vertices(Direction.OUT))
        assert out == [2, 3, 4]
        knows = sorted(
            v.id for v in vertex.vertices(Direction.OUT, ("knows",))
        )
        assert knows == [2, 4]

    def test_lazy_vertex_edges(self, store):
        vertex = store.get_vertex(4)
        edges = sorted(edge.id for edge in vertex.edges(Direction.BOTH))
        assert edges == [8, 10, 11]

    def test_lazy_edge_endpoints(self, store):
        edge = store.get_edge(9)
        assert edge.vertex(Direction.OUT).id == 1
        assert edge.vertex(Direction.IN).id == 3

    def test_interpreter_over_sqlgraph_blueprints(self, store):
        """The pipe-at-a-time ablation path: reference interpreter driving
        SQLGraph's Blueprints handles must agree with translation."""
        from repro.gremlin import GremlinInterpreter, parse_gremlin

        interpreter = GremlinInterpreter(store)
        result = interpreter.run(parse_gremlin("g.v(1).out('knows').name"))
        assert sorted(result) == sorted(store.run("g.v(1).out('knows').name"))


class TestExportGraph:
    def test_round_trip(self, store):
        exported = store.export_graph()
        assert exported.vertex_count() == 4
        assert exported.edge_count() == 5
        assert exported.get_vertex(1).get_property("name") == "marko"
        assert exported.get_edge(9).label == "created"
        # reload the export into a fresh store: queries agree
        clone = SQLGraphStore()
        clone.load_graph(exported)
        assert clone.run("g.v(1).out.name") == store.run("g.v(1).out.name")

    def test_export_skips_tombstones(self, store):
        store.remove_vertex(2)
        exported = store.export_graph()
        assert exported.get_vertex(2) is None
        assert exported.edge_count() == 3
