"""Multi-client integration tests for the serving layer.

One in-process :class:`SQLGraphServer` over a shared store; real TCP
clients exercise session isolation, per-session observability
attribution, admission-control backpressure, graceful drain, and the
remote shell.
"""

import threading
import time

import pytest

from repro.cli import build_store
from repro.client import ClientError, SQLGraphClient
from repro.server import SQLGraphServer, WireError
from repro.server import protocol
from repro.relational.errors import TransactionError


@pytest.fixture
def server():
    store = build_store("tinker")
    server = SQLGraphServer(store, port=0, max_workers=4, max_queue=4).start()
    yield server
    server.shutdown(drain_timeout_s=1.0)


@pytest.fixture
def client(server):
    with SQLGraphClient("127.0.0.1", server.port) as client:
        yield client


class TestBasicServing:
    def test_gremlin_roundtrip(self, client):
        assert client.run("g.V.has('age', T.gt, 28).name") == \
            ["marko", "josh"]

    def test_query_returns_stats(self, client):
        result = client.query("g.V.name")
        assert len(result) == 4
        assert result.stats["elapsed_s"] > 0
        # second run hits both caches
        again = client.query("g.V.name")
        assert again.stats["translation_cache_hit"] is True
        assert again.stats["plan_cache_hit"] is True

    def test_sql_with_params(self, client):
        result = client.sql(
            "SELECT JSON_VAL(attr, 'name') FROM va "
            "WHERE JSON_VAL(attr, 'age') > ? "
            "ORDER BY JSON_VAL(attr, 'name')",
            [28],
        )
        assert [row[0] for row in result.rows] == ["josh", "marko"]

    def test_typed_error_for_bad_sql(self, client):
        with pytest.raises(WireError) as excinfo:
            client.sql("SELEKT broken")
        assert excinfo.value.code == protocol.SQL_SYNTAX
        assert excinfo.value.retryable is False

    def test_typed_error_for_bad_gremlin(self, client):
        with pytest.raises(WireError) as excinfo:
            client.run("g.V.out(")  # unterminated pipe: syntax error
        assert excinfo.value.code == protocol.GREMLIN_ERROR

    def test_unknown_op_is_bad_request(self, client):
        with pytest.raises(WireError) as excinfo:
            client._request("frobnicate")
        assert excinfo.value.code == protocol.BAD_REQUEST

    def test_session_survives_errors(self, client):
        for __ in range(3):
            with pytest.raises(WireError):
                client.sql("SELEKT nope")
        assert client.ping()["pong"] is True


class TestSessionIsolation:
    def test_transactions_do_not_leak_across_sessions(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as a, \
                SQLGraphClient("127.0.0.1", server.port) as b:
            a.begin()
            # b has no transaction: commit must fail with a typed error
            with pytest.raises(WireError) as excinfo:
                b.commit()
            assert excinfo.value.code == protocol.TRANSACTION_ERROR
            a.rollback()

    def test_rollback_discards_only_this_sessions_writes(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as a, \
                SQLGraphClient("127.0.0.1", server.port) as b:
            baseline = a.sql("SELECT COUNT(*) FROM va WHERE vid >= 0").scalar()
            b.begin()
            b.sql("INSERT INTO va VALUES (?, ?)", [8001, {"tmp": "x"}])
            b.rollback()
            assert a.sql(
                "SELECT COUNT(*) FROM va WHERE vid >= 0"
            ).scalar() == baseline

    def test_double_begin_rejected(self, client):
        client.begin()
        with pytest.raises(WireError) as excinfo:
            client._request("begin")
        assert excinfo.value.code == protocol.TRANSACTION_ERROR
        client.rollback()

    def test_disconnect_rolls_back_open_transaction(self, server):
        baseline = server.store.execute_sql(
            "SELECT COUNT(*) FROM va WHERE vid >= 0"
        ).rows[0][0]
        client = SQLGraphClient("127.0.0.1", server.port).connect()
        client.begin()
        client.sql("INSERT INTO va VALUES (?, ?)", [8002, {"tmp": "x"}])
        session_id = client.session_id
        client.close()  # no commit
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if all(s["id"] != session_id for s in server.active_sessions()):
                break
            time.sleep(0.02)
        assert server.store.execute_sql(
            "SELECT COUNT(*) FROM va WHERE vid >= 0"
        ).rows[0][0] == baseline

    def test_last_query_stats_are_per_session(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as a, \
                SQLGraphClient("127.0.0.1", server.port) as b:
            a.run("g.V.name")
            b.run("g.v(1).out.name")
            stats_a = a.stats()["last_query"]
            stats_b = b.stats()["last_query"]
            assert stats_a["gremlin"] == "g.V.name"
            assert stats_b["gremlin"] == "g.v(1).out.name"
            assert stats_a["session_id"] == a.session_id
            assert stats_b["session_id"] == b.session_id

    def test_explain_analyze_names_the_session(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as client:
            result = client.sql(
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM va WHERE vid >= 0"
            )
            text = "\n".join(row[0] for row in result.rows)
            assert f"Session: {client.session_id}" in text
            assert "127.0.0.1:" in text  # peer address rides along

    def test_slow_query_log_attributes_sessions(self, server):
        server.store.slow_query_threshold = 0.0  # log everything
        try:
            with SQLGraphClient("127.0.0.1", server.port) as client:
                client.run("g.V.name")
                entries = [
                    e for e in server.store.slow_query_log
                    if e.get("session_id") == client.session_id
                ]
                assert entries, "slow-query log never saw the session"
                assert entries[-1]["connection"].startswith("127.0.0.1:")
        finally:
            server.store.slow_query_threshold = None
            server.store.slow_query_log.clear()


class TestConcurrency:
    def test_parallel_clients_agree(self, server):
        errors = []
        results = []

        def worker():
            try:
                with SQLGraphClient("127.0.0.1", server.port) as client:
                    for __ in range(10):
                        results.append(tuple(client.run("g.V.name")))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 40
        assert len(set(results)) == 1  # every read saw the same graph

    def test_concurrent_committed_writes_all_land(self, server):
        clients = 4
        per_client = 5
        errors = []

        def writer(base):
            try:
                with SQLGraphClient("127.0.0.1", server.port) as client:
                    for i in range(per_client):
                        with client.transaction():
                            client.sql(
                                "INSERT INTO va VALUES (?, ?)",
                                [9100 + base * per_client + i,
                                 {"batch": str(base)}],
                            )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        count = server.store.execute_sql(
            "SELECT COUNT(*) FROM va WHERE vid >= 9100 AND vid < 9200"
        ).rows[0][0]
        assert count == clients * per_client


class TestAdmissionControl:
    def test_overflow_connections_fast_fail_with_server_busy(self):
        store = build_store("tinker")
        server = SQLGraphServer(
            store, port=0, max_workers=1, max_queue=1
        ).start()
        try:
            # stall the single worker inside a transaction-held session
            blocker = SQLGraphClient("127.0.0.1", server.port).connect()
            event = threading.Event()

            def hold():
                blocker.begin()
                event.set()
                time.sleep(1.0)
                blocker.rollback()

            holder = threading.Thread(target=hold)
            holder.start()
            event.wait(timeout=5)
            # fill the accept queue with raw connections, then overflow it;
            # queued connections hear nothing (no worker yet) while the
            # overflow one gets an immediate SERVER_BUSY frame
            import socket as socket_module

            from repro.server.protocol import FrameAssembler as Assembler

            saw_busy = False
            extras = []
            try:
                for __ in range(8):
                    sock = socket_module.create_connection(
                        ("127.0.0.1", server.port), timeout=2.0
                    )
                    extras.append(sock)
                    sock.settimeout(1.0)
                    assembler = Assembler()
                    try:
                        while True:
                            chunk = sock.recv(65536)
                            if not chunk:
                                break
                            assembler.feed(chunk)
                            reply = assembler.next_message()
                            if reply is not None:
                                assert reply["error"]["code"] == \
                                    protocol.SERVER_BUSY
                                assert reply["error"]["retryable"] is True
                                saw_busy = True
                                break
                    except socket_module.timeout:
                        continue  # queued, not rejected — keep piling on
                    if saw_busy:
                        break
            finally:
                holder.join()
                for sock in extras:
                    sock.close()
                blocker.close()
            assert saw_busy, "no connection was fast-failed"
            assert server.rejected_busy >= 1
        finally:
            server.shutdown(drain_timeout_s=1.0)


class TestGracefulDrain:
    def test_drain_finishes_open_transaction(self):
        store = build_store("tinker")
        server = SQLGraphServer(
            store, port=0, max_workers=2, max_queue=2, drain_timeout_s=5.0
        ).start()
        client = SQLGraphClient("127.0.0.1", server.port).connect()
        client.begin()
        client.sql("INSERT INTO va VALUES (?, ?)", [9200, {"drain": "yes"}])

        shutdown_thread = threading.Thread(target=server.shutdown)
        shutdown_thread.start()
        time.sleep(0.3)  # server is now draining
        # the in-flight transaction may still finish...
        client.commit()
        # ...but new work after it is rejected with a typed error
        with pytest.raises((WireError, ClientError)) as excinfo:
            client.ping()
        if isinstance(excinfo.value, WireError):
            assert excinfo.value.code == protocol.SHUTTING_DOWN
        client.close()
        shutdown_thread.join(timeout=15)
        assert server.wait_stopped(timeout=1)
        # the commit that beat the drain window is durable in the store
        # (store is closed; check the session-visible acknowledgement)
        assert not shutdown_thread.is_alive()

    def test_new_connections_rejected_while_draining(self):
        store = build_store("tinker")
        server = SQLGraphServer(
            store, port=0, max_workers=2, max_queue=2, drain_timeout_s=2.0
        ).start()
        holder = SQLGraphClient("127.0.0.1", server.port).connect()
        holder.begin()
        shutdown_thread = threading.Thread(target=server.shutdown)
        shutdown_thread.start()
        time.sleep(0.3)
        try:
            with pytest.raises((WireError, ClientError, OSError)) as excinfo:
                SQLGraphClient(
                    "127.0.0.1", server.port,
                    connect_timeout_s=2.0, retries=0,
                ).connect()
            if isinstance(excinfo.value, WireError):
                assert excinfo.value.code == protocol.SHUTTING_DOWN
        finally:
            holder.close()
            shutdown_thread.join(timeout=15)
        assert server.rejected_shutdown >= 0  # counter exists and is consistent


class TestRemoteShell:
    def test_shell_runs_commands_remotely(self, client):
        output = client.shell("g.V.has('age', T.gt, 28).name")
        assert "'marko'" in output and "'josh'" in output
        translated = client.shell(":translate g.v(1).out.name")
        assert "SELECT" in translated

    def test_remote_stats_includes_server_section(self, client):
        client.shell("g.V.name")
        output = client.shell(":stats")
        assert "server:" in output
        assert "active sessions" in output
        assert f"this session: #{client.session_id}" in output
        assert f"session: #{client.session_id}" in output  # last-query line

    def test_quit_is_client_side(self, client):
        with pytest.raises(WireError) as excinfo:
            client.shell(":quit")
        assert excinfo.value.code == protocol.BAD_REQUEST


class TestStatementTimeout:
    def test_set_statement_timeout_roundtrip(self, client):
        result = client.set_statement_timeout(250)
        assert result["settings"]["statement_timeout_ms"] == 250
        result = client.set_statement_timeout(None)
        assert result["settings"]["statement_timeout_ms"] is None

    def test_metrics_flow_into_stats(self, client):
        client.run("g.V.name")
        stats = client.stats()
        server_stats = stats["server"]
        assert server_stats["requests"] >= 1
        assert server_stats["latency"]["count"] >= 1
        assert server_stats["latency"]["p95_ms"] >= 0
        assert stats["session"]["id"] == client.session_id
