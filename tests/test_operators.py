"""Direct unit tests for physical operators (below the SQL surface)."""

from repro.relational import operators as op


def mat(rows, names, qualifier=None):
    return op.MaterializedScan(rows, [(qualifier, n) for n in names])


def col(position):
    return lambda row: row[position]


class TestHashJoin:
    def test_inner_matches(self):
        left = mat([(1, "a"), (2, "b"), (3, "c")], ["k", "v"])
        right = mat([(2, "x"), (3, "y"), (3, "z")], ["k", "w"])
        join = op.HashJoinOp(left, right, [col(0)], [col(0)])
        assert sorted(join.rows()) == [
            (2, "b", 2, "x"), (3, "c", 3, "y"), (3, "c", 3, "z"),
        ]

    def test_null_keys_never_join(self):
        left = mat([(None, "a")], ["k", "v"])
        right = mat([(None, "x")], ["k", "w"])
        join = op.HashJoinOp(left, right, [col(0)], [col(0)])
        assert list(join.rows()) == []

    def test_left_outer_pads(self):
        left = mat([(1,), (9,)], ["k"])
        right = mat([(1, "x")], ["k", "w"])
        join = op.HashJoinOp(left, right, [col(0)], [col(0)], kind="left")
        assert sorted(join.rows(), key=repr) == [
            (1, 1, "x"), (9, None, None),
        ]

    def test_residual_filters_matches(self):
        left = mat([(1, 5)], ["k", "v"])
        right = mat([(1, 3), (1, 9)], ["k", "w"])
        join = op.HashJoinOp(
            left, right, [col(0)], [col(0)],
            residual=lambda row: row[3] > row[1],
        )
        assert list(join.rows()) == [(1, 5, 1, 9)]

    def test_unhashable_key_values_normalized(self):
        left = mat([([1, 2], "a")], ["k", "v"])
        right = mat([([1, 2], "x")], ["k", "w"])
        join = op.HashJoinOp(left, right, [col(0)], [col(0)])
        assert len(list(join.rows())) == 1


class TestNestedLoopJoin:
    def test_theta_join(self):
        left = mat([(1,), (5,)], ["a"])
        right = mat([(3,), (7,)], ["b"])
        join = op.NestedLoopJoinOp(
            left, right, condition=lambda row: row[0] < row[1]
        )
        assert sorted(join.rows()) == [(1, 3), (1, 7), (5, 7)]

    def test_left_outer_theta(self):
        left = mat([(9,)], ["a"])
        right = mat([(3,)], ["b"])
        join = op.NestedLoopJoinOp(
            left, right, condition=lambda row: row[0] < row[1], kind="left"
        )
        assert list(join.rows()) == [(9, None)]


class TestLateralUnnest:
    def test_emits_per_values_row(self):
        child = mat([(1, 2), (3, 4)], ["a", "b"])
        unnest = op.LateralUnnestOp(
            child, [[col(0)], [col(1)]], [("t", "val")]
        )
        assert list(unnest.rows()) == [
            (1, 2, 1), (1, 2, 2), (3, 4, 3), (3, 4, 4),
        ]

    def test_multi_column_rows(self):
        child = mat([(1, "x")], ["a", "s"])
        unnest = op.LateralUnnestOp(
            child, [[col(1), col(0)]], [("t", "l"), ("t", "v")]
        )
        assert list(unnest.rows()) == [(1, "x", "x", 1)]


class TestSetOps:
    def left_right(self):
        left = mat([(1,), (2,), (2,), (3,)], ["a"])
        right = mat([(2,), (4,)], ["a"])
        return left, right

    def test_union_dedups(self):
        left, right = self.left_right()
        assert sorted(op.SetOpOp("union", left, right).rows()) == [
            (1,), (2,), (3,), (4,),
        ]

    def test_intersect(self):
        left, right = self.left_right()
        assert list(op.SetOpOp("intersect", left, right).rows()) == [(2,)]

    def test_except(self):
        left, right = self.left_right()
        assert sorted(op.SetOpOp("except", left, right).rows()) == [(1,), (3,)]

    def test_union_all_flattens(self):
        left, right = self.left_right()
        union = op.UnionAllOp([left, right])
        assert len(list(union.rows())) == 6

    def test_distinct_on_unhashable(self):
        child = mat([([1],), ([1],), ([2],)], ["a"])
        assert len(list(op.DistinctOp(child).rows())) == 2


class TestAggregate:
    def test_grouped(self):
        child = mat([("x", 1), ("x", 3), ("y", 5)], ["g", "v"])
        agg = op.AggregateOp(
            child, [col(0)],
            [("count_star", None, False), ("sum", col(1), False),
             ("min", col(1), False), ("max", col(1), False),
             ("avg", col(1), False)],
            [(None, "g"), (None, "c"), (None, "s"), (None, "mn"),
             (None, "mx"), (None, "av")],
        )
        assert sorted(agg.rows()) == [
            ("x", 2, 4, 1, 3, 2.0), ("y", 1, 5, 5, 5, 5.0),
        ]

    def test_global_empty_input(self):
        child = mat([], ["v"])
        agg = op.AggregateOp(
            child, [], [("count_star", None, False), ("sum", col(0), False)],
            [(None, "c"), (None, "s")],
        )
        assert list(agg.rows()) == [(0, None)]

    def test_distinct_aggregate(self):
        child = mat([(1,), (1,), (2,)], ["v"])
        agg = op.AggregateOp(
            child, [], [("count", col(0), True)], [(None, "c")]
        )
        assert list(agg.rows()) == [(2,)]

    def test_aggregates_skip_nulls(self):
        child = mat([(1,), (None,), (3,)], ["v"])
        agg = op.AggregateOp(
            child, [],
            [("count", col(0), False), ("avg", col(0), False)],
            [(None, "c"), (None, "a")],
        )
        assert list(agg.rows()) == [(2, 2.0)]


class TestSortLimit:
    def test_multi_key_sort(self):
        child = mat([(2, "b"), (1, "z"), (2, "a")], ["n", "s"])
        sort = op.SortOp(child, [col(0), col(1)], [False, True])
        assert list(sort.rows()) == [(1, "z"), (2, "b"), (2, "a")]

    def test_sort_with_nulls(self):
        child = mat([(2,), (None,), (1,)], ["n"])
        sort = op.SortOp(child, [col(0)], [False])
        assert list(sort.rows()) == [(None,), (1,), (2,)]

    def test_limit_offset(self):
        child = mat([(i,) for i in range(10)], ["n"])
        limited = op.LimitOp(child, limit=3, offset=2)
        assert list(limited.rows()) == [(2,), (3,), (4,)]

    def test_offset_only(self):
        child = mat([(i,) for i in range(4)], ["n"])
        assert list(op.LimitOp(child, None, 3).rows()) == [(3,)]


class TestResolver:
    def test_qualified_and_bare(self):
        resolver = op.make_resolver([("t", "a"), ("u", "b")])
        assert resolver("t", "a") == 0
        assert resolver(None, "b") == 1

    def test_ambiguity(self):
        import pytest

        from repro.relational.errors import BindError

        resolver = op.make_resolver([("t", "a"), ("u", "a")])
        assert resolver("u", "a") == 1
        with pytest.raises(BindError):
            resolver(None, "a")


class TestExplainPlan:
    def test_tree_rendering(self):
        child = mat([(1,)], ["a"])
        plan = op.LimitOp(op.DistinctOp(child), 1)
        text = op.explain_plan(plan)
        lines = text.splitlines()
        assert lines[0].startswith("LimitOp")
        assert lines[1].strip().startswith("DistinctOp")
        assert lines[2].strip().startswith("MaterializedScan")
