"""Tests for the LinkBench operation adapters against every store."""

import pytest

from repro.baselines import KVGraphStore, NativeGraphStore
from repro.core import SQLGraphStore
from repro.datasets import linkbench


def make_data():
    return linkbench.build_graph(linkbench.LinkBenchConfig(nodes=120, seed=2))


def make_adapter(kind, data):
    if kind == "sqlgraph":
        store = SQLGraphStore()
        store.load_graph(data.graph)
        return linkbench.SQLGraphLinkBench(store), store
    if kind == "native":
        store = NativeGraphStore()
        store.load_graph(data.graph.copy())
        return linkbench.BlueprintsLinkBench(store), store
    store = KVGraphStore()
    store.load_graph(data.graph)
    return linkbench.BlueprintsLinkBench(store), store


@pytest.fixture(params=["sqlgraph", "native", "kv"])
def adapter_and_store(request):
    data = make_data()
    adapter, store = make_adapter(request.param, data)
    return data, adapter, store


class TestOperations:
    def test_add_node_visible(self, adapter_and_store):
        __, adapter, store = adapter_and_store
        adapter.execute(
            ("add_node", {"id": 7777, "properties": {"type": "user",
                                                     "version": 1,
                                                     "time": 0,
                                                     "data": "zz"}})
        )
        assert store.get_vertex(7777) is not None

    def test_update_node(self, adapter_and_store):
        __, adapter, store = adapter_and_store
        adapter.execute(("update_node", {"id": 5, "key": "data", "value": "Q"}))
        assert store.get_vertex(5).get_property("data") == "Q"

    def test_delete_node(self, adapter_and_store):
        __, adapter, store = adapter_and_store
        adapter.execute(("delete_node", {"id": 9}))
        assert store.get_vertex(9) is None

    def test_get_node_missing_is_ok(self, adapter_and_store):
        __, adapter, __store = adapter_and_store
        adapter.execute(("get_node", {"id": 424242}))

    def test_add_and_delete_link(self, adapter_and_store):
        __, adapter, store = adapter_and_store
        adapter.execute(
            ("add_link", {"id": 8888, "src": 1, "dst": 2, "type": "friend",
                          "properties": {"visibility": 1, "timestamp": 0,
                                         "data": "x"}})
        )
        assert store.get_edge(8888) is not None
        adapter.execute(("delete_link", {"id": 8888}))
        assert store.get_edge(8888) is None

    def test_update_link(self, adapter_and_store):
        data, adapter, store = adapter_and_store
        edge_id = data.edge_ids[0]
        adapter.execute(
            ("update_link", {"id": edge_id, "key": "data", "value": "new"})
        )
        assert store.get_edge(edge_id).get_property("data") == "new"

    def test_count_and_list_links(self, adapter_and_store):
        __, adapter, __store = adapter_and_store
        adapter.execute(("count_link", {"id": 1, "type": "friend"}))
        adapter.execute(("get_link_list", {"id": 1, "type": "friend"}))

    def test_multiget_link(self, adapter_and_store):
        data, adapter, __store = adapter_and_store
        adapter.execute(("multiget_link", {"ids": data.edge_ids[:3]}))

    def test_mixed_stream_executes(self, adapter_and_store):
        data, adapter, __store = adapter_and_store
        generator = linkbench.RequestGenerator(data, seed=9)
        for __ in range(300):
            adapter.execute(next(generator))


class TestCrossStoreAgreement:
    def test_link_list_counts_agree(self):
        data = make_data()
        sql_adapter, sql_store = make_adapter("sqlgraph", data)
        __, native_store = make_adapter("native", data)
        for node in data.node_ids[:20]:
            for assoc in linkbench.ASSOC_TYPES:
                sql_count = sql_store.run(
                    f"g.v({node}).outE('{assoc}').count()"
                )[0]
                native_count = len(
                    list(
                        native_store.graph.get_vertex(node).edges(
                            __import__(
                                "repro.graph.blueprints",
                                fromlist=["Direction"],
                            ).Direction.OUT,
                            (assoc,),
                        )
                    )
                )
                assert sql_count == native_count
