"""Differential testing: translator vs reference interpreter.

The Gremlin semantics are *defined* by the interpreter; the SQL translation
must produce multiset-equal results on arbitrary graphs.  Queries are drawn
from a template pool and run on randomized property graphs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.gremlin import GremlinInterpreter, parse_gremlin

QUERY_TEMPLATES = [
    "g.V.count()",
    "g.E.count()",
    "g.V.out.count()",
    "g.V.out('knows').count()",
    "g.V.in('created').dedup().count()",
    "g.V.both.dedup().count()",
    "g.V.has('age', T.gt, 40).out.name",
    "g.V.has('lang','java').both.dedup()",
    "g.V.filter{it.age > 30 && it.score != null}.name",
    "g.V.out.out.dedup().count()",
    "g.V.outE('likes').inV.dedup()",
    "g.V.inE.outV.count()",
    "g.E.has('weight', T.gt, 0.5).bothV.dedup().count()",
    "g.V.out.aggregate(x).out.except(x).count()",
    "g.V.as('a').out('knows').back('a').dedup()",
    "g.V.and(_().out('knows'), _().out('likes')).count()",
    "g.V.or(_().has('lang'), _().has('score', T.gt, 9)).count()",
    "g.V.out.simplePath.count()",
    "g.V.out.loop(1){it.loops < 2}.dedup().count()",
    "g.V.ifThenElse{it.age != null}{it.age}{-1}",
    "g.V.hasNot('name').count()",
    "g.V.interval('age', 25, 45).out.count()",
    "g.V.copySplit(_().out('knows'), _().in('knows')).exhaustMerge().count()",
    "g.V.out.in.dedup().name",
    "g.E.label.dedup()",
    "g.V.age.order()",
    "g.V.out('rated','follows').dedup().count()",
    "g.V.filter{it.name.contains('1')}.count()",
    "g.V.as('a').out('knows').as('b').select('a', 'b')",
    "g.V.out.range(2, 8).count()",
    "g.V.has('age', T.neq, 30).count()",
]


def normalize_interpreter(values):
    """Interpreter output (elements/values/paths) -> comparable multiset."""
    out = []
    for value in values:
        if hasattr(value, "id") and hasattr(value, "get_property"):
            out.append(value.id)
        elif isinstance(value, (list, tuple)):
            out.append(
                tuple(
                    item.id if hasattr(item, "id") else item for item in value
                )
            )
        else:
            out.append(value)
    return sorted(map(repr, out))


def normalize_sql(values):
    """Translator output (ids/values/path tuples) -> comparable multiset."""
    return sorted(
        repr(tuple(value) if isinstance(value, (list, tuple)) else value)
        for value in values
    )


def check_graph(graph, queries=QUERY_TEMPLATES):
    """Interpreter vs translator, with the compiled-query cache exercised
    in all three states: cold miss, warm hit, and fully disabled."""
    store = SQLGraphStore()
    store.load_graph(graph)
    uncached = SQLGraphStore(plan_cache_size=0, translation_cache_size=0)
    uncached.load_graph(graph)
    interpreter = GremlinInterpreter(graph)
    for text in queries:
        expected = normalize_interpreter(interpreter.run(parse_gremlin(text)))
        got = normalize_sql(store.run(text))
        assert got == expected, text
        warm = normalize_sql(store.run(text))
        assert warm == expected, f"warm cache hit diverged: {text}"
        off = normalize_sql(uncached.run(text))
        assert off == expected, f"uncached run diverged: {text}"


class TestFixedSeeds:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graph_seeds(self, seed):
        graph = random_property_graph(
            seed=seed, n_vertices=25, n_edges=50
        )
        check_graph(graph)

    def test_dense_graph(self):
        check_graph(random_property_graph(seed=99, n_vertices=15, n_edges=90))

    def test_sparse_graph(self):
        check_graph(random_property_graph(seed=98, n_vertices=40, n_edges=10))

    def test_empty_edges(self):
        check_graph(random_property_graph(seed=97, n_vertices=10, n_edges=0))

    def test_capped_columns_spill_paths(self):
        """Query correctness must survive forced hash conflicts (spills)."""
        graph = random_property_graph(seed=42, n_vertices=25, n_edges=80)
        store = SQLGraphStore(max_columns=1)
        store.load_graph(graph)
        interpreter = GremlinInterpreter(graph)
        for text in ["g.V.out.count()", "g.V.out('knows').dedup().count()",
                     "g.V.both.count()", "g.V.out.out.dedup().count()"]:
            expected = interpreter.run(parse_gremlin(text))
            assert store.run(text) == expected, text


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_vertices=st.integers(5, 30),
    n_edges=st.integers(0, 60),
    query=st.sampled_from(QUERY_TEMPLATES),
)
def test_property_differential(seed, n_vertices, n_edges, query):
    graph = random_property_graph(seed, n_vertices, n_edges)
    check_graph(graph, queries=[query])
