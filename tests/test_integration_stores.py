"""Cross-store integration: the full DBpedia query workload must agree.

This is the correctness backbone of the Figure 8 benchmark: SQLGraph (via
translation), the native store and the KV store (both via the pipe-at-a-time
interpreter) run all 31 DBpedia queries on the same small graph and must
return identical multisets.
"""

import threading

import pytest

from repro.baselines import KVGraphStore, NativeGraphStore
from repro.core import SQLGraphStore
from repro.datasets import dbpedia, linkbench

SMALL = dbpedia.DBpediaConfig(
    places=400, players=250, teams=25, persons=80, artists=60, seed=21
)


@pytest.fixture(scope="module")
def loaded():
    data = dbpedia.generate(SMALL)
    sql_store = SQLGraphStore()
    sql_store.load_graph(data.graph)
    sql_store.create_attribute_index("vertex", "uri")
    sql_store.create_attribute_index("vertex", "tag")
    native = NativeGraphStore()
    native.load_graph(data.graph)
    native.create_attribute_index("uri")
    native.create_attribute_index("tag")
    kv = KVGraphStore()
    kv.load_graph(data.graph)
    kv.create_attribute_index("uri")
    kv.create_attribute_index("tag")
    return data, sql_store, native, kv


class TestDBpediaAgreement:
    def test_benchmark_queries_agree(self, loaded):
        data, sql_store, native, kv = loaded
        for query_id, text in dbpedia.benchmark_queries(data):
            expected = sorted(map(repr, sql_store.run(text)))
            assert sorted(map(repr, native.run(text))) == expected, query_id
            assert sorted(map(repr, kv.run(text))) == expected, query_id

    def test_path_queries_agree(self, loaded):
        data, sql_store, native, kv = loaded
        for query_id, text in dbpedia.path_queries(data):
            expected = sorted(map(repr, sql_store.run(text)))
            assert sorted(map(repr, native.run(text))) == expected, query_id
            assert sorted(map(repr, kv.run(text))) == expected, query_id

    def test_attribute_queries_agree_across_schemas(self, loaded):
        """Table 2 lookups: JSON VA results == raw graph scan results."""
        data, sql_store, __, __kv = loaded
        graph = data.graph
        va = sql_store.schema.table_names["va"]
        for query_id, key, kind, argument in dbpedia.ATTRIBUTE_QUERIES:
            if kind == "exists":
                expected = sum(
                    1 for v in graph.vertices()
                    if v.get_property(key) is not None
                )
                sql = (
                    f"SELECT COUNT(*) FROM {va} "
                    f"WHERE JSON_VAL(attr, '{key}') IS NOT NULL"
                )
            elif kind == "like":
                suffix = argument.lstrip("%")
                expected = sum(
                    1 for v in graph.vertices()
                    if isinstance(v.get_property(key), str)
                    and v.get_property(key).endswith(suffix)
                )
                sql = (
                    f"SELECT COUNT(*) FROM {va} "
                    f"WHERE JSON_VAL(attr, '{key}') LIKE '{argument}'"
                )
            else:
                expected = sum(
                    1 for v in graph.vertices()
                    if v.get_property(key) == argument
                )
                rendered = (
                    f"'{argument}'" if isinstance(argument, str) else argument
                )
                sql = (
                    f"SELECT COUNT(*) FROM {va} "
                    f"WHERE JSON_VAL(attr, '{key}') = {rendered}"
                )
            assert sql_store.database.execute(sql).scalar() == expected, query_id


class TestConcurrentSQLGraph:
    def test_mixed_workload_under_threads(self):
        """The LinkBench mix against SQLGraph from 8 threads must neither
        error nor corrupt counts."""
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=300))
        store = SQLGraphStore()
        store.load_graph(data.graph)
        adapter = linkbench.SQLGraphLinkBench(store)
        errors = []

        def worker(requester_id):
            generator = linkbench.RequestGenerator(
                data, seed=5, requester_id=requester_id
            )
            try:
                for __ in range(120):
                    adapter.execute(next(generator))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # consistency: every EA edge endpoint refers to the adjacency copy
        names = store.schema.table_names
        ea_count = store.database.execute(
            f"SELECT COUNT(*) FROM {names['ea']} WHERE eid >= 0"
        ).scalar()
        assert ea_count > 0
        sample = store.database.execute(
            f"SELECT eid, outv, lbl FROM {names['ea']} WHERE eid >= 0 LIMIT 25"
        ).rows
        for eid, outv, label in sample:
            listed = store.run(f"g.v({outv}).outE('{label}')")
            # the vertex may have been tombstoned by a delete_node; a live
            # source must list the edge
            vertex_alive = store.get_vertex(outv) is not None
            if vertex_alive:
                assert eid in listed, (eid, outv, label)

    def test_concurrent_readers_see_stable_counts(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=200))
        store = SQLGraphStore()
        store.load_graph(data.graph)
        expected = store.run("g.V.count()")[0]
        results = []

        def reader():
            for __ in range(20):
                results.append(store.run("g.V.count()")[0])

        threads = [threading.Thread(target=reader) for __ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(results) == {expected}
