"""CFG builder tests on adversarial control flow (PR 10 tentpole).

Every test asserts the *complete* edge set of a small function against
the expected `(src, dst, kind)` triples, using the stable
:meth:`~repro.analysis.cfg.Node.describe` labels — so any lowering
regression (a missing exception edge, a wrong branch kind, a finally
continuation dropped) shows up as a set diff, not a flaky traversal.
"""

import ast
import textwrap

from repro.analysis.cfg import (
    EXC,
    FALSE,
    FLOW,
    TRUE,
    build_cfg,
    calls_at,
    evaluated_exprs,
)
from repro.analysis.dataflow import exists_path, reachable, solve_forward


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def node_named(cfg, label):
    for node in cfg.nodes:
        if node.describe() == label:
            return node.index
    raise AssertionError(f"no node labelled {label!r}")


class TestStraightLineAndBranches:
    def test_straight_line(self):
        cfg = cfg_of("""\
            def f():
                a = 1
                return a
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Assign@2", FLOW),
            ("Assign@2", "Return@3", FLOW),
            ("Return@3", "<exit>", FLOW),
        }

    def test_if_else_branch_kinds(self):
        cfg = cfg_of("""\
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
            """)
        assert cfg.edge_set() == {
            ("<entry>", "If@2", FLOW),
            ("If@2", "Assign@3", TRUE),
            ("If@2", "Assign@5", FALSE),
            ("Assign@3", "Return@6", FLOW),
            ("Assign@5", "Return@6", FLOW),
            ("Return@6", "<exit>", FLOW),
        }

    def test_while_else_with_break(self):
        cfg = cfg_of("""\
            def f():
                while cond():
                    if go():
                        break
                    step()
                else:
                    other()
                return 0
            """)
        assert cfg.edge_set() == {
            ("<entry>", "While@2", FLOW),
            ("While@2", "<raise>", EXC),  # cond() may raise
            ("While@2", "If@3", TRUE),
            ("If@3", "<raise>", EXC),
            ("If@3", "Break@4", TRUE),
            ("If@3", "Expr@5", FALSE),
            ("Expr@5", "<raise>", EXC),
            ("Expr@5", "While@2", FLOW),  # back edge
            ("While@2", "Expr@7", FALSE),  # else: loop exhausted
            ("Expr@7", "<raise>", EXC),
            # break skips the else clause; normal exhaustion runs it
            ("Break@4", "Return@8", FLOW),
            ("Expr@7", "Return@8", FLOW),
            ("Return@8", "<exit>", FLOW),
        }

    def test_with_inside_for_loop(self):
        cfg = cfg_of("""\
            def f(paths):
                for p in paths:
                    with open(p) as fh:
                        use(fh)
                return None
            """)
        assert cfg.edge_set() == {
            ("<entry>", "For@2", FLOW),
            ("For@2", "<raise>", EXC),  # iteration protocol itself calls
            ("For@2", "With@3", TRUE),
            ("With@3", "<raise>", EXC),
            ("With@3", "Expr@4", FLOW),
            ("Expr@4", "<raise>", EXC),
            ("Expr@4", "For@2", FLOW),
            ("For@2", "Return@5", FALSE),
            ("Return@5", "<exit>", FLOW),
        }


class TestTryLowering:
    def test_try_except_else(self):
        cfg = cfg_of("""\
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                else:
                    ok()
                return 1
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Expr@3", FLOW),
            # ValueError is not a catch-all: the exception also escapes
            ("Expr@3", "ExceptHandler@4", EXC),
            ("Expr@3", "<raise>", EXC),
            # else runs only after a clean body, outside the handler scope
            ("Expr@3", "Expr@7", FLOW),
            ("Expr@7", "<raise>", EXC),
            ("ExceptHandler@4", "Expr@5", FLOW),
            ("Expr@5", "<raise>", EXC),
            ("Expr@7", "Return@8", FLOW),
            ("Expr@5", "Return@8", FLOW),
            ("Return@8", "<exit>", FLOW),
        }

    def test_catch_all_swallows_and_bare_raise_reraises(self):
        cfg = cfg_of("""\
            def f():
                try:
                    work()
                except Exception:
                    log()
                    raise
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Expr@3", FLOW),
            ("Expr@3", "ExceptHandler@4", EXC),  # and nowhere else: caught
            ("Expr@3", "<exit>", FLOW),
            ("ExceptHandler@4", "Expr@5", FLOW),
            ("Expr@5", "<raise>", EXC),
            ("Expr@5", "Raise@6", FLOW),
            ("Raise@6", "<raise>", EXC),
        }
        # the only way to the raise-exit runs through the handler
        raise_preds = {
            cfg.nodes[src].describe() for src, _ in cfg.pred[cfg.raise_exit]
        }
        assert raise_preds == {"Expr@5", "Raise@6"}

    def test_nested_try_finally_with_return(self):
        cfg = cfg_of("""\
            def f():
                try:
                    try:
                        return work()
                    finally:
                        inner()
                finally:
                    outer()
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Return@4", FLOW),
            # both the return and a work() exception drain through the
            # inner finally, then the outer one, in order
            ("Return@4", "<finally@6>", FLOW),
            ("Return@4", "<finally@6>", EXC),
            ("<finally@6>", "Expr@6", FLOW),
            ("Expr@6", "<finally@8>", FLOW),
            ("Expr@6", "<finally@8>", EXC),
            ("<finally@8>", "Expr@8", FLOW),
            ("Expr@8", "<exit>", FLOW),  # the pending return resumes
            ("Expr@8", "<raise>", EXC),  # a finally's own raise escapes
        }
        # every entry->exit path passes both finally suites
        for marker in ("<finally@6>", "<finally@8>"):
            blocked_index = node_named(cfg, marker)
            assert not exists_path(
                cfg, cfg.entry, lambda n: n == cfg.exit,
                blocked=lambda n, b=blocked_index: n == b,
            )

    def test_finally_return_swallows_exception(self):
        cfg = cfg_of("""\
            def f():
                try:
                    work()
                finally:
                    return 0
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Expr@3", FLOW),
            ("Expr@3", "<finally@5>", FLOW),
            ("Expr@3", "<finally@5>", EXC),
            ("<finally@5>", "Return@5", FLOW),
            ("Return@5", "<exit>", FLOW),
        }
        # the work() exception cannot escape: the finally returns
        assert cfg.pred[cfg.raise_exit] == []

    def test_continue_inside_try_finally_inside_loop(self):
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    try:
                        if bad(item):
                            continue
                        work(item)
                    finally:
                        release(item)
                done()
            """)
        assert cfg.edge_set() == {
            ("<entry>", "For@2", FLOW),
            ("For@2", "<raise>", EXC),
            ("For@2", "If@4", TRUE),
            ("If@4", "<finally@8>", EXC),
            ("If@4", "Continue@5", TRUE),
            ("Continue@5", "<finally@8>", FLOW),
            ("If@4", "Expr@6", FALSE),
            ("Expr@6", "<finally@8>", EXC),
            ("Expr@6", "<finally@8>", FLOW),
            ("<finally@8>", "Expr@8", FLOW),
            ("Expr@8", "<raise>", EXC),
            # continue and normal completion both resume at the header
            ("Expr@8", "For@2", FLOW),
            ("For@2", "Expr@9", FALSE),
            ("Expr@9", "<raise>", EXC),
            ("Expr@9", "<exit>", FLOW),
        }


class TestNestedFramesStayOpaque:
    def test_comprehension_lambda_and_nested_def_are_single_nodes(self):
        cfg = cfg_of("""\
            def f(rows):
                sizes = [len(r) for r in rows]
                key = lambda r: expensive(r)
                def helper():
                    return risky()
                return sorted(rows, key=key)
            """)
        assert cfg.edge_set() == {
            ("<entry>", "Assign@2", FLOW),
            ("Assign@2", "<raise>", EXC),  # comprehension evaluates here
            ("Assign@2", "Assign@3", FLOW),
            # the lambda body does NOT evaluate here: no exception edge
            ("Assign@3", "FunctionDef@4", FLOW),
            ("FunctionDef@4", "Return@6", FLOW),
            ("Return@6", "<raise>", EXC),
            ("Return@6", "<exit>", FLOW),
        }
        # risky() inside helper never becomes a node of THIS cfg
        labels = {node.describe() for node in cfg.nodes}
        assert "Return@5" not in labels

    def test_calls_at_skips_nested_frames(self):
        tree = ast.parse(textwrap.dedent("""\
            def f():
                key = lambda r: expensive(r)
            """))
        stmt = tree.body[0].body[0]
        assert calls_at(stmt) == []
        assert len(evaluated_exprs(stmt)) == 2  # target + lambda value


class TestDataflowPrimitives:
    def test_exists_path_skips_start_exc_edges_by_default(self):
        cfg = cfg_of("""\
            def f():
                work()
            """)
        start = node_named(cfg, "Expr@2")
        assert not exists_path(
            cfg, start, lambda n: n == cfg.raise_exit
        )
        assert exists_path(
            cfg, start, lambda n: n == cfg.raise_exit,
            include_start_exc=True,
        )

    def test_reachable_honours_edge_filter(self):
        cfg = cfg_of("""\
            def f(x):
                if x:
                    work()
                return 1
            """)
        no_true = reachable(
            cfg, cfg.entry, edge_ok=lambda s, d, k: k != TRUE
        )
        assert node_named(cfg, "Expr@3") not in no_true
        assert node_named(cfg, "Return@4") in no_true

    def test_solve_forward_is_edge_kind_sensitive(self):
        cfg = cfg_of("""\
            def f():
                r = acquire()
                return r
            """)
        acquisition = node_named(cfg, "Assign@2")

        def transfer(node, fact, kind):
            # the binding is live only if the acquisition did not raise
            if node == acquisition and kind != EXC:
                return fact | {"r"}
            return fact

        facts = solve_forward(cfg, set(), transfer)
        assert facts[cfg.exit] == frozenset({"r"})
        assert facts[cfg.raise_exit] == frozenset()
