"""Unit and regression tests for the vectorized (batch-at-a-time) executor.

Covers the :mod:`repro.relational.batch` primitives, the
``REPRO_VECTORIZED`` knob, the row-compat shims, and the EXPLAIN ANALYZE
guarantee that ``actual_rows`` counts *selected* positions exactly —
never physical batch sizes — so observability output is identical in
both executor modes.
"""

import os
import re
import subprocess
import sys

import pytest

from repro.relational import Database
from repro.relational import batch as batch_mod
from repro.relational import operators as op
from repro.relational.batch import (
    BatchRow,
    ColumnBatch,
    MaterializedRelation,
    batches_from_rows,
    row_mode,
)


@pytest.fixture
def vectorized_on():
    """Force vectorized execution for one test, restoring the old mode."""
    old = batch_mod.set_enabled(True)
    yield
    batch_mod.set_enabled(old)


class TestColumnBatch:
    def test_from_rows_dense(self):
        block = ColumnBatch.from_rows([(1, "a"), (2, "b"), (3, "c")], 2)
        assert block.length == 3
        assert block.sel is None
        assert block.columns == [[1, 2, 3], ["a", "b", "c"]]
        assert block.selected_count() == 3
        assert list(block.iter_rows()) == [(1, "a"), (2, "b"), (3, "c")]

    def test_from_rows_empty(self):
        block = ColumnBatch.from_rows([], 2)
        assert block.length == 0
        assert block.columns == [[], []]
        assert list(block.iter_rows()) == []

    def test_zero_width_batch_keeps_count(self):
        # COUNT(*) inputs: no columns, but the row count must survive
        block = ColumnBatch.from_rows([(), (), ()], 0)
        assert block.length == 3
        assert block.selected_count() == 3
        assert list(block.iter_rows()) == [(), (), ()]

    def test_selection_vector_narrows(self):
        block = ColumnBatch([[1, 2, 3, 4], [10, 20, 30, 40]], 4, [1, 3])
        assert block.selected_count() == 2
        assert list(block.positions()) == [1, 3]
        assert list(block.iter_rows()) == [(2, 20), (4, 40)]

    def test_dense_positions_is_range(self):
        # "all live" is represented as a range, the zero-copy marker the
        # expression kernels test for
        block = ColumnBatch([[1, 2]], 2)
        assert type(block.positions()) is range
        assert list(block.positions()) == [0, 1]

    def test_compact_applies_selection(self):
        block = ColumnBatch([[1, 2, 3], ["a", "b", "c"]], 3, [0, 2])
        dense = block.compact()
        assert dense.sel is None
        assert dense.columns == [[1, 3], ["a", "c"]]
        assert dense.length == 2

    def test_compact_dense_is_zero_copy(self):
        block = ColumnBatch([[1, 2]], 2)
        assert block.compact() is block

    def test_batches_from_rows_chunks(self):
        rows = [(i,) for i in range(10)]
        blocks = list(batches_from_rows(iter(rows), 1, batch_size=4))
        assert [b.length for b in blocks] == [4, 4, 2]
        assert [r for b in blocks for r in b.iter_rows()] == rows

    def test_batch_row_view(self):
        view = BatchRow([[1, 2, 3], ["x", "y", "z"]])
        view.i = 1
        assert view[0] == 2 and view[1] == "y"
        view.i = 2
        assert view[0] == 3 and view[1] == "z"


class TestKnob:
    def test_default_follows_env(self):
        # default on, but the whole suite also runs under the
        # REPRO_VECTORIZED=0 CI leg — assert against the environment
        expected = os.environ.get("REPRO_VECTORIZED", "1") != "0"
        assert batch_mod.enabled() == expected

    def test_set_enabled_returns_previous(self):
        old = batch_mod.set_enabled(False)
        try:
            assert not batch_mod.enabled()
        finally:
            batch_mod.set_enabled(old)

    def test_row_mode_context_manager(self, vectorized_on):
        assert batch_mod.enabled()
        with row_mode():
            assert not batch_mod.enabled()
        assert batch_mod.enabled()

    def test_env_knob_disables_vectorization(self):
        # the env var is read at import time, so probe a fresh interpreter
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.relational import batch; print(batch.enabled())"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_VECTORIZED": "0"},
        )
        assert out.stdout.strip() == "False"

    def test_operators_report_mode(self):
        scan = op.MaterializedScan([(1,), (2,)], [(None, "x")])
        with row_mode():
            assert not scan.uses_batches()
        assert scan.uses_batches() == batch_mod.enabled()


class TestMaterializedRelation:
    class _FakePlan:
        columns = [(None, "a"), (None, "b")]

        def __init__(self, rows):
            self._rows = rows

        def rows(self):
            return iter(self._rows)

        def batches(self):
            return batches_from_rows(iter(self._rows), 2, batch_size=2)

    def test_round_trip_both_modes(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        for flag in (True, False):
            old = batch_mod.set_enabled(flag)
            try:
                relation = MaterializedRelation.from_plan(self._FakePlan(rows))
                assert relation.row_count() == 3
                assert list(relation.iter_rows()) == rows
                got = [
                    r for b in relation.iter_batches() for r in b.iter_rows()
                ]
                assert got == rows
            finally:
                batch_mod.set_enabled(old)


class TestRowFnFallback:
    """Operators built by hand with plain row closures (no planner batch
    kernels) must still execute vectorized via the BatchRow fallback."""

    def test_filter_project_with_row_fns(self, vectorized_on):
        source = op.MaterializedScan(
            [(i, i * 10) for i in range(7)], [(None, "a"), (None, "b")]
        )
        filtered = op.FilterOp(source, lambda row: row[0] % 2 == 0)
        project = op.ProjectOp(
            filtered, [lambda row: row[1] + 1], [(None, "c")]
        )
        assert project.uses_batches()
        assert list(project.rows()) == [(1,), (21,), (41,), (61,)]

    def test_aggregate_with_row_fns(self, vectorized_on):
        source = op.MaterializedScan(
            [(1, 5), (2, 6), (1, 7)], [(None, "g"), (None, "v")]
        )
        agg = op.AggregateOp(
            source,
            [lambda row: row[0]],
            [("sum", lambda row: row[1], False)],
            [(None, "g"), (None, "s")],
        )
        assert sorted(agg.rows()) == [(1, 12), (2, 6)]


def _make_db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)"
    )
    for i in range(50):
        database.execute("INSERT INTO t VALUES (?, ?)", [i, i % 5])
    return database


def _analyze(database, sql):
    result = database.execute("EXPLAIN ANALYZE " + sql)
    return "\n".join(row[0] for row in result.rows)


def _actual_rows(text):
    """Ordered list of actual_rows annotations in a rendered plan."""
    return [int(m) for m in re.findall(r"actual_rows=(\d+)", text)]


class TestExplainAnalyzeExactness:
    """Regression: per-operator actual-row counts must count selected
    positions, not batch sizes, so they match row mode exactly."""

    SQL = "SELECT v, COUNT(*) FROM t WHERE v < 3 GROUP BY v"

    def test_counts_identical_across_modes(self):
        database = _make_db()
        old = batch_mod.set_enabled(True)
        try:
            vec = _analyze(database, self.SQL)
            batch_mod.set_enabled(False)
            row = _analyze(database, self.SQL)
        finally:
            batch_mod.set_enabled(old)
        assert _actual_rows(vec) == _actual_rows(row)
        # a 50-row scan filtered to v<3 leaves exactly 30 selected rows
        assert 30 in _actual_rows(vec)

    def test_batches_annotation_only_when_vectorized(self):
        database = _make_db()
        old = batch_mod.set_enabled(True)
        try:
            vec = _analyze(database, self.SQL)
            batch_mod.set_enabled(False)
            row = _analyze(database, self.SQL)
        finally:
            batch_mod.set_enabled(old)
        assert re.search(r"batches=\d+", vec)
        assert not re.search(r"batches=", row)

    def test_filtered_scan_counts_survivors_only(self):
        database = _make_db()
        old = batch_mod.set_enabled(True)
        try:
            text = _analyze(database, "SELECT id FROM t WHERE v = 0")
        finally:
            batch_mod.set_enabled(old)
        # the scan emits physical blocks of 50 rows but only 10 selected
        # positions; the annotation must report the 10
        counts = _actual_rows(text)
        assert counts and all(c == 10 for c in counts)

    def test_limit_counts_are_exact(self):
        database = _make_db()
        old = batch_mod.set_enabled(True)
        try:
            text = _analyze(database, "SELECT id FROM t LIMIT 7")
        finally:
            batch_mod.set_enabled(old)
        assert 7 in _actual_rows(text)
