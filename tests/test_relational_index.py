"""Tests for hash / sorted indexes and the cross-type total order."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.errors import ConstraintError
from repro.relational.index import (
    HashIndex,
    SortedIndex,
    column_key_function,
    composite_key_function,
    total_order_key,
)


def make_hash(unique=False):
    return HashIndex("ix", "t", column_key_function(0), "col(a)", unique)


def make_sorted(unique=False):
    return SortedIndex("ix", "t", column_key_function(0), "col(a)", unique)


class TestHashIndex:
    def test_insert_lookup(self):
        index = make_hash()
        index.insert((0, 0), ("x", 1))
        index.insert((0, 1), ("x", 2))
        index.insert((0, 2), ("y", 3))
        assert sorted(index.lookup("x")) == [(0, 0), (0, 1)]
        assert index.lookup("z") == ()

    def test_delete(self):
        index = make_hash()
        index.insert((0, 0), ("x",))
        index.delete((0, 0), ("x",))
        assert index.lookup("x") == ()

    def test_delete_missing_is_noop(self):
        index = make_hash()
        index.delete((0, 0), ("x",))

    def test_unique_violation(self):
        index = make_hash(unique=True)
        index.insert((0, 0), ("x",))
        with pytest.raises(ConstraintError):
            index.insert((0, 1), ("x",))

    def test_unique_allows_nulls(self):
        index = make_hash(unique=True)
        index.insert((0, 0), (None,))
        index.insert((0, 1), (None,))

    def test_update_moves_entry(self):
        index = make_hash()
        index.insert((0, 0), ("x",))
        index.update((0, 0), ("x",), ("y",))
        assert index.lookup("x") == ()
        assert list(index.lookup("y")) == [(0, 0)]

    def test_distinct_keys(self):
        index = make_hash()
        for i, key in enumerate(["a", "b", "a", "c"]):
            index.insert((0, i), (key,))
        assert index.distinct_keys() == 3


class TestSortedIndex:
    def test_lookup(self):
        index = make_sorted()
        for i, key in enumerate([5, 3, 5, 9]):
            index.insert((0, i), (key,))
        assert sorted(index.lookup(5)) == [(0, 0), (0, 2)]

    def test_range_scan_inclusive(self):
        index = make_sorted()
        for i in range(10):
            index.insert((0, i), (i,))
        assert sorted(
            key for key in index.range_scan(3, 6)
        ) == [(0, 3), (0, 4), (0, 5), (0, 6)]

    def test_range_scan_exclusive_bounds(self):
        index = make_sorted()
        for i in range(10):
            index.insert((0, i), (i,))
        rids = list(index.range_scan(3, 6, low_inclusive=False,
                                     high_inclusive=False))
        assert sorted(rids) == [(0, 4), (0, 5)]

    def test_open_range_skips_nulls(self):
        index = make_sorted()
        index.insert((0, 0), (None,))
        index.insert((0, 1), (4,))
        index.insert((0, 2), (7,))
        assert sorted(index.range_scan(None, None)) == [(0, 1), (0, 2)]

    def test_delete(self):
        index = make_sorted()
        index.insert((0, 0), (4,))
        index.insert((0, 1), (4,))
        index.delete((0, 0), (4,))
        assert list(index.lookup(4)) == [(0, 1)]

    def test_unique_violation(self):
        index = make_sorted(unique=True)
        index.insert((0, 0), (4,))
        with pytest.raises(ConstraintError):
            index.insert((0, 1), (4,))

    def test_mixed_types_do_not_crash(self):
        index = make_sorted()
        for i, key in enumerate([3, "x", None, 2.5, True]):
            index.insert((0, i), (key,))
        assert len(index) == 5
        assert list(index.lookup("x")) == [(0, 1)]


class TestCompositeKeys:
    def test_composite_lookup(self):
        index = HashIndex(
            "ix", "t", composite_key_function([0, 1]), "col(a),col(b)"
        )
        index.insert((0, 0), ("x", 1))
        index.insert((0, 1), ("x", 2))
        assert list(index.lookup(("x", 1))) == [(0, 0)]


class TestTotalOrder:
    def test_rank_order(self):
        values = ["b", None, 3, True, 1.5, "a", False]
        ordered = sorted(values, key=total_order_key)
        assert ordered == [None, False, True, 1.5, 3, "a", "b"]

    @given(st.lists(st.one_of(st.none(), st.booleans(), st.integers(),
                              st.floats(allow_nan=False), st.text()),
                    max_size=30))
    def test_sort_never_raises(self, values):
        sorted(values, key=total_order_key)

    @given(st.integers(), st.integers())
    def test_consistent_with_int_order(self, a, b):
        assert (total_order_key(a) < total_order_key(b)) == (a < b)
