"""Tests for plan shapes: index selection, pushdown, join strategies."""

from repro.relational import Database
from repro.relational import operators as op
from repro.relational.planner import Planner, Runtime
from repro.relational.sql.parser import parse_statement


def plan_for(database, sql):
    statement = parse_statement(sql)
    planner = Planner(database, Runtime(database))
    return planner.plan_select_statement(statement)


def operators_in(plan):
    """Flatten the operator tree into a list of node types."""
    seen = []

    def visit(node):
        seen.append(type(node))
        for attr in ("child", "left", "right", "outer", "children"):
            value = getattr(node, attr, None)
            if isinstance(value, op.Operator):
                visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, op.Operator):
                        visit(item)

    visit(plan)
    return seen


def make_db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s STRING)")
    for i in range(500):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)", [i, i % 7, f"name{i:04d}"]
        )
    database.execute("CREATE TABLE u (id INTEGER, t_id INTEGER)")
    for i in range(100):
        database.execute("INSERT INTO u VALUES (?, ?)", [i, i * 3])
    database.execute("CREATE INDEX t_v ON t (v)")
    database.execute("CREATE INDEX t_s ON t (s) USING sorted")
    database.execute("CREATE INDEX u_tid ON u (t_id)")
    return database


class TestAccessPaths:
    def test_pk_equality_uses_index(self):
        plan = plan_for(make_db(), "SELECT s FROM t WHERE id = 7")
        assert op.IndexEqScan in operators_in(plan)

    def test_secondary_equality_uses_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE v = 3")
        assert op.IndexEqScan in operators_in(plan)

    def test_range_uses_sorted_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE s > 'name0490'")
        assert op.IndexRangeScan in operators_in(plan)

    def test_prefix_like_uses_sorted_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE s LIKE 'name00%'")
        assert op.IndexRangeScan in operators_in(plan)

    def test_suffix_like_cannot_use_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE s LIKE '%42'")
        kinds = operators_in(plan)
        assert op.IndexRangeScan not in kinds
        assert op.SeqScan in kinds

    def test_is_not_null_uses_sorted_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE s IS NOT NULL")
        assert op.IndexRangeScan in operators_in(plan)

    def test_in_list_probes_index(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE v IN (1, 2)")
        assert op.IndexEqScan in operators_in(plan)

    def test_unindexed_predicate_scans(self):
        database = make_db()
        plan = plan_for(database, "SELECT id FROM t WHERE v + 1 = 4")
        assert op.SeqScan in operators_in(plan)

    def test_residual_applied_with_index(self):
        database = make_db()
        result = database.execute(
            "SELECT COUNT(*) FROM t WHERE v = 3 AND id > 400"
        )
        expected = sum(1 for i in range(500) if i % 7 == 3 and i > 400)
        assert result.scalar() == expected


class TestJoins:
    def test_index_nested_loop_when_inner_indexed(self):
        database = make_db()
        plan = plan_for(
            database,
            "SELECT t.s FROM u, t WHERE u.t_id = t.id AND u.id < 5",
        )
        assert op.IndexNLJoinOp in operators_in(plan)

    def test_index_join_keeps_inner_filter(self):
        database = make_db()
        result = database.execute(
            "SELECT COUNT(*) FROM u, t WHERE u.t_id = t.id AND t.v = 0"
        )
        expected = sum(
            1 for i in range(100) if i * 3 < 500 and (i * 3) % 7 == 0
        )
        assert result.scalar() == expected

    def test_hash_join_fallback(self):
        database = Database()
        database.execute("CREATE TABLE a (x INTEGER)")
        database.execute("CREATE TABLE b (x INTEGER)")
        for i in range(20):
            database.execute("INSERT INTO a VALUES (?)", [i])
            database.execute("INSERT INTO b VALUES (?)", [i * 2])
        plan = plan_for(database, "SELECT COUNT(*) FROM a, b WHERE a.x = b.x")
        assert op.HashJoinOp in operators_in(plan)

    def test_non_equi_join_is_nested_loop(self):
        database = Database()
        database.execute("CREATE TABLE a (x INTEGER)")
        database.execute("CREATE TABLE b (x INTEGER)")
        database.execute("INSERT INTO a VALUES (1), (5)")
        database.execute("INSERT INTO b VALUES (2), (3)")
        result = database.execute(
            "SELECT COUNT(*) FROM a, b WHERE a.x < b.x"
        )
        assert result.scalar() == 2

    def test_left_join_uses_index_probe(self):
        database = make_db()
        plan = plan_for(
            database,
            "SELECT u.id FROM u LEFT OUTER JOIN t ON u.t_id = t.id",
        )
        assert op.IndexNLJoinOp in operators_in(plan)

    def test_join_order_starts_from_small_side(self):
        database = make_db()
        # u(100) smaller than t(500): u should drive the index join into t
        plan = plan_for(database, "SELECT COUNT(*) FROM t, u WHERE t.id = u.t_id")
        kinds = operators_in(plan)
        assert op.IndexNLJoinOp in kinds or op.HashJoinOp in kinds

    def test_estimates_present(self):
        plan = plan_for(make_db(), "SELECT id FROM t WHERE v = 3")
        assert plan.est_rows >= 1


class TestCorrectnessUnderOptimization:
    """The same query through different access paths must agree."""

    def test_indexed_vs_scan_agree(self):
        database = make_db()
        indexed = database.execute("SELECT id FROM t WHERE v = 5")
        brute = database.execute("SELECT id FROM t WHERE v + 0 = 5")
        assert sorted(indexed.rows) == sorted(brute.rows)

    def test_range_vs_scan_agree(self):
        database = make_db()
        indexed = database.execute("SELECT id FROM t WHERE s < 'name0100'")
        brute = database.execute("SELECT id FROM t WHERE '' || s < 'name0100'")
        assert sorted(indexed.rows) == sorted(brute.rows)

    def test_join_vs_filtered_cross_agree(self):
        database = make_db()
        joined = database.execute(
            "SELECT COUNT(*) FROM u, t WHERE u.t_id = t.id"
        ).scalar()
        assert joined == sum(1 for i in range(100) if i * 3 < 500)
