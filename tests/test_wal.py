"""Unit tests for the WAL layer: framing, torn tails, group commit."""

import os
import struct

import pytest

from repro.relational.database import Database
from repro.relational.wal import (
    FRAME,
    FSYNC_ALWAYS,
    FSYNC_GROUP,
    FSYNC_OFF,
    WriteAheadLog,
    resolve_checkpoint_every,
    resolve_fsync_mode,
    resolve_group_window,
    scan_log,
)


@pytest.fixture
def log(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal.log"), fsync="off")
    wal.open()
    yield wal
    wal.close()


class TestFraming:
    def test_round_trip(self, log):
        lsn1 = log.append("insert", ("t", (0, 0), (1, "a")))
        lsn2 = log.append("commit", None, txid=7)
        log.flush()
        records, valid_end, torn = scan_log(log.path)
        assert torn is None
        assert valid_end == os.path.getsize(log.path)
        assert [(r[0], r[1], r[2], r[3]) for r in records] == [
            (lsn1, "insert", 0, ("t", (0, 0), (1, "a"))),
            (lsn2, "commit", 7, None),
        ]

    def test_lsns_are_monotonic(self, log):
        lsns = [log.append("meta", ("k", i)) for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5
        assert log.last_lsn == lsns[-1]

    def test_thread_local_txid(self, log):
        log.set_txid(42)
        log.append("insert", ("t", (0, 0), (1,)))
        log.set_txid(0)
        log.append("insert", ("t", (0, 1), (2,)))
        log.flush()
        records, __, __torn = scan_log(log.path)
        assert [r[2] for r in records] == [42, 0]

    def test_pause_suspends_logging(self, log):
        log.append("meta", ("a", 1))
        with log.pause():
            assert not log.active
        assert log.active
        log.flush()
        records, __, __torn = scan_log(log.path)
        assert len(records) == 1

    def test_missing_file_scans_empty(self, tmp_path):
        records, valid_end, torn = scan_log(str(tmp_path / "nope.log"))
        assert records == [] and valid_end == 0 and torn is None


class TestTornTails:
    def fill(self, log, n=3):
        for i in range(n):
            log.append("meta", ("key", i))
        log.flush()
        records, valid_end, __ = scan_log(log.path)
        return records, valid_end

    def test_truncated_header(self, log):
        records, valid_end = self.fill(log)
        with open(log.path, "ab") as fh:
            fh.write(b"\x07\x00\x00")  # partial next-frame header
        got, end, torn = scan_log(log.path)
        assert torn is not None and torn.reason == "truncated frame header"
        assert torn.offset == valid_end
        assert end == valid_end
        assert len(got) == len(records)

    def test_truncated_payload(self, log):
        records, valid_end = self.fill(log)
        last_start = records[-2][4] if len(records) > 1 else 0
        with open(log.path, "r+b") as fh:
            fh.truncate(valid_end - 2)
        got, end, torn = scan_log(log.path)
        assert torn is not None and torn.reason == "truncated payload"
        assert end == last_start
        assert len(got) == len(records) - 1

    def test_crc_mismatch(self, log):
        records, valid_end = self.fill(log)
        last_start = records[-2][4]
        with open(log.path, "r+b") as fh:
            fh.seek(valid_end - 1)
            byte = fh.read(1)
            fh.seek(valid_end - 1)
            fh.write(bytes([byte[0] ^ 0x55]))
        got, end, torn = scan_log(log.path)
        assert torn is not None and torn.reason == "crc mismatch"
        assert end == last_start

    def test_open_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync="off")
        wal.open()
        wal.append("meta", ("a", 1))
        wal.flush()
        wal.close()
        good = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x07\x00\x00")  # torn header
        records, valid_end, torn = scan_log(path)
        assert torn is not None
        wal2 = WriteAheadLog(path, fsync="off")
        wal2.open(append_at=valid_end, next_lsn=records[-1][0] + 1)
        wal2.append("meta", ("b", 2))
        wal2.close()
        records2, __, torn2 = scan_log(path)
        assert torn2 is None
        assert [r[3] for r in records2] == [("a", 1), ("b", 2)]
        assert os.path.getsize(path) > good


class TestGroupCommit:
    def test_always_fsyncs_every_commit_point(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.log"), fsync="always")
        wal.open()
        for i in range(5):
            wal.append("meta", ("k", i))
            wal.commit_point()
        assert wal.fsyncs == 5
        wal.close()

    def test_group_mode_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path / "w.log"), fsync="group", group_window_ms=10_000
        )
        wal.open()
        wal.append("meta", ("k", 0))
        wal.commit_point()  # first: window has never fired -> fsync
        first = wal.fsyncs
        for i in range(1, 50):
            wal.append("meta", ("k", i))
            wal.commit_point()
        assert wal.fsyncs == first  # all inside the window
        wal.close()

    def test_off_mode_never_fsyncs_at_commit(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.log"), fsync="off")
        wal.open()
        wal.append("meta", ("k", 1))
        wal.commit_point()
        assert wal.fsyncs == 0
        # but the record reached the OS: it is visible to a scan
        records, __, __torn = scan_log(wal.path)
        assert len(records) == 1
        wal.close()

    def test_commit_point_noop_when_nothing_unsynced(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.log"), fsync="always")
        wal.open()
        wal.append("meta", ("k", 1))
        wal.commit_point()
        wal.commit_point()  # nothing new
        assert wal.fsyncs == 1
        wal.close()


class TestReset:
    def test_reset_truncates_and_stamps_checkpoint(self, log):
        for i in range(4):
            log.append("meta", ("k", i))
        last = log.last_lsn
        log.reset(last)
        records, __, torn = scan_log(log.path)
        assert torn is None
        assert len(records) == 1
        lsn, kind, txid, data, __end = records[0]
        assert kind == "checkpoint"
        assert data == {"snapshot_lsn": last}
        assert lsn == last + 1  # LSNs survive truncation
        assert log.records_since_checkpoint == 1
        assert log.checkpoints == 1


class TestKnobResolution:
    def test_fsync_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_FSYNC", raising=False)
        assert resolve_fsync_mode() == FSYNC_GROUP
        assert resolve_fsync_mode("ALWAYS") == FSYNC_ALWAYS
        monkeypatch.setenv("REPRO_WAL_FSYNC", "off")
        assert resolve_fsync_mode() == FSYNC_OFF
        with pytest.raises(ValueError):
            resolve_fsync_mode("sometimes")

    def test_group_window(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_GROUP_WINDOW_MS", raising=False)
        assert resolve_group_window() == pytest.approx(0.005)
        assert resolve_group_window(20) == pytest.approx(0.020)
        monkeypatch.setenv("REPRO_WAL_GROUP_WINDOW_MS", "100")
        assert resolve_group_window() == pytest.approx(0.1)

    def test_checkpoint_every(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_CHECKPOINT_EVERY", raising=False)
        assert resolve_checkpoint_every() == 10_000
        assert resolve_checkpoint_every(0) == 0
        monkeypatch.setenv("REPRO_WAL_CHECKPOINT_EVERY", "25")
        assert resolve_checkpoint_every() == 25

    def test_env_knobs_reach_database(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_FSYNC", "always")
        monkeypatch.setenv("REPRO_WAL_CHECKPOINT_EVERY", "3")
        database = Database(path=str(tmp_path / "db"))
        assert database.wal.fsync_mode == FSYNC_ALWAYS
        assert database._wal_checkpoint_every == 3
        database.close()


class TestAutoCheckpoint:
    def test_auto_checkpoint_truncates_log(self, tmp_path):
        database = Database(
            path=str(tmp_path / "db"), wal_fsync="off",
            wal_checkpoint_every=5,
        )
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        for i in range(20):
            database.execute(f"INSERT INTO t VALUES ({i})")
        assert database.wal.checkpoints >= 2
        assert database.wal.records_since_checkpoint < 10
        # recovery after auto-checkpoints still sees everything
        database.wal.flush()
        reopened = Database(path=str(tmp_path / "db"), wal_fsync="off")
        assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 20
        reopened.close()
        database.close()

    def test_frame_struct_is_eight_bytes(self):
        assert FRAME.size == 8
        assert FRAME.pack(1, 2) == struct.pack("<II", 1, 2)
