"""The SQL/translation invariant checker over the golden corpus.

Positive direction: every Table-8 and Figure-7 query runs through the
production pipeline and passes `verify_translation` with zero problems
(the acceptance bar: 100% of the corpus validates). Negative direction:
`verify_sql` is fed deliberately broken SQL/recipes and must name each
violation — dropped lazy-delete filter, parameter-slot drift, CTE abuse,
and a busted unnest triad.
"""

from __future__ import annotations

import pytest

from repro.analysis.corpus import FIGURE7_EXAMPLES, TABLE8_MATRIX, golden_corpus
from repro.analysis.sqlcheck import verify_sql, verify_translation
from repro.core import SQLGraphStore
from repro.datasets.tinker import tinkerpop_classic


@pytest.fixture(scope="module")
def store():
    graph = tinkerpop_classic()
    s = SQLGraphStore()
    s.load_graph(graph)
    return s


@pytest.fixture(scope="module")
def schema(store):
    return store.schema


def test_corpus_merges_both_families():
    corpus = golden_corpus()
    assert set(TABLE8_MATRIX) <= set(corpus)
    assert set(FIGURE7_EXAMPLES) <= set(corpus)
    assert len(corpus) == len(TABLE8_MATRIX) + len(FIGURE7_EXAMPLES)


@pytest.mark.parametrize("name", sorted(golden_corpus()))
def test_golden_translation_satisfies_invariants(store, name):
    """100% of the golden corpus passes the invariant checker."""
    problems = verify_translation(store, golden_corpus()[name])
    assert problems == [], f"{name}: {problems}"


# ---------------------------------------------------------------------------
# negative cases: verify_sql must name each violation
# ---------------------------------------------------------------------------

def test_unparseable_sql_reported(schema):
    problems = verify_sql(schema, "SELECT FROM WHERE", [], 0)
    assert any("parse" in p for p in problems)


def test_dropped_vertex_lazy_delete_filter(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va), "
           "t2 AS (SELECT vid FROM t1) "
           "SELECT vid FROM t2")
    problems = verify_sql(schema, sql, [], 0)
    assert any("vid >= 0" in p for p in problems)


def test_dropped_edge_lazy_delete_filter(schema):
    sql = ("WITH t1 AS (SELECT eid FROM ea) "
           "SELECT eid FROM t1")
    problems = verify_sql(schema, sql, [], 0)
    assert any("eid >= 0" in p for p in problems)


def test_lazy_delete_filter_satisfies(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0) "
           "SELECT vid FROM t1")
    assert verify_sql(schema, sql, [], 0) == []


def test_joined_scan_is_exempt_from_lazy_delete(schema):
    # adjacency joins hit va through a join, where tombstoned vids can't
    # appear (the opa/ipa side was filtered upstream) — no filter required
    sql = ("WITH t1 AS (SELECT va.vid FROM va "
           "JOIN ea ON ea.svid = va.vid WHERE ea.eid >= 0) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [], 0)
    assert not any("vid >= 0" in p for p in problems)


def test_placeholder_count_must_match_recipe(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0 AND vid = ?) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [], 1)
    assert any("placeholder" in p or "recipe" in p for p in problems)


def test_recipe_slot_out_of_range(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0 AND vid = ?) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [5], 1)
    assert any("slot" in p for p in problems)


def test_unused_value_slot_reported(schema):
    # two extracted values but the recipe only consumes slot 0: the
    # plan-cache key over-splits
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0 AND vid = ?) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [0], 2)
    assert any("never bound" in p for p in problems)


def test_undefined_cte_reference(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0) "
           "SELECT vid FROM t9")
    problems = verify_sql(schema, sql, [], 0)
    assert any("t9" in p for p in problems)


def test_cte_used_before_definition(schema):
    sql = ("WITH t1 AS (SELECT vid FROM t2), "
           "t2 AS (SELECT vid FROM va WHERE vid >= 0) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [], 0)
    assert any("t2" in p for p in problems)


def test_duplicate_cte_definition(schema):
    sql = ("WITH t1 AS (SELECT vid FROM va WHERE vid >= 0), "
           "t1 AS (SELECT vid FROM va WHERE vid >= 0) "
           "SELECT vid FROM t1")
    problems = verify_sql(schema, sql, [], 0)
    assert any("t1" in p for p in problems)


def test_unnest_triad_budget_violation(store, schema):
    """An unnest enumerating too few triads is caught."""
    budget = schema.out_columns
    triads = ", ".join(
        f"(p.eid{i}, p.lbl{i}, p.val{i})" for i in range(budget - 1)
    )
    sql = (
        "WITH t1 AS (SELECT vid FROM va WHERE vid >= 0), "
        "t2 AS (SELECT n.x1 AS eid FROM t1, opa AS p, "
        f"TABLE(VALUES {triads}) AS n(x1, x2, x3) "
        "WHERE p.vid = t1.vid) "
        "SELECT eid FROM t2"
    )
    problems = verify_sql(schema, sql, [], 0)
    assert any("triad" in p or "budget" in p for p in problems)


def test_unnest_duplicate_triad_caught(store, schema):
    budget = schema.out_columns
    indices = [0] + list(range(budget - 1))  # duplicates 0, drops last
    triads = ", ".join(
        f"(p.eid{i}, p.lbl{i}, p.val{i})" for i in indices
    )
    sql = (
        "WITH t1 AS (SELECT vid FROM va WHERE vid >= 0), "
        "t2 AS (SELECT n.x1 AS eid FROM t1, opa AS p, "
        f"TABLE(VALUES {triads}) AS n(x1, x2, x3) "
        "WHERE p.vid = t1.vid) "
        "SELECT eid FROM t2"
    )
    problems = verify_sql(schema, sql, [], 0)
    assert problems != []


def test_verify_translation_catches_interpreter_only_query(store):
    """A query the translator rejects surfaces as a problem, not a crash."""
    problems = verify_translation(store, "g.V.loop(2){it.loops < 3}")
    assert any("does not translate" in p for p in problems)
