"""Tests for the observability layer: metrics registry, execution stats,
page-cache accounting, translation traces, and store-level query stats."""

import pytest

from repro.graph.model import PropertyGraph
from repro.core.store import SQLGraphStore
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
    ENGINE_METRICS,
)
from repro.relational import Database


@pytest.fixture(autouse=True)
def clean_engine_metrics():
    """Keep the process-global registry disabled and zeroed around tests."""
    ENGINE_METRICS.disable()
    ENGINE_METRICS.reset()
    yield
    ENGINE_METRICS.disable()
    ENGINE_METRICS.reset()


def small_store(**kwargs):
    graph = PropertyGraph()
    for i in range(1, 5):
        graph.add_vertex(i, {"name": f"v{i}", "rank": i})
    graph.add_edge(1, 2, "knows", 10)
    graph.add_edge(2, 3, "knows", 11)
    graph.add_edge(3, 4, "knows", 12)
    store = SQLGraphStore(**kwargs)
    store.load_graph(graph)
    return store


class TestRegistry:
    def test_counter_inc_and_reset(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert registry.value("x") == 5
        registry.reset()
        assert registry.value("x") == 0

    def test_counter_float_increments(self):
        counter = Counter("t")
        counter.inc(0.25)
        counter.inc(0.25)
        assert counter.value == 0.5

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_name_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_value_of_unknown_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_snapshot_flat(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc(2)
        histogram = registry.histogram("h")
        histogram.observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["h.count"] == 1
        assert snapshot["h.total_s"] == pytest.approx(0.001)

    def test_timer_disabled_observes_nothing(self):
        registry = MetricsRegistry(enabled=False)
        with registry.time("stage"):
            pass
        assert registry.histogram("stage").count == 0

    def test_timer_enabled_observes(self):
        registry = MetricsRegistry(enabled=True)
        with registry.time("stage"):
            pass
        assert registry.histogram("stage").count == 1


class TestHistogram:
    def test_mean_and_bounds(self):
        histogram = TimingHistogram("h")
        for seconds in (0.001, 0.002, 0.003):
            histogram.observe(seconds)
        assert histogram.count == 3
        assert histogram.mean() == pytest.approx(0.002)
        assert histogram.minimum == pytest.approx(0.001)
        assert histogram.maximum == pytest.approx(0.003)

    def test_quantile_upper_bound(self):
        histogram = TimingHistogram("h")
        for __ in range(100):
            histogram.observe(0.001)
        # the 1ms observations land in the bucket bounded above by ~1.024ms
        assert 0.001 <= histogram.quantile(0.95) <= 0.002

    def test_empty_quantile(self):
        assert TimingHistogram("h").quantile(0.5) == 0.0


class TestDisabledFastPath:
    def test_disabled_engine_records_nothing(self):
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1)")
        database.execute("SELECT * FROM t WHERE id = 1")
        assert ENGINE_METRICS.value("pages.hits") == 0
        assert ENGINE_METRICS.value("index.probes") == 0
        assert ENGINE_METRICS.value("lock.acquisitions") == 0

    def test_enabled_engine_records(self):
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1)")
        ENGINE_METRICS.enable()
        database.execute("SELECT * FROM t WHERE id = 1")
        assert ENGINE_METRICS.value("pages.hits") > 0
        assert ENGINE_METRICS.value("index.probes") >= 1
        assert ENGINE_METRICS.value("lock.acquisitions") >= 1


class TestPageCacheAccounting:
    def test_hit_miss_deltas_in_execution_stats(self):
        # 1-page pool, 3-page table (256 rows/page) forces misses
        database = Database(buffer_pool_pages=1)
        database.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        for i in range(600):
            database.execute("INSERT INTO t VALUES (?, ?)", [i, i])
        database.collect_stats = True
        database.execute("SELECT COUNT(*) FROM t")
        stats = database.last_statement_stats
        assert stats.page_hits + stats.page_misses > 0
        assert stats.page_misses > 0  # 1-page pool can't hold the table
        # pool-level counters and per-query deltas agree in kind
        assert database.buffer_pool.misses >= stats.page_misses

    def test_warm_pool_is_all_hits(self):
        database = Database()  # unbounded pool
        database.execute("CREATE TABLE t (id INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        database.execute("SELECT * FROM t")  # warm
        database.collect_stats = True
        database.execute("SELECT * FROM t")
        stats = database.last_statement_stats
        assert stats.page_misses == 0
        assert stats.page_hits > 0


class TestExecutionStats:
    def test_operator_actuals_recorded(self):
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER)")
        for i in range(7):
            database.execute("INSERT INTO t VALUES (?)", [i])
        database.collect_stats = True
        result = database.execute("SELECT id FROM t")
        assert len(result.rows) == 7
        stats = database.last_statement_stats
        assert stats.rows_returned == 7
        # root ProjectOp emitted exactly the returned rows
        assert any(
            entry.rows_out == 7 for entry in stats.operators.values()
        )
        assert stats.elapsed_s > 0

    def test_as_dict_round_trip(self):
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER)")
        database.collect_stats = True
        database.execute("SELECT * FROM t")
        payload = database.last_statement_stats.as_dict()
        assert payload["rows_returned"] == 0
        assert set(payload) >= {
            "elapsed_s", "page_hits", "page_misses", "index_probes",
        }


class TestTranslationTrace:
    def test_trace_counts_ctes_and_templates(self):
        store = small_store()
        store.translate("g.V.out('knows').name")
        trace = store.translator.last_trace
        assert trace.cte_count >= 3
        assert any("g.V start" in event for event in trace.events)
        assert any("property(name)" in event for event in trace.events)

    def test_graphquery_merge_counted(self):
        store = small_store()
        store.translate("g.V.has('name', 'v1')")
        assert store.translator.last_trace.graphquery_merges >= 1

    def test_loop_unroll_counted(self):
        store = small_store()
        store.translate("g.V.out('knows').loop(1){it.loops < 3}.name")
        trace = store.translator.last_trace
        assert trace.loop_unrolls == 1
        assert any("unrolled" in event for event in trace.events)

    def test_describe_mentions_cte_count(self):
        store = small_store()
        store.translate("g.V.name")
        description = store.translator.last_trace.describe()
        assert "CTE" in description.splitlines()[0]


class TestStoreQueryStats:
    def test_last_query_stats_populated(self):
        store = small_store()
        values = store.run("g.V.out('knows').name")
        stats = store.last_query_stats
        assert stats.gremlin == "g.V.out('knows').name"
        assert stats.rows_returned == len(values)
        assert stats.translate_s > 0
        assert stats.elapsed_s >= stats.translate_s
        assert stats.trace is not None
        assert stats.execution.page_hits + stats.execution.page_misses > 0

    def test_page_cache_deltas_without_collect_stats(self):
        store = small_store()
        store.run("g.V.name")  # warm
        store.run("g.V.name")
        execution = store.last_query_stats.execution
        assert execution.page_misses == 0
        assert execution.page_hits > 0

    def test_operator_stats_adopted_when_collecting(self):
        store = small_store()
        store.database.collect_stats = True
        store.run("g.V.out('knows').name")
        execution = store.last_query_stats.execution
        assert execution.operators  # per-operator actuals present
        assert execution.cte_plans  # translated query ran through CTEs

    def test_slow_query_log_threshold(self):
        store = small_store(slow_query_threshold=0.0)
        store.run("g.V.name")
        assert len(store.slow_query_log) == 1
        entry = store.slow_query_log[0]
        assert entry["gremlin"] == "g.V.name"
        assert entry["threshold_s"] == 0.0
        assert entry["trace"]["cte_count"] >= 1
        assert "elapsed_s" in entry

    def test_slow_query_log_disabled_by_default(self):
        store = small_store()
        store.run("g.V.name")
        assert store.slow_query_log == []

    def test_slow_query_log_bounded(self):
        store = small_store(slow_query_threshold=0.0)
        store.SLOW_QUERY_LOG_LIMIT = 5
        for __ in range(8):
            store.run("g.V.name")
        assert len(store.slow_query_log) == 5
