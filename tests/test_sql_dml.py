"""Tests for INSERT / UPDATE / DELETE / DDL execution."""

import pytest

from repro.relational import Database
from repro.relational.errors import BindError, CatalogError, ConstraintError


class TestInsert:
    def test_insert_values(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b STRING)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2

    def test_insert_column_list_fills_nulls(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b STRING, c DOUBLE)")
        db.execute("INSERT INTO t (c, a) VALUES (2.5, 1)")
        assert db.execute("SELECT a, b, c FROM t").rows == [(1, None, 2.5)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INTEGER)")
        db.execute("CREATE TABLE dst (a INTEGER)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = db.execute("INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1")
        assert result.rowcount == 2
        assert sorted(db.execute("SELECT a FROM dst").rows) == [(20,), (30,)]

    def test_primary_key_violation(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_coerces_types(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b STRING)")
        db.execute("INSERT INTO t VALUES ('5', 9)")
        assert db.execute("SELECT a, b FROM t").rows == [(5, "9")]


class TestUpdate:
    def test_update_with_where(self, people_db):
        result = people_db.execute(
            "UPDATE people SET city = 'lyon' WHERE city = 'paris'"
        )
        assert result.rowcount == 2
        assert people_db.execute(
            "SELECT COUNT(*) FROM people WHERE city = 'lyon'"
        ).scalar() == 2

    def test_update_expression_uses_old_row(self, people_db):
        people_db.execute("UPDATE people SET age = age + 1 WHERE id = 1")
        assert people_db.execute(
            "SELECT age FROM people WHERE id = 1"
        ).scalar() == 35

    def test_update_all_rows(self, people_db):
        result = people_db.execute("UPDATE people SET age = 0")
        assert result.rowcount == 5

    def test_update_via_index_point_lookup(self, people_db):
        # id is the primary key; the point update should not scan
        result = people_db.execute("UPDATE people SET name = 'X' WHERE id = 3")
        assert result.rowcount == 1

    def test_update_maintains_indexes(self, people_db):
        people_db.execute("CREATE INDEX ix_age ON people (age)")
        people_db.execute("UPDATE people SET age = 99 WHERE id = 1")
        assert people_db.execute(
            "SELECT name FROM people WHERE age = 99"
        ).rows == [("alice",)]


class TestDelete:
    def test_delete_with_where(self, people_db):
        result = people_db.execute("DELETE FROM people WHERE age < 28")
        assert result.rowcount == 1
        assert people_db.execute("SELECT COUNT(*) FROM people").scalar() == 4

    def test_delete_all(self, people_db):
        result = people_db.execute("DELETE FROM orders")
        assert result.rowcount == 6
        assert people_db.execute("SELECT COUNT(*) FROM orders").scalar() == 0

    def test_delete_then_insert(self, people_db):
        people_db.execute("DELETE FROM people WHERE id = 1")
        people_db.execute(
            "INSERT INTO people VALUES (1, 'anna', 30, 'rome')"
        )
        assert people_db.execute(
            "SELECT name FROM people WHERE id = 1"
        ).rows == [("anna",)]


class TestDdl:
    def test_create_drop(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("DROP TABLE t")
        with pytest.raises(BindError):
            db.execute("SELECT * FROM t")

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")

    def test_drop_missing_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("DROP TABLE t")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS t")

    def test_create_index_populates(self, people_db):
        people_db.execute("CREATE INDEX ix ON people (city)")
        table = people_db.table("people")
        index = table.find_index("col(city)")
        assert index is not None
        assert list(index.lookup("london"))

    def test_create_expression_index(self, db):
        db.execute("CREATE TABLE docs (id INTEGER, body JSON)")
        db.execute("INSERT INTO docs VALUES (?, ?)", [1, {"k": "v"}])
        db.execute("CREATE INDEX ix ON docs (JSON_VAL(body, 'k'))")
        index = db.table("docs").find_index("json_val(col(body),'k')")
        assert index is not None
        assert list(index.lookup("v"))

    def test_unique_index_enforced(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE UNIQUE INDEX ix ON t (a)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_sorted_index_supports_range(self, people_db):
        people_db.execute("CREATE INDEX ix ON people (age) USING sorted")
        result = people_db.execute("SELECT name FROM people WHERE age > 30")
        assert sorted(result.rows) == [("alice",), ("carol",)]
