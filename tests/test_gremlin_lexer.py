"""Tests for the Gremlin tokenizer."""

import pytest

from repro.gremlin.errors import GremlinSyntaxError
from repro.gremlin.lexer import tokenize


def kinds(text):
    return [(token.kind, token.value) for token in tokenize(text)[:-1]]


class TestTokenize:
    def test_pipeline_shape(self):
        tokens = kinds("g.V.out('knows')")
        assert tokens == [
            ("IDENT", "g"), ("OP", "."), ("IDENT", "V"), ("OP", "."),
            ("IDENT", "out"), ("OP", "("), ("STRING", "knows"), ("OP", ")"),
        ]

    def test_double_quoted_strings(self):
        assert kinds('"hi there"') == [("STRING", "hi there")]

    def test_string_escapes(self):
        assert kinds(r"'a\'b\nc'") == [("STRING", "a'b\nc")]

    def test_unterminated_string(self):
        with pytest.raises(GremlinSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        assert kinds("1 2.5 1e3") == [
            ("NUMBER", "1"), ("NUMBER", "2.5"), ("NUMBER", "1e3"),
        ]

    def test_range_operator_not_a_decimal(self):
        values = [v for __, v in kinds("1..3")]
        assert values == ["1", "..", "3"]

    def test_closure_operators(self):
        values = [v for __, v in kinds("{it.age >= 2 && !x || y != z}")]
        assert "{" in values and "}" in values
        assert ">=" in values and "&&" in values
        assert "!" in values and "||" in values and "!=" in values

    def test_comments_skipped(self):
        assert kinds("g // trailing\n.V") == [
            ("IDENT", "g"), ("OP", "."), ("IDENT", "V"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(GremlinSyntaxError):
            tokenize("g.V @")

    def test_underscore_identifier(self):
        assert kinds("_()")[0] == ("IDENT", "_")
