"""Tests for the SQL tokenizer."""

import pytest

from repro.relational.errors import SqlSyntaxError
from repro.relational.sql.lexer import tokenize


def kinds(text):
    return [(token.kind, token.value) for token in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select From")[0] == ("KEYWORD", "SELECT")
        assert kinds("select From")[1] == ("KEYWORD", "FROM")

    def test_identifiers(self):
        assert kinds("foo _bar x1") == [
            ("IDENT", "foo"), ("IDENT", "_bar"), ("IDENT", "x1"),
        ]

    def test_quoted_identifier(self):
        assert kinds('"Select"') == [("IDENT", "Select")]

    def test_string_with_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        assert kinds("1 2.5 1e3 2.5E-2") == [
            ("NUMBER", "1"), ("NUMBER", "2.5"), ("NUMBER", "1e3"),
            ("NUMBER", "2.5E-2"),
        ]

    def test_qualified_name_not_a_float(self):
        assert kinds("t1.a") == [
            ("IDENT", "t1"), ("OP", "."), ("IDENT", "a"),
        ]

    def test_operators(self):
        assert [v for __, v in kinds("<= >= <> != || ?")] == [
            "<=", ">=", "<>", "!=", "||", "?",
        ]

    def test_line_comment(self):
        assert kinds("select -- comment\n 1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1"),
        ]

    def test_block_comment(self):
        assert kinds("select /* x */ 1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select /* oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "EOF"
