"""Tests for CRUD stored procedures and the negative-id lazy delete."""

import pytest

from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph


@pytest.fixture
def store():
    instance = SQLGraphStore()
    instance.load_graph(paper_figure_graph())
    return instance


class TestVertexCrud:
    def test_add_and_get(self, store):
        vid = store.add_vertex(properties={"name": "peter"})
        vertex = store.get_vertex(vid)
        assert vertex.get_property("name") == "peter"
        assert store.run("g.V('name','peter')") == [vid]

    def test_vertex_count_tracks_adds(self, store):
        before = store.vertex_count()
        store.add_vertex()
        assert store.vertex_count() == before + 1

    def test_update_merges_properties(self, store):
        store.set_vertex_property(1, "age", 30)
        vertex = store.get_vertex(1)
        assert vertex.get_property("age") == 30
        assert vertex.get_property("name") == "marko"

    def test_delete_hides_vertex(self, store):
        assert store.remove_vertex(2)
        assert store.get_vertex(2) is None
        assert store.run("g.V('name','vadas')") == []
        assert store.vertex_count() == 3

    def test_delete_uses_negative_id_tombstone(self, store):
        store.remove_vertex(2)
        raw = store.database.execute("SELECT vid FROM va WHERE vid < 0")
        assert raw.rows == [(-3,)]  # -vid - 1

    def test_delete_removes_incident_ea_rows(self, store):
        store.remove_vertex(2)
        remaining = store.database.execute("SELECT eid FROM ea").rows
        # edges 7 (1->2) and 10 (4->2) disappear
        assert sorted(eid for (eid,) in remaining) == [8, 9, 11]

    def test_delete_missing_returns_false(self, store):
        assert not store.remove_vertex(99)

    def test_deleted_vertex_not_a_start_point(self, store):
        store.remove_vertex(1)
        assert store.run("g.V.count()") == [3]


class TestEdgeCrud:
    def test_add_edge_single_slot(self, store):
        eid = store.add_edge(2, 3, "likes", properties={"weight": 0.7})
        edge = store.get_edge(eid)
        assert edge.label == "likes"
        assert edge.get_property("weight") == 0.7
        assert sorted(store.run("g.v(2).out")) == [3]

    def test_add_edge_migrates_to_multivalue(self, store):
        """Vertex 4 has one likes edge inline; adding a second must move
        both into OSA behind a lid marker."""
        store.add_edge(4, 3, "likes", properties={})
        assert sorted(store.run("g.v(4).out('likes')")) == [2, 3]
        column = store.loader.out_coloring.column_for("likes")
        marker = store.database.execute(
            f"SELECT val{column} FROM opa WHERE vid = 4 AND lbl{column} = 'likes'"
        ).scalar()
        assert str(marker).startswith("lid:")

    def test_add_edge_appends_to_existing_multivalue(self, store):
        store.add_edge(1, 3, "knows")
        assert sorted(store.run("g.v(1).out('knows')")) == [2, 3, 4]

    def test_add_edge_conflicting_label_spills(self, store):
        """An unseen label hashing onto an occupied column makes a spill row."""
        for i, label in enumerate(
            ["alpha", "beta", "gamma", "delta", "epsilon"]
        ):
            store.add_edge(1, 2, label)
        rows = store.database.execute(
            "SELECT COUNT(*) FROM opa WHERE vid = 1"
        ).scalar()
        assert rows >= 2
        spill = store.database.execute(
            "SELECT MAX(spill) FROM opa WHERE vid = 1"
        ).scalar()
        assert spill == 1
        # traversals still see everything
        assert sorted(store.run("g.v(1).out('alpha','beta','gamma')")) == [
            2, 2, 2,
        ]

    def test_update_edge(self, store):
        store.set_edge_property(9, "weight", 0.99)
        assert store.get_edge(9).get_property("weight") == 0.99

    def test_delete_inline_edge(self, store):
        assert store.remove_edge(10)  # 4-likes->2, stored inline
        assert store.get_edge(10) is None
        assert store.run("g.v(4).out('likes')") == []

    def test_delete_multivalue_edge(self, store):
        assert store.remove_edge(7)  # one of the two knows edges of 1
        assert store.run("g.v(1).out('knows')") == [4]
        assert store.get_edge(7) is None

    def test_delete_missing_edge(self, store):
        assert not store.remove_edge(999)

    def test_edge_count(self, store):
        before = store.edge_count()
        store.add_edge(2, 3, "likes")
        store.remove_edge(9)
        assert store.edge_count() == before

    def test_new_edge_visible_in_both_directions(self, store):
        store.add_edge(3, 1, "references")
        assert store.run("g.v(3).out('references')") == [1]
        assert store.run("g.v(1).in('references')") == [3]
