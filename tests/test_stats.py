"""Statistics lifecycle: ANALYZE, estimates, drift, invalidation,
durability.

Covers the optimizer-statistics subsystem end to end:

* ``ColumnStats`` distribution math (MCVs, equi-depth histograms, NDV
  scaling) in isolation;
* ``ANALYZE`` changing planner estimates (EXPLAIN ``est_rows``) on a
  skewed table;
* incremental maintenance: selectivities are fractions applied to the
  *live* row count, so estimates track post-ANALYZE inserts/deletes
  within drift bounds;
* schema-epoch invalidation (any DDL drops back to the heuristic
  constants until the next ANALYZE);
* survival across checkpoint and crash recovery (via ``crashkit``);
* the ``planner_options`` validating accessor and the ``REPRO_COSTED``
  knob.
"""

import re

import pytest

from tests import crashkit
from repro.cli import execute_line
from repro.core import SQLGraphStore
from repro.datasets.tinker import tinkerpop_classic
from repro.relational import Database
from repro.relational import stats as stats_mod
from repro.relational.errors import BindError, SqlSyntaxError
from repro.relational.sql.parser import parse_statement
from repro.relational.stats import (
    ColumnStats,
    META_STATS_KEY,
    StatisticsRegistry,
    TableStats,
    heuristic_mode,
    set_costed,
)


@pytest.fixture(autouse=True)
def _costed_planner():
    """Pin the costed planner on: these tests assert statistics-driven
    estimates and must pass under a ``REPRO_COSTED=0`` environment too
    (the knob tests below flip it themselves, relative to this)."""
    previous = set_costed(True)
    yield
    set_costed(previous)


def first_est(database, sql):
    """est_rows of the first plan line of ``EXPLAIN sql``."""
    text = database.execute("EXPLAIN " + sql).rows[0][0]
    return int(re.search(r"est_rows=(\d+)", text).group(1))


def scan_est(database, sql, pattern):
    """est_rows of the first EXPLAIN line matching *pattern*."""
    for (line,) in database.execute("EXPLAIN " + sql).rows:
        if pattern in line:
            return int(re.search(r"est_rows=(\d+)", line).group(1))
    raise AssertionError(f"no plan line matching {pattern!r}")


@pytest.fixture
def skewed_db():
    """1000 rows: lbl is 'common' x950 / 'rare' x50, v uniform 0..999."""
    database = Database()
    database.execute(
        "CREATE TABLE ev (id INTEGER PRIMARY KEY, lbl STRING, v INTEGER)"
    )
    database.execute("CREATE INDEX ev_lbl ON ev (lbl)")
    database.execute("CREATE INDEX ev_v ON ev (v) USING sorted")
    table = database.table("ev")
    for i in range(1000):
        lbl = "rare" if i % 20 == 0 else "common"
        table.insert((i, lbl, i))
    return database


# ----------------------------------------------------------------------
# ColumnStats distribution math
# ----------------------------------------------------------------------
def test_mcv_equality_selectivity_reflects_skew():
    values = ["a"] * 90 + ["b"] * 9 + ["c"]
    column = ColumnStats.build(values, len(values))
    assert column.eq_selectivity("a") == pytest.approx(0.9)
    assert column.eq_selectivity("b") == pytest.approx(0.09)
    # 'c' appears once in a fully-observed sample: small residual share
    assert column.eq_selectivity("c") <= 0.09
    # never-seen values get the non-MCV residual, not a uniform 1/ndv
    assert column.eq_selectivity("zzz") < 0.05


def test_histogram_range_selectivity():
    column = ColumnStats.build(list(range(1000)), 1000)
    assert column.range_selectivity(None, 100) == pytest.approx(0.1, abs=0.05)
    assert column.range_selectivity(500, None) == pytest.approx(0.5, abs=0.05)
    assert column.range_selectivity(200, 400) == pytest.approx(0.2, abs=0.05)
    assert column.range_selectivity(None, None) == pytest.approx(1.0)


def test_null_fraction_and_not_null():
    column = ColumnStats.build([1, None, 3, None], 4)
    assert column.null_frac == pytest.approx(0.5)
    assert column.not_null_selectivity() == pytest.approx(0.5)
    assert column.eq_selectivity(None) == 0.0


def test_ndv_scales_up_for_partial_samples():
    # every sampled value distinct -> the full table is probably all
    # distinct too: NDV scales to the row count, not the sample size
    column = ColumnStats.build(list(range(100)), 10_000)
    assert column.ndv == 10_000
    # a small repeating value set stays small even under sampling
    column = ColumnStats.build([1, 2, 3] * 40, 10_000)
    assert column.ndv == 3


def test_like_prefix_selectivity_uses_histogram():
    values = [f"user{i:04d}" for i in range(500)] + ["admin"] * 500
    column = ColumnStats.build(values, 1000)
    assert column.like_prefix_selectivity("admin") == pytest.approx(
        0.5, abs=0.1
    )
    assert column.like_prefix_selectivity("user") == pytest.approx(
        0.5, abs=0.1
    )
    assert column.like_prefix_selectivity("zzz") == pytest.approx(0.0, abs=0.05)


def test_column_stats_roundtrip():
    column = ColumnStats.build(["x"] * 5 + ["y"] * 3 + [None] * 2, 10)
    clone = ColumnStats.from_dict(column.to_dict())
    assert clone.ndv == column.ndv
    assert clone.null_frac == column.null_frac
    assert clone.eq_selectivity("x") == column.eq_selectivity("x")


# ----------------------------------------------------------------------
# ANALYZE changes planner estimates
# ----------------------------------------------------------------------
def test_analyze_improves_equality_estimate(skewed_db):
    rare = "SELECT * FROM ev WHERE lbl = 'rare'"
    common = "SELECT * FROM ev WHERE lbl = 'common'"
    # pre-ANALYZE: index NDV (2 distinct labels) -> both estimated 500
    assert first_est(skewed_db, rare) == 500
    assert first_est(skewed_db, common) == 500
    result = skewed_db.execute("ANALYZE ev")
    assert result.rows == [("ev", 1000, 1000)]
    # post-ANALYZE: MCV frequencies separate the labels
    assert first_est(skewed_db, rare) == 50
    assert first_est(skewed_db, common) == 950


def test_analyze_improves_range_estimate(skewed_db):
    sql = "SELECT * FROM ev WHERE v < 100"
    # pre-ANALYZE: the 0.3 constant
    assert first_est(skewed_db, sql) == 300
    skewed_db.execute("ANALYZE")
    est = first_est(skewed_db, sql)
    assert 50 <= est <= 150  # histogram: ~10%


def test_analyze_bare_covers_all_tables(skewed_db):
    skewed_db.execute(
        "CREATE TABLE other (a INTEGER PRIMARY KEY, b STRING)"
    )
    result = skewed_db.execute("ANALYZE")
    assert [row[0] for row in result.rows] == ["ev", "other"]
    assert skewed_db.statistics.analyzed_tables() == ["ev", "other"]


def test_analyze_unknown_table_raises(skewed_db):
    with pytest.raises(BindError):
        skewed_db.execute("ANALYZE nope")


def test_analyze_statement_parses():
    statement = parse_statement("ANALYZE ev")
    assert statement.table == "ev"
    assert parse_statement("ANALYZE").table is None
    assert parse_statement("ANALYZE;").table is None
    with pytest.raises(SqlSyntaxError):
        parse_statement("ANALYZE ev extra")


# ----------------------------------------------------------------------
# incremental maintenance + drift bounds
# ----------------------------------------------------------------------
def test_estimates_track_live_rows_after_analyze(skewed_db):
    skewed_db.execute("ANALYZE ev")
    table = skewed_db.table("ev")
    entry = skewed_db.statistics.get("ev")
    assert entry.mutation_drift(table) == 0.0
    # double the table with the same 5% skew: selectivities are
    # fractions of live_rows, so estimates follow without re-ANALYZE
    for i in range(1000, 2000):
        table.insert((i, "rare" if i % 20 == 0 else "common", i))
    est = first_est(skewed_db, "SELECT * FROM ev WHERE lbl = 'rare'")
    actual = len(skewed_db.execute(
        "SELECT * FROM ev WHERE lbl = 'rare'"
    ).rows)
    assert actual == 100
    assert est == pytest.approx(actual, rel=0.2)
    # the watermarks expose how stale the histograms are
    assert entry.mutation_drift(table) == pytest.approx(1.0)


def test_mutation_watermarks_count_deletes(skewed_db):
    skewed_db.execute("ANALYZE ev")
    entry = skewed_db.statistics.get("ev")
    table = skewed_db.table("ev")
    skewed_db.execute("DELETE FROM ev WHERE id < 100")
    assert table.delete_count == 100
    assert entry.mutation_drift(table) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# schema-epoch invalidation
# ----------------------------------------------------------------------
def test_ddl_invalidates_statistics(skewed_db):
    skewed_db.execute("ANALYZE ev")
    assert first_est(skewed_db, "SELECT * FROM ev WHERE lbl = 'rare'") == 50
    skewed_db.execute("CREATE TABLE t2 (x INTEGER PRIMARY KEY)")
    # stats survive in the registry but fail the epoch check -> planner
    # falls back to heuristics until the next ANALYZE
    assert skewed_db.statistics.get(
        "ev", skewed_db.schema_epoch
    ) is None
    assert first_est(skewed_db, "SELECT * FROM ev WHERE lbl = 'rare'") == 500
    skewed_db.execute("ANALYZE ev")
    assert first_est(skewed_db, "SELECT * FROM ev WHERE lbl = 'rare'") == 50


def test_drop_table_forgets_statistics(skewed_db):
    skewed_db.execute("ANALYZE ev")
    skewed_db.execute("DROP TABLE ev")
    assert skewed_db.statistics.get("ev") is None


# ----------------------------------------------------------------------
# durability: checkpoint + crash recovery
# ----------------------------------------------------------------------
def _durable_with_stats(path):
    database = Database(path=str(path))
    crashkit.run_workload(
        database, crashkit.generate_workload(seed=11, size=40)
    )
    database.execute("ANALYZE")
    return database


def test_stats_survive_clean_checkpoint(tmp_path):
    first = _durable_with_stats(tmp_path / "db")
    before = first.statistics.get("kv")
    assert before is not None
    first.close()
    reopened = Database(path=str(tmp_path / "db"))
    try:
        after = reopened.statistics.get("kv", reopened.schema_epoch)
        assert after is not None
        assert after.row_count == before.row_count
        assert sorted(after.columns) == sorted(before.columns)
    finally:
        reopened.close()


def test_stats_survive_crash_recovery(tmp_path):
    source = tmp_path / "db"
    database = _durable_with_stats(source)
    database.wal.flush()
    # crash without close/checkpoint: stats must replay from the WAL
    # meta record alone
    crashed = crashkit.crash_copy(str(source), str(tmp_path / "crashed"))
    database.close()
    recovered = Database(path=str(tmp_path / "crashed"))
    try:
        entry = recovered.statistics.get("kv", recovered.schema_epoch)
        assert entry is not None
        assert entry.row_count == recovered.table("kv").live_rows
        # estimates engage immediately after recovery
        est = first_est(recovered, "SELECT * FROM kv WHERE n = 3")
        column = entry.column("col(n)")
        expected = max(1, int(
            entry.row_count * column.eq_selectivity(3)
        ))
        assert est == expected
    finally:
        recovered.close()


def test_stats_dropped_when_cut_before_meta_record(tmp_path):
    source = tmp_path / "db"
    database = Database(path=str(source))
    units = crashkit.generate_workload(seed=3, size=30)
    crashkit.run_workload(database, units)
    cut = units[-1].end_offset  # before ANALYZE's meta record
    database.execute("ANALYZE")
    database.wal.flush()
    crashed = crashkit.crash_copy(
        str(source), str(tmp_path / "crashed"), cut_offset=cut
    )
    database.close()
    recovered = Database(path=str(crashed))
    try:
        assert recovered.statistics.get("kv") is None
    finally:
        recovered.close()


def test_load_meta_drops_stale_tables_and_columns():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b STRING)")
    database.execute("ANALYZE t")
    payload = database.statistics.to_meta()
    payload["ghost"] = dict(payload["t"], table_name="ghost")
    payload["t"]["columns"]["col(gone)"] = (
        payload["t"]["columns"]["col(a)"]
    )
    registry = StatisticsRegistry()
    loaded = registry.load_meta(database, payload)
    assert loaded == ["t"]
    entry = registry.get("t", database.schema_epoch)
    assert entry is not None
    assert "col(gone)" not in entry.columns


# ----------------------------------------------------------------------
# planner_options accessor + validation
# ----------------------------------------------------------------------
def test_planner_options_default_empty():
    assert Database().planner_options == {}


def test_planner_option_accessor():
    database = Database(planner_options={"index_probe_cost": 50})
    assert database.planner_option("index_probe_cost", 1.0) == 50.0
    assert Database().planner_option("index_probe_cost", 1.0) == 1.0


def test_planner_options_reject_unknown_key():
    with pytest.raises(ValueError, match="unknown planner option"):
        Database(planner_options={"index_prob_cost": 1.0})
    with pytest.raises(ValueError, match="unknown planner option"):
        Database().planner_option("index_prob_cost")


@pytest.mark.parametrize("bad", ["10", True, None, -1.0, 0])
def test_planner_options_reject_bad_values(bad):
    with pytest.raises(ValueError):
        Database(planner_options={"index_probe_cost": bad})


# ----------------------------------------------------------------------
# REPRO_COSTED knob
# ----------------------------------------------------------------------
def test_costed_knob_disables_statistics(skewed_db):
    skewed_db.execute("ANALYZE ev")
    sql = "SELECT * FROM ev WHERE lbl = 'rare'"
    assert first_est(skewed_db, sql) == 50
    old = set_costed(False)
    try:
        assert first_est(skewed_db, sql) == 500
    finally:
        set_costed(old)
    assert first_est(skewed_db, sql) == 50


def test_heuristic_mode_context_manager(skewed_db):
    skewed_db.execute("ANALYZE ev")
    sql = "SELECT * FROM ev WHERE lbl = 'rare'"
    with heuristic_mode():
        assert not stats_mod.costed_enabled()
        assert first_est(skewed_db, sql) == 500
    assert stats_mod.costed_enabled()


# ----------------------------------------------------------------------
# est-vs-actual feedback: EXPLAIN ANALYZE q_err
# ----------------------------------------------------------------------
def test_explain_analyze_reports_q_error(skewed_db):
    skewed_db.execute("ANALYZE ev")
    text = "\n".join(
        row[0] for row in skewed_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM ev WHERE lbl = 'rare'"
        ).rows
    )
    first = text.splitlines()[0]
    assert "est_rows=50" in first
    assert "actual_rows=50" in first
    assert "q_err=1.00" in first
    assert re.search(r"Estimates: median q_err \d+\.\d\d over \d+", text)
    stats = skewed_db.last_statement_stats
    assert stats.median_q_error() == pytest.approx(1.0)
    assert stats.as_dict()["median_q_error"] == pytest.approx(1.0)


def test_q_error_definition():
    from repro.obs.stats import q_error

    assert q_error(10, 10) == 1.0
    assert q_error(100, 10) == 10.0
    assert q_error(10, 100) == 10.0
    assert q_error(0, 0) == 1.0  # floored at 1 on both sides


# ----------------------------------------------------------------------
# expression-index statistics (JSON_VAL attribute predicates)
# ----------------------------------------------------------------------
def test_attribute_index_fingerprints_get_statistics():
    store = SQLGraphStore()
    store.load_graph(tinkerpop_classic())
    store.create_attribute_index("vertex", "lang")
    store.database.execute("ANALYZE va")
    entry = store.database.statistics.get("va")
    fingerprints = set(entry.columns)
    assert any("lang" in fp for fp in fingerprints), fingerprints
    # the composite-free plain columns are covered too
    assert "col(vid)" in fingerprints


def test_store_analyze_tables_and_snapshot():
    store = SQLGraphStore()
    store.load_graph(tinkerpop_classic())
    analyzed = store.analyze_tables()
    assert {name for name, __, __s in analyzed} >= {"va", "ea"}
    snapshot = store.table_stats()["statistics"]
    assert snapshot["va"]["row_count"] == 6
    # CLI surfaces
    out = execute_line(store, ":analyze-tables va")
    assert "va" in out and "sampled" in out
    out = execute_line(store, ":stats")
    assert "optimizer statistics" in out


# ----------------------------------------------------------------------
# table-level collection internals
# ----------------------------------------------------------------------
def test_table_stats_collect_samples_and_watermarks(skewed_db):
    table = skewed_db.table("ev")
    entry = TableStats.collect(table, schema_epoch=7)
    assert entry.row_count == 1000
    assert entry.sample_size == 1000
    assert entry.schema_epoch == 7
    assert entry.insert_watermark == table.insert_count
    assert entry.page_count == table.page_count
    roundtrip = TableStats.from_dict(entry.to_dict())
    assert roundtrip.columns["col(lbl)"].eq_selectivity(
        "rare"
    ) == entry.columns["col(lbl)"].eq_selectivity("rare")


def test_registry_snapshot_and_meta_key(skewed_db):
    skewed_db.execute("ANALYZE ev")
    snapshot = skewed_db.statistics.snapshot()
    assert snapshot["ev"]["row_count"] == 1000
    # ANALYZE publishes the serialized registry under the meta key (the
    # WAL persists it when the database is durable)
    assert "ev" in skewed_db.get_meta(META_STATS_KEY)
