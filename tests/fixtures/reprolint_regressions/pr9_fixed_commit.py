"""Regression fixture: the post-fix twin of ``pr9_missing_commit.py``.

Identical procedures, but every path that may have logged a WAL record
reaches an unconditional commit point before returning — the shape the
live :class:`repro.core.procedures.GraphProcedures` has after PR 10.
``wal-commit-reachability`` must report nothing here; a false positive
on this file fails the CI analysis job just as loudly as a false
negative on the broken twin.
"""


class FixedProcedures:
    def __init__(self, database):
        self.database = database

    def _commit(self):
        wal = self.database.wal
        if wal is None or wal.closed:
            return
        wal.commit_point()

    def add_vertex(self, vertex_id, properties):
        table = self.database.table("VA")
        table.insert((vertex_id, dict(properties or {})), coerce=False)
        self._commit()
        return vertex_id

    def update_vertex(self, vertex_id, properties):
        table = self.database.table("VA")
        updated = False
        for rid in table.scan():
            row = table.get(rid)
            if row is None:
                continue
            attrs = dict(row[1] or {})
            attrs.update(properties)
            table.update(rid, (vertex_id, attrs), coerce=False)
            updated = True
            break
        # unconditional: a commit point with nothing pending is a no-op
        self._commit()
        return updated
