"""Regression fixture: the PR-9 stored-procedure durability bug, frozen.

This is the shape ``GraphProcedures`` shipped with before the fix: CRUD
procedures that log WAL records through :class:`HeapTable` mutations but
reach the autocommit commit point only conditionally (or never).  A
``kill -9`` after the caller's acknowledgement could then lose the
acknowledged write — the exact bug the ``wal-commit-reachability`` rule
exists to catch.

``tests/test_reprolint_regressions.py`` (run in the CI analysis job)
asserts reprolint flags every procedure below; if the rule ever stops
firing here, the analysis job fails.  Do NOT "fix" this file.
"""


class BrokenProcedures:
    """The pre-fix GraphProcedures shape: durability holes included."""

    def __init__(self, database):
        self.database = database

    def _commit(self):
        wal = self.database.wal
        if wal is None or wal.closed:
            return
        wal.commit_point()

    def add_vertex(self, vertex_id, properties):
        # BUG: no commit point at all before the ack
        table = self.database.table("VA")
        table.insert((vertex_id, dict(properties or {})), coerce=False)
        return vertex_id

    def update_vertex(self, vertex_id, properties):
        # BUG: the not-found path skips the commit point, but an earlier
        # loop iteration may already have logged a record
        table = self.database.table("VA")
        updated = False
        for rid in table.scan():
            row = table.get(rid)
            if row is None:
                continue
            attrs = dict(row[1] or {})
            attrs.update(properties)
            table.update(rid, (vertex_id, attrs), coerce=False)
            updated = True
            break
        if updated:
            self._commit()
        return updated
