"""Tests for the bulk loader and the hybrid schema layout."""

import pytest

from repro.core.loader import SQLGraphLoader
from repro.core.schema import SQLGraphSchema
from repro.datasets.random_graphs import random_property_graph
from repro.datasets.tinker import paper_figure_graph
from repro.relational import Database


def load(graph, **kwargs):
    database = Database()
    loader = SQLGraphLoader(database, **kwargs)
    loader.load(graph)
    return database, loader


class TestSchemaDdl:
    def test_tables_created(self):
        database, loader = load(paper_figure_graph())
        names = set(database.catalog.table_names())
        assert {"opa", "osa", "ipa", "isa", "va", "ea"} <= names

    def test_prefix(self):
        database = Database()
        loader = SQLGraphLoader(database, prefix="g1_")
        loader.load(paper_figure_graph())
        assert "g1_opa" in database.catalog.table_names()

    def test_triad_positions(self):
        schema = SQLGraphSchema(3, 2)
        assert schema.triad_positions(0) == (2, 3, 4)
        assert schema.triad_positions(2) == (8, 9, 10)
        assert schema.adjacency_row_width("out") == 11
        assert schema.adjacency_row_width("in") == 8

    def test_unnest_sql_enumerates_triads(self):
        schema = SQLGraphSchema(2, 1)
        sql = schema.unnest_triples_sql("p", "out")
        assert "p.eid0, p.lbl0, p.val0" in sql
        assert "p.eid1, p.lbl1, p.val1" in sql


class TestVertexLoading:
    def test_va_rows(self):
        database, __ = load(paper_figure_graph())
        result = database.execute("SELECT COUNT(*) FROM va")
        assert result.scalar() == 4
        attrs = database.execute(
            "SELECT attr FROM va WHERE vid = 1"
        ).scalar()
        assert attrs == {"name": "marko", "age": 29}

    def test_ea_rows_carry_triple(self):
        database, __ = load(paper_figure_graph())
        row = database.execute(
            "SELECT outv, inv, lbl, attr FROM ea WHERE eid = 9"
        ).rows[0]
        assert row == (1, 3, "created", {"weight": 0.4})

    def test_single_value_stored_inline(self):
        database, loader = load(paper_figure_graph())
        # vertex 4 has exactly one likes edge: stored in OPA directly
        coloring = loader.out_coloring
        column = coloring.column_for("likes")
        result = database.execute(
            f"SELECT eid{column}, lbl{column}, val{column} FROM opa "
            "WHERE vid = 4 AND lbl" + str(column) + " = 'likes'"
        )
        assert result.rows == [(10, "likes", 2)]

    def test_multi_value_goes_to_secondary(self):
        database, loader = load(paper_figure_graph())
        # vertex 1 has two knows edges -> OSA rows via a lid marker
        column = loader.out_coloring.column_for("knows")
        marker = database.execute(
            f"SELECT val{column} FROM opa WHERE vid = 1"
        ).scalar()
        assert isinstance(marker, str) and marker.startswith("lid:")
        rows = database.execute(
            "SELECT eid, val FROM osa WHERE valid = ?", [marker]
        ).rows
        assert sorted(rows) == [(7, 2), (8, 4)]

    def test_incoming_adjacency_mirrors(self):
        database, loader = load(paper_figure_graph())
        column = loader.in_coloring.column_for("created")
        marker = database.execute(
            f"SELECT val{column} FROM ipa WHERE vid = 3"
        ).scalar()
        assert isinstance(marker, str) and marker.startswith("lid:")
        rows = database.execute(
            "SELECT val FROM isa WHERE valid = ?", [marker]
        ).rows
        assert sorted(rows) == [(1,), (4,)]

    def test_vertices_without_edges_have_no_adjacency_rows(self):
        graph = paper_figure_graph()
        graph.add_vertex(99, {"name": "loner"})
        database, __ = load(graph)
        assert database.execute(
            "SELECT COUNT(*) FROM opa WHERE vid = 99"
        ).scalar() == 0
        assert database.execute(
            "SELECT COUNT(*) FROM va WHERE vid = 99"
        ).scalar() == 1


class TestSpills:
    def test_capped_columns_cause_spills(self):
        graph = random_property_graph(seed=3, n_vertices=40, n_edges=160)
        database, loader = load(graph, max_columns=1)
        report = loader.report
        # one column for five labels: vertices with several labels spill
        assert report.out.spill_rows > 0
        spill_rows = database.execute(
            "SELECT COUNT(*) FROM opa WHERE spill = 1"
        ).scalar()
        assert spill_rows > 0

    def test_spill_rows_share_vid(self):
        graph = random_property_graph(seed=3, n_vertices=40, n_edges=160)
        database, __ = load(graph, max_columns=1)
        result = database.execute(
            "SELECT vid, COUNT(*) FROM opa GROUP BY vid "
            "HAVING COUNT(*) > 1"
        )
        assert len(result.rows) > 0


class TestLoadReport:
    def test_report_counts(self):
        __, loader = load(paper_figure_graph())
        report = loader.report
        assert report.vertex_count == 4
        assert report.edge_count == 5
        assert report.out.multi_value_rows == 2  # the two knows edges of 1
        assert report.incoming.multi_value_rows == 2  # the two created into 3
        assert report.out.spill_percentage == 0.0

    def test_bucket_size(self):
        __, loader = load(paper_figure_graph())
        stats = loader.report.out
        assert stats.bucket_size == pytest.approx(
            stats.hashed_labels / stats.columns
        )


class TestRoundTrip:
    def test_adjacency_reconstruction(self):
        """OPA/OSA must encode exactly the graph's out-adjacency."""
        graph = random_property_graph(seed=11, n_vertices=30, n_edges=90)
        database, loader = load(graph)
        schema = loader.schema
        reconstructed = {}
        for row in database.execute("SELECT * FROM opa").rows:
            vid = row[0]
            triads = (len(row) - 2) // 3
            for column in range(triads):
                eid_pos, lbl_pos, val_pos = schema.triad_positions(column)
                label = row[lbl_pos]
                if label is None:
                    continue
                value = row[val_pos]
                if isinstance(value, str) and value.startswith("lid:"):
                    for eid, val in database.execute(
                        "SELECT eid, val FROM osa WHERE valid = ?", [value]
                    ).rows:
                        reconstructed.setdefault(vid, set()).add((label, val, eid))
                else:
                    reconstructed.setdefault(vid, set()).add(
                        (label, value, row[eid_pos])
                    )
        expected = {}
        for edge in graph.edges():
            expected.setdefault(edge.out_vertex.id, set()).add(
                (edge.label, edge.in_vertex.id, edge.id)
            )
        assert reconstructed == expected
