"""Tests for the Gremlin → SQL translator: generated SQL shape + execution.

Execution correctness is checked against hand-computed results on the
paper's Figure 2a graph; broader coverage comes from the differential suite.
"""

import pytest

from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph
from repro.gremlin.errors import UnsupportedPipeError


@pytest.fixture(scope="module")
def store():
    instance = SQLGraphStore()
    instance.load_graph(paper_figure_graph())
    return instance


class TestGeneratedSql:
    def test_single_statement_with_ctes(self, store):
        sql = store.translate("g.V.out.out.count()")
        assert sql.startswith("WITH ")
        assert sql.count("SELECT") >= 4

    def test_graphquery_merge(self, store):
        """Filters after g.V fold into the start CTE (§4.5.1)."""
        sql = store.translate("g.V.has('age', T.gt, 28).has('name').count()")
        first_cte = sql.split("),")[0]
        assert "JSON_VAL(p.attr, 'age') > 28" in first_cte
        assert "JSON_VAL(p.attr, 'name') IS NOT NULL" in first_cte

    def test_vertexquery_merge(self, store):
        sql = store.translate("g.v(1).outE.has('weight', T.gt, 0.5).count()")
        # the weight filter lands inside the outE CTE, not a separate one
        assert "JSON_VAL(p.attr, 'weight') > 0.5" in sql
        assert sql.count("temp_") <= 8

    def test_single_step_uses_ea(self, store):
        sql = store.translate("g.v(1).out")
        assert " ea " in sql
        assert "opa" not in sql

    def test_multi_step_uses_hash_tables(self, store):
        sql = store.translate("g.v(1).out.out")
        assert "opa" in sql
        assert "LEFT OUTER JOIN osa" in sql
        assert "TABLE(VALUES" in sql

    def test_deleted_vertices_filtered(self, store):
        sql = store.translate("g.V.count()")
        assert "p.vid >= 0" in sql

    def test_path_tracking_column(self, store):
        sql = store.translate("g.v(1).out.path")
        assert "PATH_INIT" in sql
        assert "path" in sql.split("\n")[-1]

    def test_loop_unrolled(self, store):
        sql = store.translate("g.v(1).out.loop(1){it.loops < 3}.count()")
        # three applications of the out step -> three OPA joins
        assert sql.count("opa") == 3

    def test_unbounded_loop_rejected(self, store):
        with pytest.raises(UnsupportedPipeError):
            store.translate("g.v(1).out.loop(1){it.loops < it.age}")

    def test_closure_to_like(self, store):
        sql = store.translate("g.V.filter{it.name.startsWith('ma')}.count()")
        assert "LIKE 'ma%'" in sql

    def test_escaped_literal(self, store):
        sql = store.translate("g.V.has('name', \"o'brien\").count()")
        assert "'o''brien'" in sql


class TestExecution:
    def test_start_by_key(self, store):
        assert store.run("g.V('name','marko')") == [1]

    def test_out_in_both(self, store):
        assert sorted(store.run("g.v(1).out")) == [2, 3, 4]
        assert sorted(store.run("g.v(2).in")) == [1, 4]
        assert sorted(store.run("g.v(4).both")) == [1, 2, 3]

    def test_label_filtered(self, store):
        assert sorted(store.run("g.v(1).out('knows')")) == [2, 4]

    def test_edges(self, store):
        assert sorted(store.run("g.v(1).outE")) == [7, 8, 9]
        assert sorted(store.run("g.v(1).outE('knows').inV")) == [2, 4]
        assert store.run("g.e(9).outV") == [1]
        assert sorted(store.run("g.e(9).bothV")) == [1, 3]

    def test_property_getter(self, store):
        assert sorted(store.run("g.v(1).out.name")) == ["josh", "lop", "vadas"]

    def test_label_getter(self, store):
        assert sorted(store.run("g.v(4).outE.label")) == ["created", "likes"]

    def test_has_on_edges(self, store):
        assert store.run("g.E.has('weight', T.gte, 1.0)") == [8]

    def test_interval(self, store):
        assert sorted(store.run("g.V.interval('age', 27, 30)")) == [1, 2]

    def test_dedup_count(self, store):
        assert store.run("g.V.out.dedup().count()") == [3]

    def test_range(self, store):
        assert len(store.run("g.V.range(1, 2)")) == 2

    def test_path_values(self, store):
        paths = store.run("g.v(1).out('created').path")
        assert paths == [(1, 3)]

    def test_simple_path(self, store):
        result = store.run("g.v(1).out.in.simplePath")
        assert sorted(result) == [4, 4]  # via 2 and via 3

    def test_back_via_as(self, store):
        result = store.run(
            "g.V.as('x').out('likes').back('x').name"
        )
        assert result == ["josh"]

    def test_aggregate_except(self, store):
        result = store.run("g.v(1).out.aggregate(x).out.except(x).name")
        assert result == []

    def test_retain_literal(self, store):
        assert sorted(store.run("g.V.retain([1, 3])")) == [1, 3]

    def test_and_or(self, store):
        assert store.run(
            "g.V.and(_().out('knows'), _().out('created'))"
        ) == [1]
        assert sorted(store.run(
            "g.V.or(_().has('lang'), _().has('age', T.gt, 30))"
        )) == [3, 4]

    def test_if_then_else(self, store):
        result = store.run("g.V.ifThenElse{it.age != null}{it.age}{0}")
        assert sorted(result) == [0, 27, 29, 32]

    def test_copy_split(self, store):
        result = store.run(
            "g.v(1).copySplit(_().out('knows'), _().out('created'))"
            ".exhaustMerge().name"
        )
        assert sorted(result) == ["josh", "lop", "vadas"]

    def test_loop_execution(self, store):
        assert sorted(store.run("g.v(1).out.loop(1){it.loops < 2}.name")) == [
            "lop", "vadas",
        ]

    def test_order(self, store):
        assert store.run("g.V.age.order()") == [27, 29, 32]

    def test_count_empty(self, store):
        assert store.run("g.V.has('name','nobody').count()") == [0]

    def test_hasnot(self, store):
        assert store.run("g.V.hasNot('age')") == [3]

    def test_multivalue_traversal_resolves_lids(self, store):
        """Vertex 1's knows edges live in OSA; two-hop must resolve them."""
        assert sorted(store.run("g.v(1).out.out.name")) == ["lop", "vadas"]


class TestNullFriendlyInequality:
    """Gremlin != is satisfied by a missing attribute (null != x is true),
    unlike SQL's null-filtering <> — the translator compensates."""

    def test_has_neq_includes_missing_attribute(self, store):
        # lop has no age: it must pass has('age', T.neq, 29)
        result = sorted(store.run("g.V.has('age', T.neq, 29)"))
        assert result == [2, 3, 4]

    def test_closure_neq_includes_missing_attribute(self, store):
        result = sorted(store.run("g.V.filter{it.age != 29}"))
        assert result == [2, 3, 4]

    def test_neq_null_literal_is_existence(self, store):
        result = sorted(store.run("g.V.filter{it.age != null}"))
        assert result == [1, 2, 4]

    def test_eq_still_excludes_missing(self, store):
        assert store.run("g.V.has('age', 29)") == [1]
