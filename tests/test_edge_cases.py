"""Cross-cutting edge cases: index maintenance through procedures, buffer
pool vs transactions, deep structures, unusual values."""

import threading

import pytest

from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph
from repro.relational import Database
from repro.relational.pages import PAGE_CAPACITY


class TestAttributeIndexMaintenance:
    def test_store_update_refreshes_expression_index(self):
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        store.create_attribute_index("vertex", "name")
        assert store.run("g.V('name','marko')") == [1]
        store.set_vertex_property(1, "name", "mark")
        assert store.run("g.V('name','marko')") == []
        assert store.run("g.V('name','mark')") == [1]

    def test_new_vertex_lands_in_index(self):
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        store.create_attribute_index("vertex", "name")
        vid = store.add_vertex(properties={"name": "zed"})
        assert store.run("g.V('name','zed')") == [vid]

    def test_deleted_vertex_leaves_index(self):
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        store.create_attribute_index("vertex", "name")
        store.remove_vertex(2)
        assert store.run("g.V('name','vadas')") == []


class TestBufferPoolTransactions:
    def test_rollback_across_evictions(self):
        database = Database(buffer_pool_pages=1)
        database.execute("CREATE TABLE t (x INTEGER)")
        table = database.table("t")
        for i in range(PAGE_CAPACITY * 3):
            table.insert((i,))
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("UPDATE t SET x = -1 WHERE x < 10")
                # force eviction churn between the update and the rollback
                database.execute("SELECT COUNT(*) FROM t")
                raise RuntimeError("boom")
        assert database.execute(
            "SELECT COUNT(*) FROM t WHERE x = -1"
        ).scalar() == 0
        assert database.execute(
            "SELECT COUNT(*) FROM t WHERE x < 10 AND x >= 0"
        ).scalar() == 10

    def test_tiny_pool_store_still_correct(self):
        store = SQLGraphStore(buffer_pool_pages=1)
        store.load_graph(paper_figure_graph())
        assert store.run("g.V.count()") == [4]
        assert sorted(store.run("g.v(1).out.out.name")) == ["lop", "vadas"]


class TestUnusualValues:
    def test_unicode_attributes(self):
        store = SQLGraphStore()
        graph = paper_figure_graph()
        graph.set_vertex_property(1, "name", "märkö ✓")
        store.load_graph(graph)
        assert store.run("g.V.has('name', 'märkö ✓')") == [1]

    def test_quotes_in_values(self):
        store = SQLGraphStore()
        graph = paper_figure_graph()
        graph.set_vertex_property(2, "name", "o'brien")
        store.load_graph(graph)
        assert store.run("g.V.has('name', \"o'brien\")") == [2]

    def test_numeric_edge_weights_mixed_types(self):
        store = SQLGraphStore()
        graph = paper_figure_graph()
        graph.set_edge_property(7, "weight", 1)  # int among floats
        store.load_graph(graph)
        assert sorted(store.run("g.E.has('weight', T.gte, 1)")) == [7, 8]

    def test_deep_loop_unroll(self):
        store = SQLGraphStore()
        graph = paper_figure_graph()
        # build a 15-deep chain off vertex 3
        previous = 3
        for i in range(15):
            vid = 50 + i
            graph.add_vertex(vid, {"name": f"c{i}"})
            graph.add_edge(previous, vid, "next", 100 + i)
            previous = vid
        store.load_graph(graph)
        result = store.run("g.v(3).out('next').loop(1){it.loops < 15}.name")
        assert result == ["c14"]

    def test_large_in_list(self):
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        ids = list(range(1, 200))
        rendered = ", ".join(map(str, ids))
        assert sorted(store.run(f"g.V.retain([{rendered}])")) == [1, 2, 3, 4]


class TestConcurrentBaselineAccess:
    def test_native_readers_during_writer(self):
        from repro.baselines import NativeGraphStore

        store = NativeGraphStore()
        store.load_graph(paper_figure_graph())
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    store.run("g.V.count()")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        def writer():
            for i in range(50):
                store.add_vertex(1000 + i, {"name": f"w{i}"})
            stop.set()

        threads = [threading.Thread(target=reader) for __ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert store.vertex_count() == 54
