"""Tests for the co-occurrence coloring hash."""

from hypothesis import given, strategies as st

from repro.core.coloring import (
    ColoringHash,
    adjacency_label_sets,
    attribute_key_sets,
)
from repro.datasets.tinker import paper_figure_graph


class TestColoring:
    def test_cooccurring_labels_get_distinct_columns(self):
        coloring = ColoringHash().fit([["a", "b"], ["b", "c"], ["a", "c"]])
        assert coloring.column_for("a") != coloring.column_for("b")
        assert coloring.column_for("b") != coloring.column_for("c")
        assert coloring.column_for("a") != coloring.column_for("c")

    def test_disjoint_labels_share_columns(self):
        coloring = ColoringHash().fit([["a"], ["b"], ["c"]])
        assert coloring.num_columns == 1

    def test_paper_example(self):
        """knows/likes may share a column; created must differ from both."""
        graph = paper_figure_graph()
        coloring = ColoringHash().fit(adjacency_label_sets(graph, "out"))
        assert coloring.column_for("knows") != coloring.column_for("created")
        assert coloring.column_for("likes") != coloring.column_for("created")

    def test_unknown_label_falls_back_deterministically(self):
        coloring = ColoringHash().fit([["a", "b"]])
        first = coloring.column_for("mystery")
        assert first == coloring.column_for("mystery")
        assert 0 <= first < coloring.num_columns
        assert not coloring.known("mystery")

    def test_max_columns_cap(self):
        coloring = ColoringHash(max_columns=2).fit(
            [["a", "b", "c", "d"]]
        )
        assert coloring.num_columns <= 2
        assert coloring.conflict_labels  # the cap forced conflicts

    def test_empty_fit(self):
        coloring = ColoringHash().fit([])
        assert coloring.num_columns == 1
        assert len(coloring) == 0

    @given(
        st.lists(
            st.lists(
                st.sampled_from(["a", "b", "c", "d", "e", "f"]),
                min_size=1, max_size=4,
            ),
            min_size=1, max_size=20,
        )
    )
    def test_coloring_invariant(self, label_sets):
        """Without a cap, co-occurring labels never share a column."""
        coloring = ColoringHash().fit(label_sets)
        for labels in label_sets:
            distinct = list(dict.fromkeys(labels))
            columns = [coloring.column_for(label) for label in distinct]
            assert len(set(columns)) == len(distinct)


class TestLabelSetExtraction:
    def test_adjacency_label_sets(self):
        graph = paper_figure_graph()
        out_sets = [sorted(s) for s in adjacency_label_sets(graph, "out")]
        assert ["created", "knows"] in out_sets
        assert ["created", "likes"] in out_sets

    def test_in_direction(self):
        graph = paper_figure_graph()
        in_sets = [sorted(s) for s in adjacency_label_sets(graph, "in")]
        assert ["knows", "likes"] in in_sets

    def test_sample_limit(self):
        graph = paper_figure_graph()
        limited = list(adjacency_label_sets(graph, "out", sample_limit=1))
        assert len(limited) <= 1

    def test_attribute_key_sets(self):
        graph = paper_figure_graph()
        key_sets = [sorted(s) for s in attribute_key_sets(graph)]
        assert ["age", "name"] in key_sets
        assert ["lang", "name"] in key_sets

    def test_attribute_key_sets_edges(self):
        graph = paper_figure_graph()
        key_sets = list(attribute_key_sets(graph, element="edge"))
        assert all(s == ["weight"] for s in key_sets)
