"""Shared fixtures."""

import pytest

from repro.datasets.tinker import paper_figure_graph, tinkerpop_classic
from repro.relational import Database


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def people_db():
    """A small two-table database used across SQL tests."""
    database = Database()
    database.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name STRING, "
        "age INTEGER, city STRING)"
    )
    database.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, pid INTEGER, "
        "amount DOUBLE, item STRING)"
    )
    rows = [
        (1, "alice", 34, "paris"),
        (2, "bob", 28, "london"),
        (3, "carol", 41, "paris"),
        (4, "dan", 23, None),
        (5, "eve", 28, "berlin"),
    ]
    for row in rows:
        database.execute("INSERT INTO people VALUES (?, ?, ?, ?)", list(row))
    orders = [
        (10, 1, 25.0, "book"),
        (11, 1, 14.0, "pen"),
        (12, 2, 120.0, "chair"),
        (13, 3, 9.5, "book"),
        (14, 5, 30.0, "lamp"),
        (15, 5, 5.0, "pen"),
    ]
    for row in orders:
        database.execute("INSERT INTO orders VALUES (?, ?, ?, ?)", list(row))
    return database


@pytest.fixture
def figure_graph():
    return paper_figure_graph()


@pytest.fixture
def classic_graph():
    return tinkerpop_classic()
