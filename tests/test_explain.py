"""Tests for EXPLAIN and planner regime options."""

import pytest

from repro.relational import Database
from repro.relational.errors import BindError


def make_db(planner_options=None):
    database = Database(planner_options=planner_options)
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.execute("CREATE TABLE u (id INTEGER, t_id INTEGER)")
    database.execute("CREATE INDEX u_tid ON u (t_id)")
    for i in range(300):
        database.execute("INSERT INTO t VALUES (?, ?)", [i, i % 5])
        database.execute("INSERT INTO u VALUES (?, ?)", [i, (i * 7) % 300])
    return database


class TestExplain:
    def test_explain_returns_plan_rows(self):
        database = make_db()
        result = database.execute("EXPLAIN SELECT v FROM t WHERE id = 5")
        assert result.columns == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "IndexEqScan(t" in text
        assert "ProjectOp" in text

    def test_explain_shows_join_strategy(self):
        database = make_db()
        text = "\n".join(
            row[0]
            for row in database.execute(
                "EXPLAIN SELECT t.v FROM t, u WHERE t.id = u.t_id"
            ).rows
        )
        assert "IndexNLJoin" in text or "HashJoin" in text

    def test_explain_shows_estimates(self):
        database = make_db()
        text = "\n".join(
            row[0]
            for row in database.execute("EXPLAIN SELECT * FROM t").rows
        )
        assert "est_rows=300" in text

    def test_explain_does_not_execute(self):
        database = make_db()
        database.execute("EXPLAIN SELECT COUNT(*) FROM t")
        # table contents untouched
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 300

    def test_explain_dml_rejected(self):
        database = make_db()
        with pytest.raises(BindError):
            database.execute("EXPLAIN DELETE FROM t")

    def test_explain_with_cte(self):
        database = make_db()
        result = database.execute(
            "EXPLAIN WITH x AS (SELECT id FROM t) SELECT COUNT(*) FROM x"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "MaterializedScan" in text


class TestPlannerOptions:
    def test_high_probe_cost_prefers_hash_join(self):
        cheap_probe = make_db()
        costly_probe = make_db(planner_options={"index_probe_cost": 1000.0})
        sql = "SELECT COUNT(*) FROM t, u WHERE t.id = u.t_id"
        cheap_plan = "\n".join(
            row[0] for row in cheap_probe.execute("EXPLAIN " + sql).rows
        )
        costly_plan = "\n".join(
            row[0] for row in costly_probe.execute("EXPLAIN " + sql).rows
        )
        assert "IndexNLJoin" in cheap_plan
        assert "HashJoin" in costly_plan
        # both regimes agree on the answer
        assert cheap_probe.execute(sql).scalar() == costly_probe.execute(
            sql
        ).scalar()

    def test_options_default_empty(self):
        assert Database().planner_options == {}
