"""Tests for EXPLAIN and planner regime options."""

import pytest

from repro.relational import Database
from repro.relational.errors import BindError


def make_db(planner_options=None):
    database = Database(planner_options=planner_options)
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.execute("CREATE TABLE u (id INTEGER, t_id INTEGER)")
    database.execute("CREATE INDEX u_tid ON u (t_id)")
    for i in range(300):
        database.execute("INSERT INTO t VALUES (?, ?)", [i, i % 5])
        database.execute("INSERT INTO u VALUES (?, ?)", [i, (i * 7) % 300])
    return database


class TestExplain:
    def test_explain_returns_plan_rows(self):
        database = make_db()
        result = database.execute("EXPLAIN SELECT v FROM t WHERE id = 5")
        assert result.columns == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "IndexEqScan(t" in text
        assert "ProjectOp" in text

    def test_explain_shows_join_strategy(self):
        database = make_db()
        text = "\n".join(
            row[0]
            for row in database.execute(
                "EXPLAIN SELECT t.v FROM t, u WHERE t.id = u.t_id"
            ).rows
        )
        assert "IndexNLJoin" in text or "HashJoin" in text

    def test_explain_shows_estimates(self):
        database = make_db()
        text = "\n".join(
            row[0]
            for row in database.execute("EXPLAIN SELECT * FROM t").rows
        )
        assert "est_rows=300" in text

    def test_explain_does_not_execute(self):
        database = make_db()
        database.execute("EXPLAIN SELECT COUNT(*) FROM t")
        # table contents untouched
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 300

    def test_explain_dml_rejected(self):
        database = make_db()
        with pytest.raises(BindError):
            database.execute("EXPLAIN DELETE FROM t")

    def test_explain_with_cte(self):
        database = make_db()
        result = database.execute(
            "EXPLAIN WITH x AS (SELECT id FROM t) SELECT COUNT(*) FROM x"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "MaterializedScan" in text


class TestExplainAnalyze:
    def _plan_text(self, database, sql):
        result = database.execute("EXPLAIN ANALYZE " + sql)
        assert result.columns == ["plan"]
        return "\n".join(row[0] for row in result.rows)

    def test_actual_rows_match_real_results(self):
        database = make_db()
        sql = "SELECT v FROM t WHERE v = 3"
        expected = len(database.execute(sql).rows)
        assert expected == 60  # 300 rows, v = i % 5
        text = self._plan_text(database, sql)
        assert f"Execution: {expected} rows" in text
        # the root operator produced exactly the result rows
        first_line = text.splitlines()[0]
        assert f"actual_rows={expected}" in first_line
        assert "time=" in first_line

    def test_annotates_every_operator(self):
        database = make_db()
        text = self._plan_text(
            database, "SELECT t.v FROM t, u WHERE t.id = u.t_id"
        )
        for line in text.splitlines():
            if "est_rows=" in line:
                assert "actual_rows=" in line or "never executed" in line

    def test_zero_row_query(self):
        database = make_db()
        text = self._plan_text(database, "SELECT v FROM t WHERE id = -1")
        assert "Execution: 0 rows" in text
        assert "actual_rows=0" in text.splitlines()[0]

    def test_summary_counters_present(self):
        database = make_db()
        text = self._plan_text(database, "SELECT COUNT(*) FROM t")
        assert "Buffer pool:" in text
        assert "Indexes:" in text
        assert "Locks:" in text

    def test_reports_index_probes(self):
        database = make_db()
        text = self._plan_text(database, "SELECT v FROM t WHERE id = 5")
        probes = [
            line for line in text.splitlines() if line.startswith("Indexes:")
        ]
        assert len(probes) == 1
        count = int(probes[0].split()[1])
        assert count >= 1

    def test_cte_sections_rendered(self):
        database = make_db()
        text = self._plan_text(
            database,
            "WITH x AS (SELECT id FROM t) SELECT COUNT(*) FROM x",
        )
        assert "CTE x:" in text
        # the CTE's own operators carry actuals too
        cte_start = text.index("CTE x:")
        cte_body = text[cte_start:].splitlines()[1]
        assert "actual_rows=300" in cte_body

    def test_analyze_executes(self):
        database = make_db()
        database.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM t")
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 300

    def test_analyze_dml_rejected_with_message(self):
        database = make_db()
        with pytest.raises(BindError, match="SELECT statements only"):
            database.execute("EXPLAIN ANALYZE DELETE FROM t")

    def test_metrics_toggle_restored(self):
        from repro.obs.metrics import ENGINE_METRICS

        database = make_db()
        assert ENGINE_METRICS.enabled is False
        database.execute("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 5")
        assert ENGINE_METRICS.enabled is False


class TestPlannerOptions:
    def test_high_probe_cost_prefers_hash_join(self):
        cheap_probe = make_db()
        costly_probe = make_db(planner_options={"index_probe_cost": 1000.0})
        sql = "SELECT COUNT(*) FROM t, u WHERE t.id = u.t_id"
        cheap_plan = "\n".join(
            row[0] for row in cheap_probe.execute("EXPLAIN " + sql).rows
        )
        costly_plan = "\n".join(
            row[0] for row in costly_probe.execute("EXPLAIN " + sql).rows
        )
        assert "IndexNLJoin" in cheap_plan
        assert "HashJoin" in costly_plan
        # both regimes agree on the answer
        assert cheap_probe.execute(sql).scalar() == costly_probe.execute(
            sql
        ).scalar()

    def test_options_default_empty(self):
        assert Database().planner_options == {}
