"""Lock-timeout configuration and multi-threaded contention.

Satellite coverage for the serving layer: ``REPRO_LOCK_TIMEOUT_MS``
resolution, the per-thread :meth:`LockManager.cap` used by statement
timeouts, a stress test that provokes real ``LockTimeoutError`` under
writer contention, and the retryable ``LOCK_TIMEOUT`` wire error a remote
client sees for the same situation.
"""

import threading
import time

import pytest

from repro.cli import build_store
from repro.client import SQLGraphClient
from repro.relational import Database
from repro.relational.errors import LockTimeoutError
from repro.relational.locks import (
    DEFAULT_LOCK_TIMEOUT_S,
    LockManager,
    resolve_lock_timeout,
)
from repro.server import SQLGraphServer, WireError
from repro.server import protocol


class TestTimeoutResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_TIMEOUT_MS", raising=False)
        assert resolve_lock_timeout() == DEFAULT_LOCK_TIMEOUT_S

    def test_env_is_milliseconds(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_MS", "1500")
        assert resolve_lock_timeout() == 1.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_MS", "1500")
        assert resolve_lock_timeout(0.2) == 0.2

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_MS", "soon")
        assert resolve_lock_timeout() == DEFAULT_LOCK_TIMEOUT_S

    def test_lock_manager_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_MS", "250")
        assert LockManager().timeout == 0.25
        # explicit constructor values still win (test suite relies on it)
        assert LockManager(timeout=0.2).timeout == 0.2

    def test_database_inherits_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_MS", "125")
        database = Database()
        assert database.locks.timeout == 0.125


class TestPerThreadCap:
    def test_cap_tightens_and_restores(self):
        locks = LockManager(timeout=30.0)
        assert locks.effective_timeout() == 30.0
        with locks.cap(0.5):
            assert locks.effective_timeout() == 0.5
            with locks.cap(0.1):
                assert locks.effective_timeout() == 0.1
            assert locks.effective_timeout() == 0.5
        assert locks.effective_timeout() == 30.0

    def test_cap_none_is_a_no_op(self):
        locks = LockManager(timeout=30.0)
        with locks.cap(None):
            assert locks.effective_timeout() == 30.0

    def test_cap_never_loosens(self):
        locks = LockManager(timeout=0.2)
        with locks.cap(10.0):
            assert locks.effective_timeout() == 0.2

    def test_cap_is_thread_local(self):
        locks = LockManager(timeout=30.0)
        seen = {}
        ready = threading.Event()

        def other():
            ready.wait(timeout=5)
            seen["other"] = locks.effective_timeout()

        thread = threading.Thread(target=other)
        thread.start()
        with locks.cap(0.25):
            ready.set()
            thread.join(timeout=5)
            seen["capped"] = locks.effective_timeout()
        assert seen == {"other": 30.0, "capped": 0.25}


class TestContentionStress:
    def test_writer_contention_provokes_lock_timeout(self):
        """Many writers on one table with a tiny budget: some must time out,
        and every timeout must leave the database consistent."""
        database = Database(lock_timeout=0.05)
        database.execute("CREATE TABLE hot (id INTEGER PRIMARY KEY, v INTEGER)")
        threads = 6
        per_thread = 5
        timeouts = []
        committed = []
        guard = threading.Lock()
        barrier = threading.Barrier(threads)

        def worker(base):
            barrier.wait(timeout=10)
            for i in range(per_thread):
                key = base * per_thread + i
                try:
                    with database.transaction():
                        database.execute(
                            "INSERT INTO hot VALUES (?, ?)", [key, base]
                        )
                        time.sleep(0.02)  # hold the write lock
                except LockTimeoutError:
                    with guard:
                        timeouts.append(key)
                else:
                    with guard:
                        committed.append(key)

        pool = [threading.Thread(target=worker, args=(n,))
                for n in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
        assert timeouts, "contention never produced a LockTimeoutError"
        assert committed, "no writer ever got through"
        rows = database.execute("SELECT id FROM hot").rows
        assert sorted(row[0] for row in rows) == sorted(committed)

    def test_timed_out_statement_keeps_connection_usable(self):
        database = Database(lock_timeout=0.05)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        locked = threading.Event()
        release = threading.Event()

        def holder():
            with database.transaction():
                database.execute("INSERT INTO t VALUES (?)", [1])
                locked.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        assert locked.wait(timeout=5)
        try:
            with pytest.raises(LockTimeoutError):
                database.execute("INSERT INTO t VALUES (?)", [2])
        finally:
            release.set()
            thread.join(timeout=10)
        # lock released; the same thread can write again
        database.execute("INSERT INTO t VALUES (?)", [3])
        assert len(database.execute("SELECT id FROM t").rows) == 2


class TestWireLockTimeout:
    @pytest.fixture
    def server(self):
        store = build_store("tinker")
        store.database.locks.timeout = 0.1  # tight budget for the test
        server = SQLGraphServer(store, port=0, max_workers=4,
                                max_queue=4).start()
        yield server
        server.shutdown(drain_timeout_s=1.0)

    def test_remote_lock_timeout_is_retryable(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as holder, \
                SQLGraphClient("127.0.0.1", server.port, retries=0) as victim:
            holder.begin()
            holder.sql("INSERT INTO va VALUES (?, ?)", [70001, {"k": "v"}])
            with pytest.raises(WireError) as excinfo:
                victim.sql("INSERT INTO va VALUES (?, ?)", [70002, {"k": "v"}])
            assert excinfo.value.code == protocol.LOCK_TIMEOUT
            assert excinfo.value.retryable is True
            holder.rollback()
            # after release the same statement goes through
            victim.sql("INSERT INTO va VALUES (?, ?)", [70002, {"k": "v"}])
            assert victim.sql(
                "SELECT COUNT(*) FROM va WHERE vid = 70002"
            ).scalar() == 1

    def test_statement_timeout_elevates_lock_timeout(self, server):
        with SQLGraphClient("127.0.0.1", server.port) as holder, \
                SQLGraphClient("127.0.0.1", server.port, retries=0) as victim:
            victim.set_statement_timeout(30)  # 30ms < 100ms lock budget
            holder.begin()
            holder.sql("INSERT INTO va VALUES (?, ?)", [70003, {"k": "v"}])
            before = server.statement_timeouts
            with pytest.raises(WireError) as excinfo:
                victim.sql("INSERT INTO va VALUES (?, ?)", [70004, {"k": "v"}])
            assert excinfo.value.code == protocol.STATEMENT_TIMEOUT
            assert excinfo.value.retryable is True
            assert server.statement_timeouts > before
            holder.rollback()
