"""Tests for transactions, undo rollback, and table locking."""

import random
import threading

import pytest

from repro.relational import Database
from repro.relational.errors import LockTimeoutError, TransactionError
from repro.relational.locks import LockManager, ReadWriteLock
from repro.relational.table import HeapTable
from tests.crashkit import assert_states_equal, database_state


class _Boom(RuntimeError):
    """Sentinel raised to abort a transaction under test."""


def make_db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return database


class TestTransactions:
    def test_commit(self):
        database = make_db()
        with database.transaction():
            database.execute("INSERT INTO t VALUES (3, 'c')")
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_rollback_insert(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("INSERT INTO t VALUES (3, 'c')")
                raise RuntimeError("boom")
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_rollback_delete(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("DELETE FROM t WHERE id = 1")
                raise RuntimeError("boom")
        assert database.execute("SELECT v FROM t WHERE id = 1").scalar() == "a"

    def test_rollback_update(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("UPDATE t SET v = 'z' WHERE id = 2")
                raise RuntimeError("boom")
        assert database.execute("SELECT v FROM t WHERE id = 2").scalar() == "b"

    def test_rollback_mixed_sequence(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("INSERT INTO t VALUES (3, 'c')")
                database.execute("UPDATE t SET v = 'zzz' WHERE id = 3")
                database.execute("DELETE FROM t WHERE id = 1")
                raise RuntimeError("boom")
        rows = sorted(database.execute("SELECT id, v FROM t").rows)
        assert rows == [(1, "a"), (2, "b")]

    def test_rollback_restores_index_entries(self):
        database = make_db()
        database.execute("CREATE INDEX ix_v ON t (v)")
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("DELETE FROM t WHERE v = 'a'")
                raise RuntimeError("boom")
        assert database.execute(
            "SELECT id FROM t WHERE v = 'a'"
        ).rows == [(1,)]

    def test_nested_transactions_rejected(self):
        database = make_db()
        with pytest.raises(TransactionError):
            with database.transaction():
                with database.transaction():
                    pass

    def test_transaction_isolated_per_thread(self):
        database = make_db()
        errors = []

        def other_thread():
            try:
                assert database.current_transaction() is None
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        with database.transaction():
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert not errors


class TestReadWriteLock:
    def test_multiple_readers(self):
        lock = ReadWriteLock("x")
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_blocks_reader(self):
        lock = ReadWriteLock("x")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError):
            lock.acquire_read(timeout=0.05)
        lock.release_write()
        lock.acquire_read(timeout=0.05)

    def test_reader_blocks_writer(self):
        lock = ReadWriteLock("x")
        lock.acquire_read()
        with pytest.raises(LockTimeoutError):
            lock.acquire_write(timeout=0.05)
        lock.release_read()
        lock.acquire_write(timeout=0.05)


class TestLockManager:
    def test_write_subsumes_read(self):
        manager = LockManager(timeout=0.2)
        token = manager.acquire(["t"], ["t"])
        assert len(token) == 1
        assert token[0][1] == "w"
        LockManager.release(token)

    def test_ordered_acquisition(self):
        manager = LockManager(timeout=0.2)
        token = manager.acquire(["b", "a"], ["c"])
        names = [lock.name for lock, __ in token]
        assert names == sorted(names)
        LockManager.release(token)

    def test_transaction_holds_locks_until_commit(self):
        database = make_db()
        release = threading.Event()
        acquired = threading.Event()

        def holder():
            with database.transaction():
                database.execute("UPDATE t SET v = 'x' WHERE id = 1")
                acquired.set()
                release.wait(timeout=2)

        worker = threading.Thread(target=holder)
        worker.start()
        acquired.wait(timeout=2)
        # while the transaction is open, a write from this thread must wait
        database.locks.timeout = 0.05
        with pytest.raises(LockTimeoutError):
            database.execute("UPDATE t SET v = 'y' WHERE id = 2")
        release.set()
        worker.join()
        database.locks.timeout = 2
        database.execute("UPDATE t SET v = 'y' WHERE id = 2")

    def test_concurrent_readers_proceed(self):
        database = make_db()
        results = []

        def reader():
            results.append(database.execute("SELECT COUNT(*) FROM t").scalar())

        threads = [threading.Thread(target=reader) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [2] * 8

    def test_concurrent_writers_serialize(self):
        database = make_db()

        def writer(n):
            for i in range(20):
                database.execute(
                    "INSERT INTO t VALUES (?, 'w')", [100 + n * 100 + i]
                )

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 82


def property_db():
    """A table with both a hash and a sorted secondary index, so rollback
    has to restore three index structures besides the heap."""
    database = Database()
    database.execute(
        "CREATE TABLE kv (k INTEGER PRIMARY KEY, v STRING, n INTEGER)"
    )
    database.execute("CREATE INDEX kv_n ON kv (n)")
    database.execute("CREATE INDEX kv_v ON kv (v) USING sorted")
    return database


class TestRollbackProperty:
    """Property-based: any interleaving of committed and aborted
    transactions must leave exactly the committed state — heap rows and
    every secondary index entry (compared as multisets via
    :func:`tests.crashkit.database_state`)."""

    SEEDS = [1, 7, 2026]

    def random_ops(self, rng, model, database):
        """Run 1-6 random DML statements, mirroring them into *model*."""
        for __ in range(rng.randint(1, 6)):
            roll = rng.random()
            if roll < 0.5 or not model:
                key = rng.randint(0, 10_000)
                while key in model:
                    key += 1
                value, n = f"v{rng.randint(0, 99)}", rng.randint(0, 9)
                database.execute(
                    "INSERT INTO kv VALUES (?, ?, ?)", [key, value, n]
                )
                model[key] = (value, n)
            elif roll < 0.8:
                key = rng.choice(sorted(model))
                value = f"u{rng.randint(0, 99)}"
                database.execute(
                    "UPDATE kv SET v = ? WHERE k = ?", [value, key]
                )
                model[key] = (value, model[key][1])
            else:
                key = rng.choice(sorted(model))
                database.execute("DELETE FROM kv WHERE k = ?", [key])
                del model[key]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_interleavings_restore_state_exactly(self, seed):
        rng = random.Random(seed)
        database = property_db()
        model = {}
        for __ in range(25):
            if rng.random() < 0.5:
                with database.transaction():
                    self.random_ops(rng, model, database)
            else:
                snapshot = database_state(database)
                shadow = dict(model)  # aborted effects must not reach model
                with pytest.raises(_Boom):
                    with database.transaction():
                        self.random_ops(rng, shadow, database)
                        raise _Boom("abort")
                assert_states_equal(
                    database_state(database),
                    snapshot,
                    context=f"seed {seed}: abort left a trace",
                )
        rows = sorted(database.execute("SELECT k, v, n FROM kv").rows)
        assert rows == sorted((k, v, n) for k, (v, n) in model.items())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_secondary_indexes_answer_queries_after_aborts(self, seed):
        """After a churn of aborts, point lookups through both secondary
        indexes agree with a full scan — no stale or missing entries."""
        rng = random.Random(seed + 1000)
        database = property_db()
        model = {}
        for __ in range(15):
            shadow = dict(model)
            aborted = rng.random() < 0.5
            if aborted:
                with pytest.raises(_Boom):
                    with database.transaction():
                        self.random_ops(rng, shadow, database)
                        raise _Boom("abort")
            else:
                with database.transaction():
                    self.random_ops(rng, model, database)
        for n in range(10):
            want = sorted(k for k, (__, kn) in model.items() if kn == n)
            got = sorted(
                k for (k,) in database.execute(
                    "SELECT k FROM kv WHERE n = ?", [n]
                ).rows
            )
            assert got == want, f"seed {seed}: index kv_n diverged at n={n}"
        for key, (value, __) in model.items():
            got = database.execute(
                "SELECT k FROM kv WHERE v = ?", [value]
            ).rows
            assert (key,) in got, f"seed {seed}: index kv_v lost k={key}"


class TestStoreRollback:
    """Rolling back graph procedures must restore the whole hybrid schema,
    including ``lid:`` spill rows in the secondary adjacency tables."""

    def test_rollback_restores_adjacency_spill_rows(self):
        from repro.core import SQLGraphStore
        from repro.datasets.random_graphs import random_property_graph

        store = SQLGraphStore()
        store.load_graph(
            random_property_graph(seed=5, n_vertices=10, n_edges=15)
        )
        database = store.database
        eid = store.add_edge(1, 2, "fanout")
        before = database_state(database)
        counts = (store.vertex_count(), store.edge_count())
        osa = database.table(store.schema.table_names["osa"])
        osa_rows_before = osa.live_rows

        with pytest.raises(_Boom):
            with database.transaction():
                vid = store.add_vertex(properties={"name": "temp"})
                # a second and third same-label edge migrate the primary
                # adjacency cell into OSA "lid:" spill rows
                store.add_edge(1, 3, "fanout")
                store.add_edge(1, vid, "fanout")
                assert osa.live_rows > osa_rows_before
                store.set_vertex_property(2, "kind", "changed")
                store.remove_edge(eid)
                raise _Boom("abort")

        assert_states_equal(
            database_state(database), before, context="store rollback"
        )
        assert (store.vertex_count(), store.edge_count()) == counts
        assert store.get_edge(eid) is not None

    def test_committed_spill_rows_survive_following_abort(self):
        from repro.core import SQLGraphStore
        from repro.datasets.random_graphs import random_property_graph

        store = SQLGraphStore()
        store.load_graph(
            random_property_graph(seed=6, n_vertices=8, n_edges=10)
        )
        database = store.database
        with database.transaction():
            store.add_edge(1, 2, "rel")
            store.add_edge(1, 3, "rel")  # commits real spill rows
        committed = database_state(database)
        with pytest.raises(_Boom):
            with database.transaction():
                store.add_edge(1, 4, "rel")  # extends the same spill list
                raise _Boom("abort")
        assert_states_equal(
            database_state(database), committed, context="post-commit abort"
        )


class TestRollbackLockRelease:
    """Regression: a failing undo step must still release table locks
    (and unregister the thread's transaction)."""

    def test_locks_released_when_undo_raises(self, monkeypatch):
        database = make_db()
        original_restore = HeapTable.restore

        def broken_restore(self, rid, row):
            raise OSError("simulated undo failure")

        monkeypatch.setattr(HeapTable, "restore", broken_restore)
        with pytest.raises(OSError, match="simulated undo failure"):
            with database.transaction():
                database.execute("DELETE FROM t WHERE id = 1")
                raise _Boom("abort")
        monkeypatch.setattr(HeapTable, "restore", original_restore)

        # the session is not wedged: the thread has no dangling
        # transaction and fresh writers can take the table lock
        assert database.current_transaction() is None
        database.locks.timeout = 0.2
        database.execute("INSERT INTO t VALUES (9, 'ok')")
        assert database.execute(
            "SELECT v FROM t WHERE id = 9"
        ).scalar() == "ok"

    def test_failed_undo_marks_transaction_finished(self, monkeypatch):
        database = make_db()
        monkeypatch.setattr(
            HeapTable, "restore",
            lambda self, rid, row: (_ for _ in ()).throw(OSError("boom")),
        )
        transaction = None
        try:
            with database.transaction() as txn:
                transaction = txn
                database.execute("DELETE FROM t WHERE id = 2")
                raise _Boom("abort")
        except (OSError, _Boom):
            pass
        assert transaction is not None and not transaction.active
        with pytest.raises(TransactionError):
            transaction.commit()
