"""Tests for transactions, undo rollback, and table locking."""

import threading

import pytest

from repro.relational import Database
from repro.relational.errors import LockTimeoutError, TransactionError
from repro.relational.locks import LockManager, ReadWriteLock


def make_db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return database


class TestTransactions:
    def test_commit(self):
        database = make_db()
        with database.transaction():
            database.execute("INSERT INTO t VALUES (3, 'c')")
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_rollback_insert(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("INSERT INTO t VALUES (3, 'c')")
                raise RuntimeError("boom")
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_rollback_delete(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("DELETE FROM t WHERE id = 1")
                raise RuntimeError("boom")
        assert database.execute("SELECT v FROM t WHERE id = 1").scalar() == "a"

    def test_rollback_update(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("UPDATE t SET v = 'z' WHERE id = 2")
                raise RuntimeError("boom")
        assert database.execute("SELECT v FROM t WHERE id = 2").scalar() == "b"

    def test_rollback_mixed_sequence(self):
        database = make_db()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("INSERT INTO t VALUES (3, 'c')")
                database.execute("UPDATE t SET v = 'zzz' WHERE id = 3")
                database.execute("DELETE FROM t WHERE id = 1")
                raise RuntimeError("boom")
        rows = sorted(database.execute("SELECT id, v FROM t").rows)
        assert rows == [(1, "a"), (2, "b")]

    def test_rollback_restores_index_entries(self):
        database = make_db()
        database.execute("CREATE INDEX ix_v ON t (v)")
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.execute("DELETE FROM t WHERE v = 'a'")
                raise RuntimeError("boom")
        assert database.execute(
            "SELECT id FROM t WHERE v = 'a'"
        ).rows == [(1,)]

    def test_nested_transactions_rejected(self):
        database = make_db()
        with pytest.raises(TransactionError):
            with database.transaction():
                with database.transaction():
                    pass

    def test_transaction_isolated_per_thread(self):
        database = make_db()
        errors = []

        def other_thread():
            try:
                assert database.current_transaction() is None
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        with database.transaction():
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert not errors


class TestReadWriteLock:
    def test_multiple_readers(self):
        lock = ReadWriteLock("x")
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_blocks_reader(self):
        lock = ReadWriteLock("x")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError):
            lock.acquire_read(timeout=0.05)
        lock.release_write()
        lock.acquire_read(timeout=0.05)

    def test_reader_blocks_writer(self):
        lock = ReadWriteLock("x")
        lock.acquire_read()
        with pytest.raises(LockTimeoutError):
            lock.acquire_write(timeout=0.05)
        lock.release_read()
        lock.acquire_write(timeout=0.05)


class TestLockManager:
    def test_write_subsumes_read(self):
        manager = LockManager(timeout=0.2)
        token = manager.acquire(["t"], ["t"])
        assert len(token) == 1
        assert token[0][1] == "w"
        LockManager.release(token)

    def test_ordered_acquisition(self):
        manager = LockManager(timeout=0.2)
        token = manager.acquire(["b", "a"], ["c"])
        names = [lock.name for lock, __ in token]
        assert names == sorted(names)
        LockManager.release(token)

    def test_transaction_holds_locks_until_commit(self):
        database = make_db()
        release = threading.Event()
        acquired = threading.Event()

        def holder():
            with database.transaction():
                database.execute("UPDATE t SET v = 'x' WHERE id = 1")
                acquired.set()
                release.wait(timeout=2)

        worker = threading.Thread(target=holder)
        worker.start()
        acquired.wait(timeout=2)
        # while the transaction is open, a write from this thread must wait
        database.locks.timeout = 0.05
        with pytest.raises(LockTimeoutError):
            database.execute("UPDATE t SET v = 'y' WHERE id = 2")
        release.set()
        worker.join()
        database.locks.timeout = 2
        database.execute("UPDATE t SET v = 'y' WHERE id = 2")

    def test_concurrent_readers_proceed(self):
        database = make_db()
        results = []

        def reader():
            results.append(database.execute("SELECT COUNT(*) FROM t").scalar())

        threads = [threading.Thread(target=reader) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [2] * 8

    def test_concurrent_writers_serialize(self):
        database = make_db()

        def writer(n):
            for i in range(20):
                database.execute(
                    "INSERT INTO t VALUES (?, 'w')", [100 + n * 100 + i]
                )

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 82
