"""Tests for the native and KV baseline stores."""

import pytest

from repro.baselines import ClientServerLink, KVGraphStore, NativeGraphStore
from repro.baselines.kv import SortedKV
from repro.datasets.tinker import paper_figure_graph
from repro.graph.blueprints import Direction

QUERIES = [
    "g.V.count()",
    "g.v(1).out('knows').name",
    "g.V.has('age', T.gt, 28).name",
    "g.v(4).both.dedup().count()",
    "g.E.has('weight', T.gte, 0.8).count()",
    "g.v(1).outE.inV.name",
    "g.V('name','marko').out.count()",
]


@pytest.fixture(params=["native", "kv"])
def store(request):
    if request.param == "native":
        instance = NativeGraphStore()
    else:
        instance = KVGraphStore()
    instance.load_graph(paper_figure_graph())
    return instance


class TestGremlinOverBaselines:
    def test_queries_match_reference(self, store, figure_graph):
        from repro.gremlin import GremlinInterpreter, parse_gremlin

        reference = GremlinInterpreter(figure_graph)
        for text in QUERIES:
            expected = reference.run(parse_gremlin(text))
            expected = [
                value.id if hasattr(value, "get_property") else value
                for value in expected
            ]
            assert sorted(map(repr, store.run(text))) == sorted(
                map(repr, expected)
            ), text

    def test_attribute_index_lookup(self, store):
        store.create_attribute_index("name")
        assert store.run("g.V('name','josh')") == [4]

    def test_round_trips_charged_per_primitive(self, store):
        store.client.reset()
        store.run("g.v(1).out.name")
        # 1 adjacent call + 3 property calls at least
        assert store.client.calls >= 4


class TestBaselineCrud:
    def test_add_get_vertex(self, store):
        store.add_vertex(50, {"name": "newbie"})
        assert store.get_vertex(50).get_property("name") == "newbie"
        assert store.vertex_count() == 5

    def test_add_edge_and_navigate(self, store):
        store.add_edge(2, 3, "likes", 77, {"w": 1})
        edge = store.get_edge(77)
        assert edge.label == "likes"
        assert edge.vertex(Direction.OUT).id == 2
        assert 3 in [v.id for v in store.get_vertex(2).vertices(Direction.OUT)]

    def test_remove_edge(self, store):
        assert store.remove_edge(10)
        assert store.get_edge(10) is None
        assert store.edge_count() == 4

    def test_remove_vertex_cascades(self, store):
        assert store.remove_vertex(3)
        assert store.get_vertex(3) is None
        assert store.edge_count() == 3

    def test_set_properties(self, store):
        store.set_vertex_property(1, "age", 99)
        assert store.get_vertex(1).get_property("age") == 99
        store.set_edge_property(7, "weight", 0.1)
        assert store.get_edge(7).get_property("weight") == 0.1


class TestSortedKV:
    def test_put_get_delete(self):
        kv = SortedKV()
        kv.put(("a", 1), {"x": 1})
        assert kv.get(("a", 1)) == {"x": 1}
        assert kv.delete(("a", 1))
        assert kv.get(("a", 1)) is None
        assert not kv.delete(("a", 1))

    def test_prefix_scan(self):
        kv = SortedKV()
        kv.bulk_load(
            [(("adj", 1, "o", "x", i), i) for i in range(3)]
            + [(("adj", 2, "o", "x", 9), 9)]
        )
        keys = [key for key, __ in kv.scan_prefix(("adj", 1))]
        assert len(keys) == 3
        assert all(key[1] == 1 for key in keys)

    def test_scan_counts_reads(self):
        kv = SortedKV()
        kv.bulk_load([(("v", i), i) for i in range(5)])
        before = kv.reads
        list(kv.scan_prefix(("v",)))
        assert kv.reads == before + 5

    def test_values_are_serialized(self):
        kv = SortedKV()
        payload = {"nested": [1, 2]}
        kv.put(("k",), payload)
        returned = kv.get(("k",))
        assert returned == payload
        assert returned is not payload  # round-tripped through bytes

    def test_storage_bytes(self):
        kv = SortedKV()
        kv.put(("k",), "x" * 100)
        assert kv.storage_bytes() > 100


class TestLatencyModel:
    def test_counting_mode(self):
        link = ClientServerLink(rtt_seconds=0.001)
        link.round_trip(5)
        assert link.calls == 5
        assert link.simulated_seconds == pytest.approx(0.005)

    def test_sleep_mode_pays_wall_clock(self):
        import time

        link = ClientServerLink(rtt_seconds=0.01, sleep=True)
        start = time.perf_counter()
        link.round_trip(3)
        assert time.perf_counter() - start >= 0.03

    def test_reset_and_snapshot(self):
        link = ClientServerLink(rtt_seconds=1)
        link.round_trip()
        assert link.snapshot() == {"calls": 1, "seconds": 1}
        link.reset()
        assert link.calls == 0
