"""Tests for the reference pipe-at-a-time interpreter.

The classic 6-vertex TinkerPop graph is the fixture; expected results follow
TinkerPop 2 semantics.
"""

import pytest

from repro.gremlin import GremlinInterpreter, parse_gremlin
from repro.gremlin.errors import GremlinError


@pytest.fixture
def interp(classic_graph):
    return GremlinInterpreter(classic_graph)


def ids(values):
    return sorted(v.id for v in values)


def run(interp, text):
    return interp.run(parse_gremlin(text))


class TestTransforms:
    def test_all_vertices(self, interp):
        assert len(run(interp, "g.V")) == 6

    def test_vertex_by_id(self, interp):
        assert ids(run(interp, "g.v(1)")) == [1]

    def test_missing_id_silent(self, interp):
        assert run(interp, "g.v(99)") == []

    def test_out(self, interp):
        assert ids(run(interp, "g.v(1).out")) == [2, 3, 4]

    def test_out_label(self, interp):
        assert ids(run(interp, "g.v(1).out('knows')")) == [2, 4]

    def test_in(self, interp):
        assert ids(run(interp, "g.v(3).in('created')")) == [1, 4, 6]

    def test_both(self, interp):
        assert ids(run(interp, "g.v(4).both")) == [1, 3, 5]

    def test_out_edges_in_v(self, interp):
        assert ids(run(interp, "g.v(1).outE('created').inV")) == [3]

    def test_both_v(self, interp):
        assert ids(run(interp, "g.e(7).bothV")) == [1, 2]

    def test_property_pipe_drops_missing(self, interp):
        names = run(interp, "g.V.lang")
        assert sorted(names) == ["java", "java"]

    def test_id_pipe(self, interp):
        assert sorted(run(interp, "g.V.id")) == [1, 2, 3, 4, 5, 6]

    def test_label_pipe(self, interp):
        labels = run(interp, "g.v(1).outE.label")
        assert sorted(labels) == ["created", "knows", "knows"]

    def test_count(self, interp):
        assert run(interp, "g.V.count()") == [6]

    def test_path(self, interp):
        paths = run(interp, "g.v(1).out('created').path")
        assert len(paths) == 1
        assert [e.id for e in paths[0]] == [1, 3]

    def test_order(self, interp):
        ages = run(interp, "g.V.age.order()")
        assert ages == sorted(ages)


class TestFilters:
    def test_has_value(self, interp):
        assert ids(run(interp, "g.V.has('name', 'marko')")) == [1]

    def test_has_exists(self, interp):
        assert len(run(interp, "g.V.has('age')")) == 4

    def test_has_comparison(self, interp):
        assert ids(run(interp, "g.V.has('age', T.gt, 30)")) == [4, 6]

    def test_has_not(self, interp):
        assert ids(run(interp, "g.V.hasNot('age')")) == [3, 5]

    def test_interval(self, interp):
        assert ids(run(interp, "g.V.interval('age', 27, 30)")) == [1, 2]

    def test_filter_closure(self, interp):
        assert ids(run(interp, "g.V.filter{it.age > 30}")) == [4, 6]

    def test_dedup(self, interp):
        assert ids(run(interp, "g.v(1).out.in.dedup()")) == [1, 4, 6]

    def test_range(self, interp):
        assert len(run(interp, "g.V.range(1, 3)")) == 3

    def test_range_open_end(self, interp):
        assert len(run(interp, "g.V.range(2, -1)")) == 4

    def test_simple_path(self, interp):
        assert ids(run(interp, "g.v(1).out.in.simplePath")) == [4, 6]

    def test_except_retain_aggregate(self, interp):
        result = run(interp, "g.v(1).out.aggregate(x).out.except(x).name")
        assert result == ["ripple"]
        result = run(interp, "g.v(1).out.aggregate(x).out.retain(x).name")
        assert result == ["lop"]

    def test_and_filter(self, interp):
        assert ids(
            run(interp, "g.V.and(_().out('knows'), _().out('created'))")
        ) == [1]

    def test_or_filter(self, interp):
        assert ids(
            run(interp, "g.V.or(_().has('lang'), _().has('age', T.lt, 28))")
        ) == [2, 3, 5]


class TestBranchesAndEffects:
    def test_if_then_else(self, interp):
        result = run(interp, "g.V.ifThenElse{it.age != null}{it.age}{-1}")
        assert sorted(result) == [-1, -1, 27, 29, 32, 35]

    def test_copy_split_exhaust(self, interp):
        result = run(
            interp,
            "g.v(1).copySplit(_().out('knows'), _().out('created'))"
            ".exhaustMerge().name",
        )
        assert result == ["vadas", "josh", "lop"]

    def test_copy_split_fair(self, interp):
        result = run(
            interp,
            "g.v(1).copySplit(_().out('knows'), _().out('created'))"
            ".fairMerge().name",
        )
        assert result == ["vadas", "lop", "josh"]

    def test_loop_fixed_depth(self, interp):
        result = run(interp, "g.v(1).out.loop(1){it.loops < 2}.name")
        assert sorted(result) == ["lop", "ripple"]

    def test_loop_depth_three_empty(self, interp):
        assert run(interp, "g.v(1).out.loop(1){it.loops < 3}") == []

    def test_as_back(self, interp):
        result = run(
            interp, "g.V.as('x').out('created').has('lang','java').back('x').name"
        )
        assert sorted(result) == ["josh", "josh", "marko", "peter"]

    def test_back_by_steps(self, interp):
        result = run(interp, "g.v(1).out('knows').out('created').back(1).name")
        assert sorted(result) == ["josh", "josh"]

    def test_back_unmarked_raises(self, interp):
        with pytest.raises(GremlinError):
            run(interp, "g.V.out.back('nope')")

    def test_aggregate_is_barrier(self, interp):
        # except sees the full aggregate even for the first traverser
        result = run(interp, "g.V.aggregate(x).out.except(x)")
        assert result == []

    def test_side_effects_are_identity(self, interp):
        assert len(run(interp, "g.V.groupCount(m).table(t).iterate()")) == 6

    def test_select(self, interp):
        result = run(
            interp, "g.v(1).as('a').out('knows').as('b').select('a', 'b')"
        )
        assert len(result) == 2
        assert all(pair[0].id == 1 for pair in result)


class TestStartByKeyValue:
    def test_key_value_start(self, interp):
        assert ids(run(interp, "g.V('lang', 'java')")) == [3, 5]

    def test_edge_key_value_start(self, interp):
        assert len(run(interp, "g.E('weight', 1.0)")) == 2
