"""Tests for column types, coercion and table schemas."""

import pytest

from repro.relational.errors import BindError, TypeMismatchError
from repro.relational.schema import Column, ColumnType, TableSchema, coerce_value


class TestColumnType:
    def test_from_name_aliases(self):
        assert ColumnType.from_name("int") is ColumnType.INTEGER
        assert ColumnType.from_name("BIGINT") is ColumnType.INTEGER
        assert ColumnType.from_name("varchar") is ColumnType.STRING
        assert ColumnType.from_name("Text") is ColumnType.STRING
        assert ColumnType.from_name("REAL") is ColumnType.DOUBLE
        assert ColumnType.from_name("bool") is ColumnType.BOOLEAN
        assert ColumnType.from_name("json") is ColumnType.JSON
        assert ColumnType.from_name("any") is ColumnType.ANY

    def test_from_name_unknown(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.from_name("blob9")


class TestCoerceValue:
    def test_none_passes_through(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None

    def test_integer_coercions(self):
        assert coerce_value(5, ColumnType.INTEGER) == 5
        assert coerce_value(5.0, ColumnType.INTEGER) == 5
        assert coerce_value("7", ColumnType.INTEGER) == 7
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_integer_rejects_fractional(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, ColumnType.INTEGER)

    def test_integer_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("five", ColumnType.INTEGER)

    def test_double_coercions(self):
        assert coerce_value(5, ColumnType.DOUBLE) == 5
        assert coerce_value("2.5", ColumnType.DOUBLE) == 2.5

    def test_string_coercions(self):
        assert coerce_value(5, ColumnType.STRING) == "5"
        assert coerce_value("x", ColumnType.STRING) == "x"

    def test_boolean_coercions(self):
        assert coerce_value(1, ColumnType.BOOLEAN) is True
        assert coerce_value(0, ColumnType.BOOLEAN) is False

    def test_json_any_pass_through(self):
        payload = {"a": [1, 2]}
        assert coerce_value(payload, ColumnType.JSON) is payload
        assert coerce_value(payload, ColumnType.ANY) is payload


class TestTableSchema:
    def make(self):
        return TableSchema(
            "T",
            [Column("id", ColumnType.INTEGER), Column("name", ColumnType.STRING)],
            primary_key="id",
        )

    def test_names_lowercased(self):
        schema = self.make()
        assert schema.name == "t"
        assert schema.column_names == ["id", "name"]

    def test_position_case_insensitive(self):
        schema = self.make()
        assert schema.position("ID") == 0
        assert schema.position("Name") == 1

    def test_position_unknown_raises(self):
        with pytest.raises(BindError):
            self.make().position("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(BindError):
            TableSchema("t", [Column("a"), Column("A")])

    def test_bad_primary_key_rejected(self):
        with pytest.raises(BindError):
            TableSchema("t", [Column("a")], primary_key="b")

    def test_coerce_row(self):
        schema = self.make()
        assert schema.coerce_row(["3", 7]) == (3, "7")

    def test_coerce_row_arity_check(self):
        with pytest.raises(BindError):
            self.make().coerce_row([1])

    def test_has_column(self):
        schema = self.make()
        assert schema.has_column("NAME")
        assert not schema.has_column("other")
