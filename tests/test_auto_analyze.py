"""Auto-ANALYZE: drift-triggered statistics refresh (off by default).

Knobs under test (see docs/OPTIMIZER.md):

* ``REPRO_AUTO_ANALYZE`` / ``Database(auto_analyze=...)`` — master
  switch, default off;
* ``REPRO_AUTO_ANALYZE_DRIFT`` / ``auto_analyze_drift`` — the
  ``mutation_drift`` fraction past which statistics are re-collected
  (default 0.5);
* ``AUTO_ANALYZE_MIN_ROWS`` — tables with no statistics yet are only
  picked up once they grow past this floor.
"""

from repro.relational.database import (
    AUTO_ANALYZE_MIN_ROWS,
    Database,
    resolve_auto_analyze,
    resolve_auto_analyze_drift,
)


def _kv_database(**kwargs):
    database = Database(**kwargs)
    database.execute("CREATE TABLE kv (k INTEGER PRIMARY KEY, v STRING)")
    return database


def _fill(database, start, count):
    for k in range(start, start + count):
        database.execute(f"INSERT INTO kv VALUES ({k}, 'v{k}')")


def test_off_by_default():
    database = _kv_database()
    assert database.auto_analyze is False
    _fill(database, 0, AUTO_ANALYZE_MIN_ROWS + 10)
    assert database.statistics.get("kv") is None
    assert database.auto_analyzed == 0


def test_env_knobs(monkeypatch):
    monkeypatch.delenv("REPRO_AUTO_ANALYZE", raising=False)
    assert resolve_auto_analyze() is False
    monkeypatch.setenv("REPRO_AUTO_ANALYZE", "1")
    assert resolve_auto_analyze() is True
    assert Database().auto_analyze is True
    monkeypatch.setenv("REPRO_AUTO_ANALYZE", "0")
    assert resolve_auto_analyze() is False
    assert resolve_auto_analyze(True) is True  # explicit flag wins
    monkeypatch.setenv("REPRO_AUTO_ANALYZE_DRIFT", "0.25")
    assert resolve_auto_analyze_drift() == 0.25
    assert resolve_auto_analyze_drift(0.75) == 0.75


def test_unanalyzed_table_waits_for_min_rows():
    database = _kv_database(auto_analyze=True)
    _fill(database, 0, AUTO_ANALYZE_MIN_ROWS - 1)
    assert database.statistics.get("kv") is None  # below the floor
    _fill(database, AUTO_ANALYZE_MIN_ROWS - 1, 1)  # crosses it
    entry = database.statistics.get("kv", database.schema_epoch)
    assert entry is not None
    assert entry.row_count == AUTO_ANALYZE_MIN_ROWS
    assert database.auto_analyzed == 1


def test_drift_triggers_reanalysis():
    database = _kv_database(auto_analyze_drift=0.5)
    _fill(database, 0, 100)  # auto off: load quietly, then baseline
    database.execute("ANALYZE kv")
    first = database.statistics.get("kv", database.schema_epoch)
    assert first.row_count == 100
    database.auto_analyze = True
    # 30% churn: under the 0.5 threshold, statistics stay put
    _fill(database, 100, 30)
    assert database.statistics.get(
        "kv", database.schema_epoch
    ).row_count == 100
    assert database.auto_analyzed == 0
    # the statement crossing 50% churn refreshes (50 inserts vs 100 rows)
    _fill(database, 130, 20)
    refreshed = database.statistics.get("kv", database.schema_epoch)
    assert refreshed.row_count == 150
    assert database.auto_analyzed == 1
    # the refresh resets the drift watermark: one more row, no churn
    _fill(database, 150, 1)
    assert database.statistics.get(
        "kv", database.schema_epoch
    ).row_count == 150


def test_deletes_count_toward_drift():
    database = _kv_database(auto_analyze_drift=0.4)
    _fill(database, 0, 100)
    database.execute("ANALYZE kv")
    database.auto_analyze = True
    for k in range(39):
        database.execute(f"DELETE FROM kv WHERE k = {k}")
    assert database.statistics.get("kv").row_count == 100  # 39% < 40%
    database.execute("DELETE FROM kv WHERE k = 39")  # crosses 40%
    assert database.statistics.get("kv").row_count == 60
    assert database.auto_analyzed == 1


def test_scratch_tables_are_never_analyzed():
    database = Database(auto_analyze=True)
    database.execute("CREATE TABLE scratch_tmp (k INTEGER)")
    for k in range(AUTO_ANALYZE_MIN_ROWS * 2):
        database.execute(f"INSERT INTO scratch_tmp VALUES ({k})")
    assert database.statistics.get("scratch_tmp") is None
    assert database.auto_analyzed == 0
    # a full-database ANALYZE skips them as well
    database.execute("ANALYZE")
    assert database.statistics.get("scratch_tmp") is None


def test_no_trigger_inside_explicit_transactions():
    database = _kv_database(auto_analyze=True)
    with database.transaction():
        _fill(database, 0, AUTO_ANALYZE_MIN_ROWS * 2)
        assert database.auto_analyzed == 0  # never mid-transaction
    assert database.maybe_auto_analyze(["kv"]) == ["kv"]  # explicit sweep


def test_maybe_auto_analyze_returns_analyzed_names():
    database = _kv_database(auto_analyze=True, auto_analyze_drift=10.0)
    _fill(database, 0, 100)
    # the min-rows bootstrap analyzed once; a 10x drift threshold then
    # suppresses every organic refresh
    bootstrap = database.statistics.get("kv", database.schema_epoch)
    assert bootstrap.row_count == AUTO_ANALYZE_MIN_ROWS
    assert database.auto_analyzed == 1
    database.auto_analyze = False
    assert database.maybe_auto_analyze() == []  # disabled -> no-op
    database.auto_analyze = True
    assert database.maybe_auto_analyze(["kv", "missing"]) == []  # no drift
    database.auto_analyze_drift = 0.1
    assert database.maybe_auto_analyze(["kv", "missing"]) == ["kv"]
    assert database.statistics.get(
        "kv", database.schema_epoch
    ).row_count == 100
