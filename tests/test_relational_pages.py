"""Tests for paged storage and the LRU buffer pool."""

import pytest

from repro.relational import Database
from repro.relational.pages import PAGE_CAPACITY, BufferPool


def build_table(database, rows):
    database.execute("CREATE TABLE t (x INTEGER)")
    table = database.table("t")
    for i in range(rows):
        table.insert((i,))
    return table


class TestBufferPool:
    def test_unbounded_pool_never_evicts(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 5)
        assert database.buffer_pool.evictions == 0

    def test_bounded_pool_evicts(self):
        database = Database(buffer_pool_pages=2)
        build_table(database, PAGE_CAPACITY * 5)
        assert database.buffer_pool.evictions > 0
        assert len(database.buffer_pool) <= 2

    def test_data_survives_eviction(self):
        database = Database(buffer_pool_pages=1)
        rows = PAGE_CAPACITY * 3 + 17
        build_table(database, rows)
        result = database.execute("SELECT COUNT(*), SUM(x) FROM t")
        assert result.rows == [(rows, rows * (rows - 1) // 2)]

    def test_hit_miss_accounting(self):
        database = Database(buffer_pool_pages=1)
        build_table(database, PAGE_CAPACITY * 3)
        database.buffer_pool.reset_counters()
        database.execute("SELECT COUNT(*) FROM t")
        # with a one-page pool every page fetch of the scan is a miss
        assert database.buffer_pool.misses >= 3

    def test_warm_scan_hits(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 2)
        database.execute("SELECT COUNT(*) FROM t")
        database.buffer_pool.reset_counters()
        database.execute("SELECT COUNT(*) FROM t")
        assert database.buffer_pool.misses == 0
        assert database.buffer_pool.hits >= 2

    def test_resize_shrinks(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 6)
        assert len(database.buffer_pool) == 6
        database.buffer_pool.resize(2)
        assert len(database.buffer_pool) <= 2
        result = database.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == PAGE_CAPACITY * 6

    def test_clear_writes_back(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY + 1)
        database.buffer_pool.clear()
        assert len(database.buffer_pool) == 0
        assert table.storage_bytes() > 0
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == (
            PAGE_CAPACITY + 1
        )

    def test_updates_survive_eviction_cycles(self):
        database = Database(buffer_pool_pages=1)
        table = build_table(database, PAGE_CAPACITY * 2)
        database.execute("UPDATE t SET x = 999 WHERE x = 0")
        database.buffer_pool.clear()
        result = database.execute("SELECT COUNT(*) FROM t WHERE x = 999")
        assert result.scalar() == 1
        assert table.live_rows == PAGE_CAPACITY * 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_drop_table_discards_pages(self):
        database = Database()
        build_table(database, PAGE_CAPACITY)
        database.execute("DROP TABLE t")
        assert len(database.buffer_pool) == 0
