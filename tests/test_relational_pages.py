"""Tests for paged storage and the LRU buffer pool."""

import pytest

from repro.relational import Database
from repro.relational.pages import PAGE_CAPACITY, BufferPool


def build_table(database, rows):
    database.execute("CREATE TABLE t (x INTEGER)")
    table = database.table("t")
    for i in range(rows):
        table.insert((i,))
    return table


class TestBufferPool:
    def test_unbounded_pool_never_evicts(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 5)
        assert database.buffer_pool.evictions == 0

    def test_bounded_pool_evicts(self):
        database = Database(buffer_pool_pages=2)
        build_table(database, PAGE_CAPACITY * 5)
        assert database.buffer_pool.evictions > 0
        assert len(database.buffer_pool) <= 2

    def test_data_survives_eviction(self):
        database = Database(buffer_pool_pages=1)
        rows = PAGE_CAPACITY * 3 + 17
        build_table(database, rows)
        result = database.execute("SELECT COUNT(*), SUM(x) FROM t")
        assert result.rows == [(rows, rows * (rows - 1) // 2)]

    def test_hit_miss_accounting(self):
        database = Database(buffer_pool_pages=1)
        build_table(database, PAGE_CAPACITY * 3)
        database.buffer_pool.reset_counters()
        database.execute("SELECT COUNT(*) FROM t")
        # with a one-page pool every page fetch of the scan is a miss
        assert database.buffer_pool.misses >= 3

    def test_warm_scan_hits(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 2)
        database.execute("SELECT COUNT(*) FROM t")
        database.buffer_pool.reset_counters()
        database.execute("SELECT COUNT(*) FROM t")
        assert database.buffer_pool.misses == 0
        assert database.buffer_pool.hits >= 2

    def test_resize_shrinks(self):
        database = Database()
        build_table(database, PAGE_CAPACITY * 6)
        assert len(database.buffer_pool) == 6
        database.buffer_pool.resize(2)
        assert len(database.buffer_pool) <= 2
        result = database.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == PAGE_CAPACITY * 6

    def test_clear_writes_back(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY + 1)
        database.buffer_pool.clear()
        assert len(database.buffer_pool) == 0
        assert table.storage_bytes() > 0
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == (
            PAGE_CAPACITY + 1
        )

    def test_updates_survive_eviction_cycles(self):
        database = Database(buffer_pool_pages=1)
        table = build_table(database, PAGE_CAPACITY * 2)
        database.execute("UPDATE t SET x = 999 WHERE x = 0")
        database.buffer_pool.clear()
        result = database.execute("SELECT COUNT(*) FROM t WHERE x = 999")
        assert result.scalar() == 1
        assert table.live_rows == PAGE_CAPACITY * 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_drop_table_discards_pages(self):
        database = Database()
        build_table(database, PAGE_CAPACITY)
        database.execute("DROP TABLE t")
        assert len(database.buffer_pool) == 0


class TestFlushAndDrop:
    """Write-back paths used by checkpoints (flush) and DDL (drop)."""

    def test_flush_table_writes_dirty_pages_and_evicts(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY * 2 + 5)
        pool = database.buffer_pool
        assert table.storage_bytes() == 0  # all pages resident-only, dirty
        resident = len(pool)
        assert resident == 3
        pool.flush_table(table)
        assert len(pool) == 0
        assert table.storage_bytes() > 0
        # no page was lost on the way out
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == (
            PAGE_CAPACITY * 2 + 5
        )

    def test_flush_table_skips_clean_pages(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY)
        pool = database.buffer_pool
        pool.flush_table(table)
        first_bytes = table.storage_bytes()
        # re-read the page (clean fetch), then flush again: the stored blob
        # must not be rewritten — same object, same size
        blob_before = table.page_blob(0)
        database.execute("SELECT COUNT(*) FROM t")
        pool.flush_table(table)
        assert table.page_blob(0) is blob_before
        assert table.storage_bytes() == first_bytes

    def test_flush_all_keeps_pages_resident(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY + 3)
        pool = database.buffer_pool
        resident = len(pool)
        pool.flush_all()
        assert len(pool) == resident  # still cached ...
        assert table.storage_bytes() > 0  # ... but durably written back
        pool.reset_counters()
        database.execute("SELECT COUNT(*) FROM t")
        assert pool.misses == 0  # the scan was served from the pool

    def test_flush_all_clears_dirty_flags(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY)
        pool = database.buffer_pool
        pool.flush_all()
        size = table.storage_bytes()
        # mutate, flush again: write-back happens exactly for the re-dirtied
        database.execute("UPDATE t SET x = -1 WHERE x = 0")
        pool.flush_all()
        assert table.storage_bytes() >= size
        database.buffer_pool.clear()
        assert database.execute(
            "SELECT COUNT(*) FROM t WHERE x = -1"
        ).scalar() == 1

    def test_drop_table_discards_dirty_pages_without_write_back(self):
        database = Database()
        table = build_table(database, PAGE_CAPACITY * 2)
        pool = database.buffer_pool
        assert table.storage_bytes() == 0
        pool.drop_table(table.name)
        assert len(pool) == 0
        # dirty pages were thrown away, not serialized
        assert table.storage_bytes() == 0

    def test_eviction_counter_tracks_pressure_not_flushes(self):
        database = Database(buffer_pool_pages=2)
        table = build_table(database, PAGE_CAPACITY * 4)
        pool = database.buffer_pool
        evictions_after_build = pool.evictions
        assert evictions_after_build > 0  # capacity pressure evicted
        pool.flush_table(table)
        pool.flush_all()
        # flush paths write back but never count as evictions
        assert pool.evictions == evictions_after_build

    def test_flush_table_only_touches_that_table(self):
        database = Database()
        build_table(database, PAGE_CAPACITY)
        database.execute("CREATE TABLE other (y INTEGER)")
        other = database.table("other")
        for i in range(5):
            other.insert((i,))
        pool = database.buffer_pool
        pool.flush_table(database.table("t"))
        assert len(pool) == 1  # other's page is still resident
        assert other.storage_bytes() == 0
