"""Tests for heap tables: CRUD, tombstones, index maintenance."""

import pytest

from repro.relational.errors import CatalogError
from repro.relational.index import HashIndex, column_key_function
from repro.relational.pages import BufferPool
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import HeapTable


def make_table():
    schema = TableSchema(
        "t", [Column("a", ColumnType.INTEGER), Column("b", ColumnType.STRING)]
    )
    return HeapTable(schema, BufferPool())


class TestHeapTable:
    def test_insert_returns_rid_and_get(self):
        table = make_table()
        rid = table.insert((1, "x"))
        assert table.get(rid) == (1, "x")
        assert table.live_rows == 1

    def test_insert_coerces(self):
        table = make_table()
        rid = table.insert(("5", 7))
        assert table.get(rid) == (5, "7")

    def test_delete_tombstones(self):
        table = make_table()
        rid = table.insert((1, "x"))
        old = table.delete(rid)
        assert old == (1, "x")
        assert table.get(rid) is None
        assert table.live_rows == 0

    def test_double_delete_is_noop(self):
        table = make_table()
        rid = table.insert((1, "x"))
        table.delete(rid)
        assert table.delete(rid) is None
        assert table.live_rows == 0

    def test_update(self):
        table = make_table()
        rid = table.insert((1, "x"))
        old = table.update(rid, (2, "y"))
        assert old == (1, "x")
        assert table.get(rid) == (2, "y")

    def test_update_deleted_row_is_noop(self):
        table = make_table()
        rid = table.insert((1, "x"))
        table.delete(rid)
        assert table.update(rid, (2, "y")) is None

    def test_restore_undoes_delete(self):
        table = make_table()
        rid = table.insert((1, "x"))
        table.delete(rid)
        table.restore(rid, (1, "x"))
        assert table.get(rid) == (1, "x")
        assert table.live_rows == 1

    def test_scan_skips_tombstones(self):
        table = make_table()
        rids = [table.insert((i, str(i))) for i in range(5)]
        table.delete(rids[2])
        values = [row[0] for row in table.scan_rows()]
        assert values == [0, 1, 3, 4]

    def test_scan_yields_rids(self):
        table = make_table()
        rid = table.insert((1, "x"))
        assert list(table.scan()) == [(rid, (1, "x"))]


class TestIndexMaintenance:
    def attach(self, table):
        index = HashIndex("ix_a", "t", column_key_function(0), "col(a)")
        table.attach_index(index)
        return index

    def test_populate_existing_rows(self):
        table = make_table()
        rid = table.insert((7, "x"))
        index = self.attach(table)
        assert list(index.lookup(7)) == [rid]

    def test_insert_maintains(self):
        table = make_table()
        index = self.attach(table)
        rid = table.insert((7, "x"))
        assert list(index.lookup(7)) == [rid]

    def test_delete_maintains(self):
        table = make_table()
        index = self.attach(table)
        rid = table.insert((7, "x"))
        table.delete(rid)
        assert index.lookup(7) == ()

    def test_update_maintains(self):
        table = make_table()
        index = self.attach(table)
        rid = table.insert((7, "x"))
        table.update(rid, (9, "x"))
        assert index.lookup(7) == ()
        assert list(index.lookup(9)) == [rid]

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        self.attach(table)
        with pytest.raises(CatalogError):
            self.attach(table)

    def test_find_index_by_fingerprint(self):
        table = make_table()
        index = self.attach(table)
        assert table.find_index("col(a)") is index
        assert table.find_index("col(b)") is None

    def test_failed_unique_insert_rolls_back_other_indexes(self):
        table = make_table()
        plain = HashIndex("ix_b", "t", column_key_function(1), "col(b)")
        unique = HashIndex(
            "ix_a", "t", column_key_function(0), "col(a)", unique=True
        )
        table.attach_index(plain)
        table.attach_index(unique)
        table.insert((1, "x"))
        with pytest.raises(Exception):
            table.insert((1, "y"))
        # the non-unique index must not keep a phantom entry for "y"
        assert plain.lookup("y") == ()
        assert table.live_rows == 1
