"""Tests for common table expressions, including WITH RECURSIVE."""

import pytest

from repro.relational import Database
from repro.relational.errors import BindError


class TestCte:
    def test_basic_cte(self, people_db):
        result = people_db.execute(
            "WITH adults AS (SELECT id, name FROM people WHERE age >= 28) "
            "SELECT COUNT(*) FROM adults"
        )
        assert result.scalar() == 4

    def test_cte_chain(self, people_db):
        result = people_db.execute(
            "WITH a AS (SELECT id FROM people WHERE age > 25), "
            "b AS (SELECT id FROM a WHERE id < 4) "
            "SELECT COUNT(*) FROM b"
        )
        assert result.scalar() == 3

    def test_cte_used_twice(self, people_db):
        result = people_db.execute(
            "WITH a AS (SELECT id FROM people) "
            "SELECT COUNT(*) FROM a x, a y WHERE x.id = y.id"
        )
        assert result.scalar() == 5

    def test_cte_column_rename(self, people_db):
        result = people_db.execute(
            "WITH a(v) AS (SELECT id FROM people) SELECT MAX(v) FROM a"
        )
        assert result.scalar() == 5

    def test_cte_column_arity_mismatch(self, people_db):
        with pytest.raises(BindError):
            people_db.execute(
                "WITH a(v, w) AS (SELECT id FROM people) SELECT * FROM a"
            )

    def test_cte_shadows_base_table(self, people_db):
        result = people_db.execute(
            "WITH people AS (SELECT 1 AS id) SELECT COUNT(*) FROM people"
        )
        assert result.scalar() == 1

    def test_cte_joined_to_base(self, people_db):
        result = people_db.execute(
            "WITH rich AS (SELECT pid FROM orders WHERE amount > 100) "
            "SELECT p.name FROM people p, rich r WHERE p.id = r.pid"
        )
        assert result.rows == [("bob",)]

    def test_cte_with_set_op_body(self, people_db):
        result = people_db.execute(
            "WITH a AS (SELECT id FROM people WHERE id = 1 "
            "UNION ALL SELECT id FROM people WHERE id = 2) "
            "SELECT COUNT(*) FROM a"
        )
        assert result.scalar() == 2

    def test_cte_with_order_limit(self, people_db):
        result = people_db.execute(
            "WITH top2 AS (SELECT id FROM people ORDER BY age DESC LIMIT 2) "
            "SELECT * FROM top2"
        )
        assert sorted(result.rows) == [(1,), (3,)]


class TestRecursiveCte:
    def test_counting(self, db):
        result = db.execute(
            "WITH RECURSIVE r(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 10) "
            "SELECT COUNT(*), SUM(n) FROM r"
        )
        assert result.rows == [(10, 55)]

    def test_transitive_closure(self, db):
        db.execute("CREATE TABLE edge (src INTEGER, dst INTEGER)")
        for src, dst in [(1, 2), (2, 3), (3, 4), (2, 5)]:
            db.execute("INSERT INTO edge VALUES (?, ?)", [src, dst])
        result = db.execute(
            "WITH RECURSIVE reach(v) AS ("
            "SELECT 1 UNION ALL "
            "SELECT e.dst FROM reach r, edge e WHERE r.v = e.src) "
            "SELECT COUNT(*) FROM reach"
        )
        assert result.scalar() == 5

    def test_cycle_terminates_via_set_semantics(self, db):
        db.execute("CREATE TABLE edge (src INTEGER, dst INTEGER)")
        for src, dst in [(1, 2), (2, 3), (3, 1)]:
            db.execute("INSERT INTO edge VALUES (?, ?)", [src, dst])
        result = db.execute(
            "WITH RECURSIVE reach(v) AS ("
            "SELECT 1 UNION ALL "
            "SELECT e.dst FROM reach r, edge e WHERE r.v = e.src) "
            "SELECT COUNT(*) FROM reach"
        )
        assert result.scalar() == 3

    def test_depth_bounded_paths(self, db):
        db.execute("CREATE TABLE edge (src INTEGER, dst INTEGER)")
        for src, dst in [(1, 2), (2, 3), (3, 4), (4, 5)]:
            db.execute("INSERT INTO edge VALUES (?, ?)", [src, dst])
        result = db.execute(
            "WITH RECURSIVE hop(v, d) AS ("
            "SELECT 1, 0 UNION ALL "
            "SELECT e.dst, h.d + 1 FROM hop h, edge e "
            "WHERE h.v = e.src AND h.d < 2) "
            "SELECT MAX(d) FROM hop"
        )
        assert result.scalar() == 2

    def test_missing_base_term_rejected(self, db):
        db.execute("CREATE TABLE edge (src INTEGER, dst INTEGER)")
        with pytest.raises(BindError):
            db.execute(
                "WITH RECURSIVE r(n) AS (SELECT n + 1 FROM r) SELECT * FROM r"
            )

    def test_non_recursive_with_recursive_keyword(self, db):
        result = db.execute("WITH RECURSIVE a(x) AS (SELECT 7) SELECT x FROM a")
        assert result.rows == [(7,)]
