"""Sharded serving vs the single-store oracle.

The contract under test: a hash-partitioned cluster behind the
scatter-gather router returns *exactly* the results of one embedded
:class:`SQLGraphStore` holding the whole graph — over the golden Gremlin
corpus, the differential query templates, random multi-hop pipelines on
random graphs, and interleaved CRUD.  Clusters are in-process
(:class:`SQLGraphServer` worker per shard, real TCP loopback) so the
full wire path runs without subprocess cost.
"""

import contextlib

import pytest

from repro.analysis.corpus import golden_corpus
from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.datasets.tinker import paper_figure_graph, tinkerpop_classic
from repro.gremlin import parse_gremlin
from repro.server import SQLGraphServer
from repro.sharding import ShardedStore, partition_graph, shard_of
from repro.sharding.partition import owner_groups
from repro.sharding.router import single_shard_index
from tests.test_differential import QUERY_TEMPLATES


@contextlib.contextmanager
def cluster(graph, num_shards):
    """An in-process cluster: one server per hash-partition."""
    servers = []
    addresses = []
    try:
        for subgraph in partition_graph(graph, num_shards):
            store = SQLGraphStore()
            store.load_graph(subgraph)
            server = SQLGraphServer(store, port=0, max_workers=4).start()
            servers.append(server)
            addresses.append((server.host, server.port))
        sharded = ShardedStore.connect(addresses)
        try:
            yield sharded
        finally:
            sharded.close()
    finally:
        for server in servers:
            server.shutdown(drain_timeout_s=1.0)


def normalize(values):
    """Results -> comparable multiset (both sides return plain values)."""
    return sorted(
        repr(list(value) if isinstance(value, (list, tuple)) else value)
        for value in values
    )


def assert_matches_oracle(oracle, sharded, query):
    want = normalize(oracle.run(query))
    got = normalize(sharded.run(query))
    assert got == want, f"{query}: sharded {got} != oracle {want}"


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------
class TestPartition:
    def test_shard_of_is_total_and_stable(self):
        for vid in range(0, 5000, 7):
            owners = [shard_of(vid, n) for n in (1, 2, 3, 8)]
            assert owners[0] == 0
            for n, owner in zip((1, 2, 3, 8), owners):
                assert 0 <= owner < n
                # same vid, same modulus -> same owner, every time
                assert shard_of(vid, n) == owner

    def test_shard_of_spreads_consecutive_ids(self):
        # the multiplicative hash must not map consecutive vids to one
        # shard (plain vid % n would, for strided id ranges)
        owners = {shard_of(vid, 4) for vid in range(1, 9)}
        assert len(owners) > 1

    def test_owner_groups_dedups_and_keeps_first_seen_order(self):
        vids = [10, 3, 10, 7, 3, 21]
        groups = owner_groups(vids, 2)
        flattened = [vid for batch in groups.values() for vid in batch]
        assert sorted(flattened) == sorted(set(vids))
        for index, batch in groups.items():
            assert all(shard_of(vid, 2) == index for vid in batch)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_partition_covers_graph_exactly_once(self, num_shards):
        graph = tinkerpop_classic()
        shards = partition_graph(graph, num_shards)
        assert len(shards) == num_shards

        seen_vids = []
        seen_eids = []
        for index, shard in enumerate(shards):
            for vertex in shard.vertices():
                assert shard_of(vertex.id, num_shards) == index
                seen_vids.append(vertex.id)
            for edge in shard.edges():
                # edges live with the shard owning their source vertex
                assert shard_of(edge.out_vertex.id, num_shards) == index
                seen_eids.append(edge.id)
        assert sorted(seen_vids) == sorted(v.id for v in graph.vertices())
        assert sorted(seen_eids) == sorted(e.id for e in graph.edges())

    def test_partition_preserves_properties_and_endpoints(self):
        graph = paper_figure_graph()
        shards = partition_graph(graph, 3)
        originals = {v.id: v for v in graph.vertices()}
        for shard in shards:
            for vertex in shard.vertices():
                original = originals[vertex.id]
                for key in original.property_keys():
                    assert vertex.get_property(key) == \
                        original.get_property(key)
            for edge in shard.edges():
                # the in-vertex may be a ghost, but its id must be right
                original_edge = next(
                    e for e in graph.edges() if e.id == edge.id
                )
                assert edge.in_vertex.id == original_edge.in_vertex.id
                assert edge.label == original_edge.label


# ---------------------------------------------------------------------------
# routing decisions
# ---------------------------------------------------------------------------
class TestRouting:
    @pytest.mark.parametrize("query,forwardable", [
        ("g.v(1).name", True),
        ("g.v(1).has('age', T.gt, 10).age", True),
        ("g.v(1).id", True),
        ("g.v(1).out.name", False),       # adjacency leaves the shard
        ("g.v(1).outE.label", False),
        ("g.V.name", False),              # whole-graph scan
        ("g.v(1).out.loop(1){it.loops < 2}", False),
    ])
    def test_single_shard_detection(self, query, forwardable):
        index = single_shard_index(parse_gremlin(query), 4)
        assert (index is not None) == forwardable

    def test_multi_seed_same_owner_forwards(self):
        vids = [vid for vid in range(1, 100)
                if shard_of(vid, 2) == shard_of(1, 2)][:3]
        text = f"g.v({', '.join(map(str, vids))}).name"
        assert single_shard_index(parse_gremlin(text), 2) == shard_of(1, 2)

    def test_split_seeds_do_not_forward(self):
        other = next(vid for vid in range(2, 100)
                     if shard_of(vid, 2) != shard_of(1, 2))
        assert single_shard_index(
            parse_gremlin(f"g.v(1, {other}).name"), 2
        ) is None

    def test_query_stats_report_routing(self):
        with cluster(paper_figure_graph(), 2) as sharded:
            sharded.run("g.v(1).name")
            stats = sharded.last_query_stats.as_dict()["sharding"]
            assert stats["mode"] == "forward"
            assert stats["target_shard"] == shard_of(1, 2)

            # seeded multi-hop: each step resolves a fresh frontier
            sharded.run("g.v(1).out.out.name")
            stats = sharded.last_query_stats.as_dict()["sharding"]
            assert stats["mode"] == "scatter"
            assert stats["shards"] == 2
            assert stats["target_shard"] is None
            assert stats["hops"] == 2
            assert stats["requests"] >= stats["hops"]


# ---------------------------------------------------------------------------
# differential: sharded == oracle
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_golden_corpus_on_paper_graph(self, num_shards):
        graph = paper_figure_graph()
        oracle = SQLGraphStore()
        oracle.load_graph(paper_figure_graph())
        with cluster(graph, num_shards) as sharded:
            for name, query in sorted(golden_corpus().items()):
                assert_matches_oracle(oracle, sharded, query)

    def test_query_templates_on_classic_graph(self):
        graph = tinkerpop_classic()
        oracle = SQLGraphStore()
        oracle.load_graph(tinkerpop_classic())
        with cluster(graph, 2) as sharded:
            for query in QUERY_TEMPLATES:
                assert_matches_oracle(oracle, sharded, query)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_random_multihop_pipelines(self, seed):
        graph = random_property_graph(
            seed=seed, n_vertices=24, n_edges=60
        )
        oracle = SQLGraphStore()
        oracle.load_graph(
            random_property_graph(seed=seed, n_vertices=24, n_edges=60)
        )
        vids = sorted(v.id for v in graph.vertices())
        anchor = vids[seed % len(vids)]
        queries = QUERY_TEMPLATES + [
            f"g.v({anchor}).out.out.count()",
            f"g.v({anchor}).both.both.dedup().name",
            f"g.v({anchor}).outE.inV.in.count()",
            f"g.v({anchor}).out.in.out.dedup().count()",
        ]
        with cluster(graph, 3) as sharded:
            for query in queries:
                assert_matches_oracle(oracle, sharded, query)


# ---------------------------------------------------------------------------
# CRUD routed through the cluster
# ---------------------------------------------------------------------------
class TestShardedCrud:
    def test_crud_replay_matches_oracle(self):
        oracle = SQLGraphStore()
        oracle.load_graph(paper_figure_graph())
        with cluster(paper_figure_graph(), 2) as sharded:
            for store in (oracle, sharded):
                v7 = store.add_vertex(properties={"name": "grace",
                                                  "age": 51})
                assert v7 == 5
                store.add_edge(1, v7, "knows", properties={"weight": 0.9})
                store.add_edge(v7, 2, "likes")
                store.set_vertex_property(v7, "age", 52)
                store.set_vertex_property(1, "tag", "x")

            checks = [
                "g.V.count()", "g.E.count()", "g.V.name",
                "g.v(1).out('knows').name", "g.v(5).out.name",
                "g.v(5).in.name", "g.V.has('age', T.gt, 50).name",
                "g.E.label",
            ]
            for query in checks:
                assert_matches_oracle(oracle, sharded, query)

            # removal: the vertex owner differs from some in-edge owners
            for store in (oracle, sharded):
                assert store.remove_edge(12) is True  # 1-[knows]->5 above
                assert store.remove_vertex(5) is True
                assert store.remove_vertex(5) is False
            for query in checks:
                assert_matches_oracle(oracle, sharded, query)

    def test_remove_vertex_cleans_cross_shard_in_edges(self):
        graph = paper_figure_graph()
        with cluster(graph, 2) as sharded:
            # vertex 3 has in-edges from 1 and 4, which hash to both
            # shards — so at least one in-edge lives off the owner
            assert sharded.remove_vertex(3) is True
            assert sharded.get_vertex(3) is None
            remaining = {
                (edge.outv, edge.inv) for edge in sharded.edges()
            }
            assert all(3 not in pair for pair in remaining)

    def test_vertex_and_edge_getters(self):
        with cluster(paper_figure_graph(), 3) as sharded:
            vertex = sharded.get_vertex(1)
            assert vertex.get_property("name") == "marko"
            assert sharded.get_vertex(999) is None
            edge = sharded.get_edge(7)
            assert (edge.outv, edge.label, edge.inv) == (1, "knows", 2)
            assert sharded.get_edge(999) is None

    def test_explicit_ids_route_to_owner(self):
        with cluster(paper_figure_graph(), 2) as sharded:
            vid = sharded.add_vertex(vertex_id=40,
                                     properties={"name": "z"})
            assert vid == 40
            # the next auto id continues past the explicit one
            assert sharded.add_vertex(properties={"name": "y"}) == 41
            assert sharded.get_vertex(40).get_property("name") == "z"

    def test_counts_and_iteration(self):
        graph = tinkerpop_classic()
        expected_v = len(list(graph.vertices()))
        expected_e = len(list(graph.edges()))
        with cluster(tinkerpop_classic(), 3) as sharded:
            assert sharded.vertex_count() == expected_v
            assert sharded.edge_count() == expected_e
            assert len(list(sharded.vertices())) == expected_v
            assert len(list(sharded.edges())) == expected_e


# ---------------------------------------------------------------------------
# degenerate cluster shapes
# ---------------------------------------------------------------------------
class TestClusterShapes:
    def test_single_shard_cluster_is_transparent(self):
        oracle = SQLGraphStore()
        oracle.load_graph(paper_figure_graph())
        with cluster(paper_figure_graph(), 1) as sharded:
            for query in ("g.V.name", "g.v(1).out.name", "g.V.count()"):
                assert_matches_oracle(oracle, sharded, query)

    def test_more_shards_than_vertices(self):
        graph = paper_figure_graph()
        total = len(list(graph.vertices()))
        with cluster(paper_figure_graph(), total + 3) as sharded:
            assert sharded.vertex_count() == total
            oracle = SQLGraphStore()
            oracle.load_graph(paper_figure_graph())
            assert_matches_oracle(oracle, sharded, "g.V.both.count()")
            assert_matches_oracle(oracle, sharded, "g.V.out.name")

    def test_empty_frontier_short_circuits(self):
        with cluster(paper_figure_graph(), 2) as sharded:
            assert sharded.run("g.v(999).out.name") == []

    def test_health_reports_every_shard(self):
        with cluster(paper_figure_graph(), 3) as sharded:
            report = sharded.shard_health()
            assert [entry["shard"] for entry in report] == [0, 1, 2]
            assert all(entry["ok"] for entry in report)
