"""Behavior of the analytics drivers and their serving/CLI surface.

The differential correctness suite lives in
``tests/test_analytics_property.py``; here we pin the *contract* around
the algorithms: live-data semantics under lazy deletes, per-run
observability, cooperative timeout/cancel, scratch-table hygiene, the
``analytics`` server op (wire codes, statement-timeout integration) and
the ``:pagerank``-family shell commands.
"""

import json

import pytest

from repro.cli import build_store, execute_line
from repro.client import SQLGraphClient
from repro.core import SQLGraphStore
from repro.datasets.random_graphs import (
    analytics_case_graph,
    random_property_graph,
)
from repro.datasets.tinker import paper_figure_graph
from repro.graph.analytics import (
    AnalyticsCancelledError,
    AnalyticsError,
    AnalyticsTimeoutError,
    GraphAnalytics,
)
from repro.server import SQLGraphServer
from repro.server.protocol import WireError
from tests.analytics_oracle import oracle_components, oracle_pagerank


def _loaded_store(graph):
    store = SQLGraphStore()
    store.load_graph(graph)
    return store


def _scratch_tables(store):
    return [
        name for name in store.database.catalog.table_names()
        if name.startswith("scratch_")
    ]


# ----------------------------------------------------------------------
# live-data semantics
# ----------------------------------------------------------------------
def test_analytics_exclude_lazy_deleted_vertices_and_dangling_edges():
    graph = paper_figure_graph()
    store = _loaded_store(graph)
    store.remove_vertex(3)  # lazy delete: vid negated, edges dangle
    mutated = graph.copy()
    mutated.remove_vertex(3)
    assert store.connected_components() == oracle_components(mutated)
    ranks = store.pagerank(tolerance=0.0, max_iterations=8)
    expected = oracle_pagerank(mutated, tolerance=0.0, max_iterations=8)
    assert set(ranks) == set(expected) and 3 not in ranks
    for vid, value in expected.items():
        assert ranks[vid] == pytest.approx(value, abs=1e-9)


def test_analytics_exclude_lazy_deleted_edges():
    graph = paper_figure_graph()
    store = _loaded_store(graph)
    victim = next(edge.id for edge in graph.edges())
    store.remove_edge(victim)
    mutated = graph.copy()
    mutated.remove_edge(victim)
    assert store.connected_components() == oracle_components(mutated)


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_run_stats_record_iterations_and_options():
    store = _loaded_store(random_property_graph(seed=5, n_vertices=15))
    store.pagerank(damping=0.9, tolerance=0.0, max_iterations=4)
    stats = store.last_analytics_stats
    assert stats.algorithm == "pagerank"
    assert stats.options["damping"] == 0.9
    assert stats.iteration_count == 4 and not stats.converged
    assert stats.result_rows == 15
    assert stats.statements_executed > stats.iteration_count
    for i, entry in enumerate(stats.iterations, start=1):
        assert entry["iteration"] == i
        assert entry["rows"] == 15
        assert entry["delta"] >= 0.0
        assert entry["elapsed_s"] >= 0.0
    json.dumps(stats.as_dict())  # the server op ships this verbatim
    assert "pagerank" in stats.describe()


def test_stats_are_per_algorithm_and_thread_local_property_updates():
    store = _loaded_store(paper_figure_graph())
    store.connected_components()
    assert store.last_analytics_stats.algorithm == "components"
    store.shortest_paths(1)
    stats = store.last_analytics_stats
    assert stats.algorithm == "sssp"
    assert stats.options["source"] == 1
    assert stats.converged


# ----------------------------------------------------------------------
# cooperative timeout / cancel + scratch hygiene
# ----------------------------------------------------------------------
def test_time_budget_raises_and_cleans_up():
    store = _loaded_store(paper_figure_graph())
    with pytest.raises(AnalyticsTimeoutError):
        store.pagerank(time_budget_s=-1.0)
    assert _scratch_tables(store) == []
    # the interrupted run is still observable
    assert store.last_analytics_stats.algorithm == "pagerank"


def test_cancel_callback_raises_and_cleans_up():
    store = _loaded_store(paper_figure_graph())
    calls = []

    def cancel():
        calls.append(True)
        return len(calls) > 5  # let setup start, then pull the plug

    with pytest.raises(AnalyticsCancelledError):
        store.connected_components(cancel=cancel)
    assert _scratch_tables(store) == []


def test_invalid_requests_raise_analytics_error():
    store = _loaded_store(paper_figure_graph())
    with pytest.raises(AnalyticsError):
        store.shortest_paths(999)  # unknown source
    graph = analytics_case_graph(3)
    for edge in graph.edges():
        edge.set_property("weight", -1.0)
    negative = _loaded_store(graph)
    with pytest.raises(AnalyticsError):
        negative.shortest_paths(1, weight_key="weight")
    assert _scratch_tables(store) == [] and _scratch_tables(negative) == []


def test_runs_leave_no_scratch_tables_and_no_epoch_churn():
    store = _loaded_store(paper_figure_graph())
    store.analyze_tables()
    epoch = store.database.schema_epoch
    store.pagerank(max_iterations=3)
    store.label_propagation(max_iterations=3)
    assert _scratch_tables(store) == []
    # scratch DDL is epoch-neutral: plans and ANALYZE statistics survive
    assert store.database.schema_epoch == epoch
    assert store.database.statistics.get("va", epoch) is not None


def test_concurrent_runs_use_distinct_scratch_names():
    store = _loaded_store(paper_figure_graph())
    analytics = GraphAnalytics(store.database, store.schema.table_names)
    first = analytics.pagerank(max_iterations=2)
    second = analytics.pagerank(max_iterations=2)
    assert first == second
    # token monotonicity is what keeps parallel sessions collision-free
    assert _scratch_tables(store) == []


# ----------------------------------------------------------------------
# server op + client wrappers
# ----------------------------------------------------------------------
@pytest.fixture()
def server_client():
    store = _loaded_store(random_property_graph(seed=9, n_vertices=20))
    server = SQLGraphServer(store, port=0)
    server.start()
    client = SQLGraphClient(port=server.port, retries=0)
    client.connect()
    yield server, client, store
    client.close()
    server.shutdown()


def test_analytics_over_the_wire_matches_embedded(server_client):
    server, client, store = server_client
    embedded = store.pagerank(tolerance=0.0, max_iterations=6)
    remote = client.pagerank(tolerance=0.0, max_iterations=6)
    assert remote == embedded  # int keys restored from wire pairs
    assert client.last_analytics_stats["algorithm"] == "pagerank"
    assert client.last_analytics_stats["iteration_count"] == 6
    assert client.connected_components() == store.connected_components()
    assert client.label_propagation() == store.label_propagation()
    source = min(embedded)
    assert client.shortest_paths(source) == store.shortest_paths(source)


def test_analytics_wire_validation(server_client):
    __, client, __store = server_client
    with pytest.raises(WireError) as excinfo:
        client.analytics("betweenness")
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(WireError) as excinfo:
        client.analytics("pagerank", bogus=1)
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(WireError) as excinfo:
        client.analytics("sssp")  # missing source
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(WireError) as excinfo:
        client.shortest_paths(10**9)
    assert excinfo.value.code == "BAD_REQUEST"
    assert not excinfo.value.retryable


def test_analytics_statement_timeout_maps_to_wire_code(server_client):
    server, client, __store = server_client
    client.set_statement_timeout(0)
    with pytest.raises(WireError) as excinfo:
        client.pagerank()
    assert excinfo.value.code == "STATEMENT_TIMEOUT"
    assert excinfo.value.retryable
    assert server.stats()["statement_timeouts"] >= 1
    client.set_statement_timeout(None)
    assert len(client.pagerank(max_iterations=2)) == 20


# ----------------------------------------------------------------------
# shell commands
# ----------------------------------------------------------------------
def test_cli_analytics_commands():
    store = build_store("tinker")
    out = execute_line(store, ":pagerank")
    assert "v[" in out and "pagerank:" in out and "iterations" in out
    out = execute_line(store, ":components")
    assert "component" in out and "components:" in out
    out = execute_line(store, ":labelprop")
    assert "community" in out
    out = execute_line(store, ":sssp 1 weight")
    assert "v[1]  0" in out and "sssp:" in out
    assert "usage" in execute_line(store, ":sssp")
    assert "usage" in execute_line(store, ":sssp notanumber")
    assert "cannot run sssp" in execute_line(store, ":sssp 999")
    for command in (":pagerank", ":components", ":labelprop", ":sssp"):
        assert command in execute_line(store, ":help")
