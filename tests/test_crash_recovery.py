"""Crash-injection tests: recovery equals the committed prefix, always.

Built on :mod:`tests.crashkit`: a recorded random workload runs against a
durable database, then crashes are simulated by truncating (or
corrupting) a copy of the WAL at chosen byte offsets and reopening.  The
recovered state is compared against an in-memory oracle that executed
exactly the units whose commit point survived the cut.

The exhaustive every-record-boundary sweep is marked ``slow`` (deselect
with ``-m "not slow"``); a sampled sweep plus the targeted torn-tail,
corruption and checkpoint tests run in the default suite.
"""

import bisect
import shutil

import pytest

from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.gremlin import GremlinInterpreter, parse_gremlin
from repro.relational.database import Database
from repro.relational.recovery import wal_path
from tests.crashkit import (
    assert_states_equal,
    crash_copy,
    database_state,
    generate_workload,
    oracle_database,
    record_boundaries,
    run_workload,
)
from tests.test_differential import normalize_interpreter, normalize_sql

WORKLOAD_SEED = 2026
WORKLOAD_SIZE = 220


@pytest.fixture(scope="module")
def recorded_workload(tmp_path_factory):
    """Run the recorded workload once; yields everything the sweeps need.

    Returns ``(source_dir, units, boundaries, oracle_states)`` where
    *oracle_states* is the ascending list of ``(end_offset, state)``
    snapshots — the oracle's state only changes at unit commit points, so
    each snapshot serves every cut up to the next one.
    """
    source = tmp_path_factory.mktemp("crash") / "source"
    units = generate_workload(WORKLOAD_SEED, WORKLOAD_SIZE)
    database = Database(
        path=str(source), wal_fsync="off", wal_checkpoint_every=0
    )
    run_workload(database, units)
    database.wal.flush()
    boundaries = [0] + record_boundaries(wal_path(str(source)))

    oracle = Database()
    oracle_states = [(0, database_state(oracle))]
    for unit in units:
        if unit.kind == "abort":
            continue
        if unit.kind == "auto":
            for sql in unit.statements:
                oracle.execute(sql)
        else:
            with oracle.transaction():
                for sql in unit.statements:
                    oracle.execute(sql)
        oracle_states.append((unit.end_offset, database_state(oracle)))
    # the live database stays open (simulating a process that never shut
    # down cleanly); crashes always operate on copies
    yield str(source), units, boundaries, oracle_states
    database.close()


def expected_state(oracle_states, cut_offset):
    """Oracle snapshot for the latest commit point at or below the cut."""
    offsets = [offset for offset, __ in oracle_states]
    position = bisect.bisect_right(offsets, cut_offset) - 1
    return oracle_states[position][1]


def reopen(directory):
    return Database(
        path=directory, wal_fsync="off", wal_checkpoint_every=0
    )


def sweep(source, boundaries, oracle_states, tmp_path, label):
    for i, cut in enumerate(boundaries):
        target = tmp_path / f"{label}{i}"
        crash_copy(source, str(target), cut_offset=cut)
        recovered = reopen(str(target))
        try:
            assert_states_equal(
                database_state(recovered),
                expected_state(oracle_states, cut),
                context=f"cut at byte {cut}",
            )
        finally:
            recovered.close()
            shutil.rmtree(target)


@pytest.mark.slow
def test_crash_sweep_every_record_boundary(recorded_workload, tmp_path):
    """Exhaustive: every intact-record boundary of a 220-unit workload."""
    source, __units, boundaries, oracle_states = recorded_workload
    assert len(boundaries) > WORKLOAD_SIZE  # txns write several records
    sweep(source, boundaries, oracle_states, tmp_path, "full")


def test_crash_sweep_sampled(recorded_workload, tmp_path):
    """Fast subset: every 9th boundary plus both extremes."""
    source, __units, boundaries, oracle_states = recorded_workload
    sampled = boundaries[::9]
    for edge in (boundaries[0], boundaries[1], boundaries[-1]):
        if edge not in sampled:
            sampled.append(edge)
    sweep(source, sorted(sampled), oracle_states, tmp_path, "sampled")


def test_mid_record_cut_is_torn_tail(recorded_workload, tmp_path):
    """A cut inside a record behaves like the previous boundary and is
    counted as a dropped torn tail."""
    source, __units, boundaries, oracle_states = recorded_workload
    for n, delta in ((len(boundaries) // 2, 3), (len(boundaries) - 2, 5)):
        boundary = boundaries[n]
        cut = boundary + delta  # strictly inside the next record
        assert cut < boundaries[n + 1]
        target = tmp_path / f"torn{n}"
        crash_copy(source, str(target), cut_offset=cut)
        recovered = reopen(str(target))
        try:
            assert recovered.wal.torn_dropped == 1
            assert_states_equal(
                database_state(recovered),
                expected_state(oracle_states, boundary),
                context=f"mid-record cut at byte {cut}",
            )
        finally:
            recovered.close()
            shutil.rmtree(target)


def test_corrupt_final_record_detected_by_crc(recorded_workload, tmp_path):
    """A flipped byte in the last record's payload fails the CRC; the
    record is discarded, not applied half-broken."""
    source, __units, boundaries, oracle_states = recorded_workload
    previous, last = boundaries[-2], boundaries[-1]
    corrupt_at = previous + 8 + (last - previous - 8) // 2  # inside payload
    target = tmp_path / "corrupt"
    crash_copy(source, str(target), corrupt_at=corrupt_at)
    recovered = reopen(str(target))
    try:
        assert recovered.wal.torn_dropped == 1
        assert_states_equal(
            database_state(recovered),
            expected_state(oracle_states, previous),
            context="corrupt final record",
        )
    finally:
        recovered.close()
        shutil.rmtree(target)


def test_corrupt_frame_header_detected(recorded_workload, tmp_path):
    """Corrupting a length header makes the frame unreadable; everything
    from that record on is dropped."""
    source, __units, boundaries, oracle_states = recorded_workload
    previous = boundaries[-2]
    target = tmp_path / "corrupt_header"
    crash_copy(source, str(target), corrupt_at=previous + 1)
    recovered = reopen(str(target))
    try:
        assert recovered.wal.torn_dropped == 1
        assert_states_equal(
            database_state(recovered),
            expected_state(oracle_states, previous),
            context="corrupt frame header",
        )
    finally:
        recovered.close()
        shutil.rmtree(target)


def test_checkpoint_then_crash(tmp_path):
    """Work before a checkpoint survives through the snapshot even when
    the post-checkpoint log is cut to nothing."""
    source = tmp_path / "ckpt"
    database = Database(
        path=str(source), wal_fsync="off", wal_checkpoint_every=0
    )
    units = generate_workload(7, 60)
    half = len(units) // 2
    run_workload(database, units[:half])
    assert database.checkpoint() is True
    pre_checkpoint = database_state(database)
    run_workload(database, units[half:])
    full = database_state(database)
    database.wal.flush()

    # crash losing the whole post-checkpoint log
    target = tmp_path / "after_ckpt"
    crash_copy(str(source), str(target), cut_offset=0)
    recovered = reopen(str(target))
    assert_states_equal(
        database_state(recovered), pre_checkpoint, context="snapshot only"
    )
    recovered.close()

    # crash losing nothing
    target2 = tmp_path / "after_all"
    crash_copy(str(source), str(target2))
    recovered2 = reopen(str(target2))
    assert_states_equal(database_state(recovered2), full, context="full log")
    recovered2.close()
    database.close()


def test_checkpoint_skipped_while_transaction_active(tmp_path):
    database = Database(path=str(tmp_path / "db"), wal_fsync="off")
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
    with database.transaction():
        database.execute("INSERT INTO t VALUES (1)")
        assert database.checkpoint() is False
    assert database.checkpoint() is True
    database.close()


def test_recovery_counters_surface(recorded_workload, tmp_path):
    source, __units, boundaries, __oracle_states = recorded_workload
    target = tmp_path / "counters"
    crash_copy(source, str(target), cut_offset=boundaries[-1])
    recovered = reopen(str(target))
    try:
        stats = recovered.wal_stats()
        assert stats["replayed"] > 0
        assert stats["checkpoints"] >= 1  # checkpoint-on-open
        assert recovered.wal.replayed == stats["replayed"]
    finally:
        recovered.close()
        shutil.rmtree(target)


# ----------------------------------------------------------------------
# store-level persistence
# ----------------------------------------------------------------------
STORE_QUERIES = [
    "g.V.count()",
    "g.E.count()",
    "g.V.out.count()",
    "g.V.both.dedup().count()",
    "g.V.out.in.dedup().name",
    "g.E.label.dedup()",
    "g.V.hasNot('name').count()",
    "g.V.out.out.dedup().count()",
]


def test_store_persistence_round_trip(tmp_path):
    """Load a graph, mutate it in transactions, crash, reopen: the
    reopened store answers queries identically and differentially agrees
    with the reference interpreter over its exported graph."""
    path = str(tmp_path / "store")
    graph = random_property_graph(seed=41, n_vertices=18, n_edges=40)
    store = SQLGraphStore(path=path, wal_fsync="off")
    store.load_graph(graph)
    store.create_attribute_index("vertex", "name")

    with store.database.transaction():
        vid = store.add_vertex(properties={"name": "zed", "age": 99})
        store.add_edge(1, vid, "knows")
        store.set_vertex_property(2, "age", 28)
    with pytest.raises(RuntimeError):
        with store.database.transaction():
            store.add_vertex(properties={"name": "ghost"})
            raise RuntimeError("abort the ghost")
    store.remove_edge(next(iter(store.edges())).id)

    expected = {q: normalize_sql(store.run(q)) for q in STORE_QUERIES}
    counts = (store.vertex_count(), store.edge_count())
    store.database.wal.flush()  # crash: no close, no checkpoint

    reopened = SQLGraphStore(path=path, wal_fsync="off")
    assert (reopened.vertex_count(), reopened.edge_count()) == counts
    assert reopened.get_vertex(vid).properties["name"] == "zed"
    for query, want in expected.items():
        assert normalize_sql(reopened.run(query)) == want, query

    interpreter = GremlinInterpreter(reopened.export_graph())
    for query in STORE_QUERIES:
        got = normalize_sql(reopened.run(query))
        want = normalize_interpreter(interpreter.run(parse_gremlin(query)))
        assert got == want, query
    # the ghost vertex never committed
    assert all(
        v.properties.get("name") != "ghost" for v in reopened.vertices()
    )
    reopened.close()


def test_store_restores_counters_and_indexes(tmp_path):
    path = str(tmp_path / "store2")
    store = SQLGraphStore(path=path, wal_fsync="off")
    store.load_graph(random_property_graph(seed=12, n_vertices=8, n_edges=12))
    store.create_attribute_index("vertex", "name")
    store.create_attribute_index("edge", "weight", sorted_index=True)
    vid = store.add_vertex()
    store.database.wal.flush()

    reopened = SQLGraphStore(path=path, wal_fsync="off")
    assert reopened._attribute_indexes == [
        ("vertex", "name", False),
        ("edge", "weight", True),
    ]
    # fresh ids never collide with recovered ones
    assert reopened.add_vertex() > vid
    assert reopened.load_report is not None
    assert reopened.table_stats()["load"].vertex_count == 8
    reopened.close()


def test_cli_durable_path_round_trip(tmp_path):
    from repro.cli import build_store, execute_line

    path = str(tmp_path / "cli_db")
    store = build_store("tinker", path=path)
    first_count = store.vertex_count()
    out = execute_line(store, ":stats")
    assert "wal:" in out
    assert "checkpoint written" in execute_line(store, ":checkpoint")
    store.close()

    # second run must recover, not re-load
    reopened = build_store("tinker", path=path)
    assert reopened.vertex_count() == first_count
    assert "wal:" in execute_line(reopened, ":stats")
    reopened.close()


def test_cli_checkpoint_requires_durable_store():
    from repro.cli import build_store, execute_line

    store = build_store("tinker")
    assert "not a durable store" in execute_line(store, ":checkpoint")
