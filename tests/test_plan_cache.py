"""Compiled-query cache: LRU mechanics, prepared statements, Gremlin
templates, and schema-epoch invalidation."""

import pytest

from repro.core import SQLGraphStore
from repro.core.translator import (
    ParamLiteral,
    parameterize_query,
    sql_literal,
    strip_parameter_markers,
)
from repro.datasets.tinker import paper_figure_graph
from repro.gremlin.errors import GremlinError
from repro.gremlin.parser import parse_gremlin
from repro.relational import Database
from repro.relational.cache import LRUCache, resolve_capacity
from repro.relational.errors import BindError


@pytest.fixture
def store():
    # explicit sizes so these tests still exercise the caches when the
    # suite runs under REPRO_PLAN_CACHE=0 (the CI uncached job)
    instance = SQLGraphStore(plan_cache_size=64, translation_cache_size=64)
    instance.load_graph(paper_figure_graph())
    return instance


# ----------------------------------------------------------------------
# LRUCache mechanics
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_epoch_mismatch_counts_invalidation(self):
        cache = LRUCache(capacity=4)
        cache.put("k", 1, epoch=0)
        assert cache.get("k", epoch=1) is None
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 0

    def test_invalidate_all(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate_all() == 2
        assert cache.stats()["invalidations"] == 2
        assert len(cache) == 0

    def test_capacity_zero_disables(self):
        cache = LRUCache(capacity=0)
        assert not cache.enabled
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_unbounded_capacity(self):
        cache = LRUCache(capacity=None)
        for i in range(500):
            cache.put(i, i)
        assert len(cache) == 500

    def test_resolve_capacity_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
        monkeypatch.delenv("REPRO_PLAN_CACHE_SIZE", raising=False)
        assert resolve_capacity() == 256
        assert resolve_capacity(17) == 17
        assert resolve_capacity(0) == 0
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "31")
        assert resolve_capacity() == 31
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        assert resolve_capacity() == 0


# ----------------------------------------------------------------------
# prepared-statement (SQL) cache
# ----------------------------------------------------------------------
class TestStatementCache:
    def _db(self):
        db = Database(plan_cache_size=32)  # force-on under REPRO_PLAN_CACHE=0
        db.execute("CREATE TABLE t (a INTEGER, b STRING)")
        for a, b in [(1, "x"), (2, "y"), (3, "z")]:
            db.execute("INSERT INTO t VALUES (?, ?)", [a, b])
        return db

    def test_warm_hit_rebinds_parameters(self):
        db = self._db()
        sql = "SELECT b FROM t WHERE a = ?"
        assert db.execute(sql, [1]).rows == [("x",)]
        assert not db.last_statement_cache_hit
        assert db.execute(sql, [2]).rows == [("y",)]
        assert db.last_statement_cache_hit
        assert db.execute(sql, [3]).rows == [("z",)]
        assert db.plan_cache.stats()["hits"] >= 2

    def test_whitespace_normalized_key(self):
        db = self._db()
        db.execute("SELECT a FROM t")
        assert not db.last_statement_cache_hit
        db.execute("  SELECT a FROM t  ")
        assert db.last_statement_cache_hit

    def test_missing_parameter_message(self):
        db = self._db()
        with pytest.raises(BindError, match="requires parameter 1, got 0"):
            db.execute("SELECT b FROM t WHERE a = ?")
        with pytest.raises(BindError, match="requires parameter 2, got 1"):
            db.execute("SELECT b FROM t WHERE a = ? AND b = ?", [1])

    def test_aggregate_statement_reusable(self):
        # regression: the aggregate rewrite must not mutate the cached AST
        db = self._db()
        sql = "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b HAVING SUM(a) > 0"
        first = sorted(db.execute(sql).rows)
        second = sorted(db.execute(sql).rows)
        assert db.last_statement_cache_hit
        assert first == second == [("x", 1, 1), ("y", 1, 2), ("z", 1, 3)]

    def test_recursive_cte_reusable(self):
        db = self._db()
        sql = ("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
               "SELECT n + 1 FROM r WHERE n < ?) SELECT SUM(n) FROM r")
        assert db.execute(sql, [4]).scalar() == 10
        assert db.execute(sql, [5]).scalar() == 15
        assert db.last_statement_cache_hit

    def test_dml_with_parameters_repeats(self):
        db = self._db()
        db.execute("UPDATE t SET b = ? WHERE a = ?", ["u1", 1])
        db.execute("UPDATE t SET b = ? WHERE a = ?", ["u2", 2])
        assert db.last_statement_cache_hit
        assert sorted(db.execute("SELECT b FROM t").column()) == [
            "u1", "u2", "z"
        ]
        db.execute("DELETE FROM t WHERE a = ?", [1])
        db.execute("DELETE FROM t WHERE a = ?", [2])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_parameterized_in_list_uses_index(self):
        db = self._db()
        db.execute("CREATE INDEX t_a ON t (a)")
        plan = "\n".join(
            row[0]
            for row in db.execute(
                "EXPLAIN SELECT b FROM t WHERE a IN (?, ?)", [1, 3]
            ).rows
        )
        assert "IndexEqScan" in plan
        rows = db.execute("SELECT b FROM t WHERE a IN (?, ?)", [1, 3]).rows
        assert sorted(rows) == [("x",), ("z",)]

    def test_ddl_bumps_epoch_and_invalidates(self):
        db = self._db()
        sql = "SELECT b FROM t WHERE a = ?"
        db.execute(sql, [1])
        db.execute(sql, [1])
        assert db.last_statement_cache_hit
        epoch = db.schema_epoch
        db.execute("CREATE INDEX t_a ON t (a)")
        assert db.schema_epoch == epoch + 1
        assert db.plan_cache.stats()["size"] == 0
        # re-prepared post-DDL plan must use the new index and stay correct
        assert db.execute(sql, [2]).rows == [("y",)]
        assert not db.last_statement_cache_hit
        db.execute("CREATE TABLE t2 (x INTEGER)")
        assert db.schema_epoch == epoch + 2
        db.execute("DROP TABLE t2")
        assert db.schema_epoch == epoch + 3
        # DROP of a missing table with IF EXISTS is not a schema change
        db.execute("DROP TABLE IF EXISTS t2")
        assert db.schema_epoch == epoch + 3

    def test_explain_analyze_reports_plan_cache(self):
        db = self._db()
        lines = [
            row[0]
            for row in db.execute("EXPLAIN ANALYZE SELECT a FROM t").rows
        ]
        assert any(line.startswith("Plan cache: miss") for line in lines)
        lines = [
            row[0]
            for row in db.execute("EXPLAIN ANALYZE SELECT a FROM t").rows
        ]
        assert any(line.startswith("Plan cache: hit") for line in lines)

    def test_cache_disabled_still_correct(self):
        db = Database(plan_cache_size=0)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (?)", [7])
        assert db.execute("SELECT a FROM t WHERE a = ?", [7]).rows == [(7,)]
        assert db.execute("SELECT a FROM t WHERE a = ?", [7]).rows == [(7,)]
        assert not db.last_statement_cache_hit
        assert db.plan_cache.stats()["size"] == 0


# ----------------------------------------------------------------------
# Gremlin template parameterization
# ----------------------------------------------------------------------
class TestParameterization:
    def test_same_template_different_literals_share_key(self):
        q1 = parse_gremlin("g.v(1).out.has('age', 29).name")
        q2 = parse_gremlin("g.v(6).out.has('age', 31).name")
        t1, v1, k1 = parameterize_query(q1)
        t2, v2, k2 = parameterize_query(q2)
        assert k1 == k2
        assert v1 == [1, 29]
        assert v2 == [6, 31]

    def test_different_shapes_get_different_keys(self):
        queries = [
            "g.v(1).out",
            "g.v(1, 2).out",          # arity changes the template
            "g.v(1).out('knows')",    # labels stay literal
            "g.v(1).in",
        ]
        keys = set()
        for text in queries:
            __, __, key = parameterize_query(parse_gremlin(text))
            keys.add(key)
        assert len(keys) == len(queries)

    def test_structural_literals_stay_literal(self):
        # range positions and loop bounds shape the SQL; only the id moves
        # into the parameter vector
        query = parse_gremlin("g.v(3).out.loop(1){it.loops < 2}.range(0, 4)")
        __, values, __ = parameterize_query(query)
        assert values == [3]

    def test_closure_constants_extracted(self):
        query = parse_gremlin("g.V.filter{it.age > 30 && it.name != 'x'}.name")
        __, values, __ = parameterize_query(query)
        assert sorted(map(str, values)) == ["30", "x"]

    def test_string_method_argument_stays_literal(self):
        query = parse_gremlin("g.V.filter{it.name.contains('mar')}.name")
        __, values, __ = parameterize_query(query)
        assert values == []

    def test_input_query_not_mutated(self):
        query = parse_gremlin("g.v(1).has('age', 29)")
        parameterize_query(query)
        assert query.pipes[0].ids == [1]
        assert query.pipes[1].value == 29

    def test_sql_literal_renders_marker(self):
        assert sql_literal(ParamLiteral(3)) == "{?3}"

    def test_strip_markers_orders_and_duplicates(self):
        sql = "SELECT a WHERE x = {?1} AND y IN ({?0}, {?1})"
        clean, recipe = strip_parameter_markers(sql)
        assert clean == "SELECT a WHERE x = ? AND y IN (?, ?)"
        assert recipe == [1, 0, 1]

    def test_strip_markers_skips_quoted_text(self):
        sql = "SELECT a WHERE s = '{?0}' AND t = {?0} AND u = 'it''s {?1}'"
        clean, recipe = strip_parameter_markers(sql)
        assert clean == "SELECT a WHERE s = '{?0}' AND t = ? AND u = 'it''s {?1}'"
        assert recipe == [0]


# ----------------------------------------------------------------------
# end-to-end through the store
# ----------------------------------------------------------------------
class TestStoreCache:
    def test_translation_cache_hit_across_ids(self, store):
        first = store.run("g.v(1).out.name")
        stats = store.last_query_stats
        assert not stats.translation_cache_hit
        second = store.run("g.v(4).out.name")
        stats = store.last_query_stats
        assert stats.translation_cache_hit
        assert stats.plan_cache_hit
        assert sorted(first) != sorted(second)  # genuinely different bindings
        assert store.translation_cache.stats()["hits"] == 1

    def test_both_direction_duplicate_binding(self, store):
        # both/bothE render the incident-edge condition twice, so one
        # extracted literal feeds two placeholders
        cold = store.run("g.v(1).both('knows').id")
        warm = store.run("g.v(1).both('knows').id")
        assert sorted(cold) == sorted(warm)
        assert store.last_query_stats.translation_cache_hit

    def test_warm_results_match_uncached_store(self):
        graph = paper_figure_graph()
        cached = SQLGraphStore(plan_cache_size=64, translation_cache_size=64)
        cached.load_graph(graph)
        uncached = SQLGraphStore(plan_cache_size=0, translation_cache_size=0)
        uncached.load_graph(graph)
        queries = [
            "g.V.has('age', T.gt, 28).name",
            "g.v(1).out.out.name",
            "g.V.interval('age', 27, 33).name",
            "g.V.out.aggregate(x).out.except(x).count()",
            "g.V.ifThenElse{it.age != null}{it.age}{-1}",
        ]
        for text in queries:
            expected = sorted(map(repr, uncached.run(text)))
            assert sorted(map(repr, cached.run(text))) == expected, text
            assert sorted(map(repr, cached.run(text))) == expected, text

    def test_create_attribute_index_invalidates(self, store):
        query = "g.V.has('age', T.gt, 28).name"
        cold = sorted(store.run(query))
        assert sorted(store.run(query)) == cold
        epoch = store.database.schema_epoch
        store.create_attribute_index("vertex", "age", sorted_index=True)
        assert store.database.schema_epoch > epoch
        assert sorted(store.run(query)) == cold
        # the translation template key is epoch-stamped too
        assert not store.last_query_stats.translation_cache_hit

    def test_reorganize_keeps_warm_queries_correct(self, store):
        query = "g.V.out('knows').name"
        cold = sorted(store.run(query))
        store.reorganize()
        assert sorted(store.run(query)) == cold

    def test_lazy_delete_visible_through_warm_plans(self, store):
        before = store.run("g.V.count()")[0]
        assert store.run("g.V.count()")[0] == before  # warm the caches
        store.remove_vertex(1)
        # DML does not invalidate plans; re-execution must see the change
        assert store.run("g.V.count()")[0] == before - 1
        assert store.last_query_stats.translation_cache_hit

    def test_disabled_cache_path(self):
        store = SQLGraphStore(plan_cache_size=0, translation_cache_size=0)
        store.load_graph(paper_figure_graph())
        assert store.run("g.V.count()") == store.run("g.V.count()")
        stats = store.last_query_stats
        assert not stats.translation_cache_hit
        assert not stats.plan_cache_hit
        assert store.translation_cache.stats()["size"] == 0

    def test_env_var_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        store.run("g.V.count()")
        store.run("g.V.count()")
        assert not store.last_query_stats.plan_cache_hit
        assert not store.translation_cache.enabled
        assert not store.database.plan_cache.enabled

    def test_last_query_stats_surface_cache_counters(self, store):
        store.run("g.V.name")
        entry = store.last_query_stats.as_dict()
        assert entry["translation_cache_hit"] is False
        assert entry["plan_cache_hit"] is False
        for section in ("plan_cache", "translation_cache"):
            counters = entry["cache_stats"][section]
            assert {"hits", "misses", "invalidations", "size"} <= set(counters)

    def test_run_without_val_column_raises_friendly_error(
        self, store, monkeypatch
    ):
        from repro.relational.database import ResultSet

        monkeypatch.setattr(
            store, "query", lambda text: ResultSet(["vid", "attr"], [])
        )
        with pytest.raises(GremlinError, match="no 'val' column.*vid, attr"):
            store.run("g.V")


class TestCliStats:
    def test_stats_shows_cache_counters(self, store):
        from repro.cli import execute_line

        store.run("g.V.count()")
        store.run("g.V.count()")
        output = execute_line(store, ":stats")
        assert "plan cache:" in output
        assert "translation cache:" in output
        assert "caches: translation hit, plan hit" in output
