"""Tests for closure evaluation and static loop-bound extraction."""

from repro.gremlin import closures as cl


def env(obj=None, loops=1):
    return cl.ClosureEnv(obj, loops)


class TestEvaluate:
    def test_property_access_on_dict(self):
        node = cl.Compare("==", cl.PropRef("name"), cl.Const("x"))
        assert cl.evaluate(node, env({"name": "x"})) is True
        assert cl.evaluate(node, env({"name": "y"})) is False

    def test_missing_property_is_none(self):
        node = cl.Compare("==", cl.PropRef("name"), cl.Const(None))
        assert cl.evaluate(node, env({})) is True

    def test_loops_counter(self):
        node = cl.Compare("<", cl.PropRef("loops"), cl.Const(3))
        assert cl.evaluate(node, env(loops=2)) is True
        assert cl.evaluate(node, env(loops=3)) is False

    def test_ordering_with_none_is_false(self):
        node = cl.Compare(">", cl.PropRef("age"), cl.Const(5))
        assert cl.evaluate(node, env({})) is False

    def test_incomparable_types_are_false(self):
        node = cl.Compare("<", cl.Const("a"), cl.Const(3))
        assert cl.evaluate(node, env()) is False

    def test_arith(self):
        node = cl.Compare(
            "==", cl.Arith("+", cl.PropRef("a"), cl.Const(2)), cl.Const(5)
        )
        assert cl.evaluate(node, env({"a": 3})) is True

    def test_division_by_zero_none(self):
        node = cl.Arith("/", cl.Const(1), cl.Const(0))
        assert cl.evaluate(node, env()) is None

    def test_boolean_ops(self):
        node = cl.BoolOr(
            cl.BoolNot(cl.Const(True)),
            cl.BoolAnd(cl.Const(True), cl.Const(True)),
        )
        assert cl.evaluate(node, env()) is True

    def test_string_methods(self):
        target = cl.PropRef("name")
        e = env({"name": "marko"})
        assert cl.evaluate(cl.StringMethod("contains", target, cl.Const("ark")), e)
        assert cl.evaluate(cl.StringMethod("startsWith", target, cl.Const("ma")), e)
        assert cl.evaluate(cl.StringMethod("endsWith", target, cl.Const("ko")), e)
        assert not cl.evaluate(
            cl.StringMethod("contains", target, cl.Const("zz")), e
        )

    def test_string_method_on_non_string_is_false(self):
        node = cl.StringMethod("contains", cl.PropRef("age"), cl.Const("x"))
        assert cl.evaluate(node, env({"age": 5})) is False


class TestLoopAnalysis:
    def test_references_only_loops(self):
        node = cl.Compare("<", cl.PropRef("loops"), cl.Const(3))
        assert cl.references_only_loops(node)

    def test_other_property_detected(self):
        node = cl.Compare("<", cl.PropRef("age"), cl.Const(3))
        assert not cl.references_only_loops(node)

    def test_it_ref_detected(self):
        node = cl.Compare("==", cl.ItRef(), cl.Const(3))
        assert not cl.references_only_loops(node)

    def test_bound_lt(self):
        node = cl.Compare("<", cl.PropRef("loops"), cl.Const(4))
        assert cl.max_loops_bound(node) == 4

    def test_bound_lte(self):
        node = cl.Compare("<=", cl.PropRef("loops"), cl.Const(4))
        assert cl.max_loops_bound(node) == 5

    def test_bound_reversed(self):
        node = cl.Compare(">", cl.Const(4), cl.PropRef("loops"))
        assert cl.max_loops_bound(node) == 4

    def test_no_static_bound(self):
        node = cl.Compare("<", cl.PropRef("loops"), cl.PropRef("age"))
        assert cl.max_loops_bound(node) is None
