"""Differential testing: cost-based planner vs the heuristic planner.

The heuristic planner (``REPRO_COSTED=0``) is the reference: it is the
pre-statistics code path, still taken verbatim whenever no statistics
exist.  With statistics ANALYZEd in, the costed planner may pick
different join orders and access paths — but it must return the same
*multiset* of rows for every query.  Results are compared unordered
(canonicalized by ``repr``) because a different join order legitimately
permutes output rows; queries with ORDER BY additionally assert the
exact ordered result.

Corpus: the paper's Table 8 pipe matrix and Figure 7 examples over the
TinkerPop classic graph, and a pool of SQL shapes over a relational
fixture — all with every table ANALYZEd so the cost model is actually
exercised on the costed side.
"""

import pytest

from repro.analysis.corpus import FIGURE7_EXAMPLES, TABLE8_MATRIX
from repro.core import SQLGraphStore
from repro.datasets.tinker import tinkerpop_classic
from repro.relational import Database
from repro.relational import stats as stats_mod


def run_both_modes(run):
    """Call *run()* costed and in heuristic mode; return both results."""
    old = stats_mod.set_costed(True)
    try:
        costed = run()
        stats_mod.set_costed(False)
        heuristic = run()
    finally:
        stats_mod.set_costed(old)
    return costed, heuristic


def canon(result):
    """Order-insensitive canonical form of a query result."""
    return sorted(repr(item) for item in result)


@pytest.fixture(scope="module")
def classic_store():
    store = SQLGraphStore()
    store.load_graph(tinkerpop_classic())
    store.create_attribute_index("vertex", "lang")
    store.analyze_tables()
    return store


@pytest.mark.parametrize("pipe_name", sorted(TABLE8_MATRIX))
def test_table8_pipes_agree(classic_store, pipe_name):
    text = TABLE8_MATRIX[pipe_name]
    costed, heuristic = run_both_modes(lambda: classic_store.run(text))
    assert canon(costed) == canon(heuristic), text


@pytest.mark.parametrize("example", sorted(FIGURE7_EXAMPLES))
def test_figure7_examples_agree(classic_store, example):
    text = FIGURE7_EXAMPLES[example]
    costed, heuristic = run_both_modes(lambda: classic_store.run(text))
    assert canon(costed) == canon(heuristic), text


SQL_POOL = [
    "SELECT name FROM people WHERE age > 30",
    "SELECT * FROM people WHERE city = 'paris'",
    "SELECT id FROM people WHERE city IS NULL",
    "SELECT name FROM people WHERE name LIKE '%a%'",
    "SELECT name FROM people WHERE name LIKE 'a%'",
    "SELECT id FROM people WHERE id IN (1, 3, 9)",
    "SELECT DISTINCT city FROM people",
    "SELECT city, COUNT(*), SUM(age) FROM people GROUP BY city",
    "SELECT city, AVG(age) FROM people GROUP BY city HAVING COUNT(*) > 1",
    "SELECT p.name, o.item FROM people p, orders o WHERE p.id = o.pid",
    "SELECT p.name, o.item, s.carrier FROM people p, orders o, shipments s "
    "WHERE p.id = o.pid AND o.oid = s.oid",
    "SELECT p.name, o.item FROM people p LEFT JOIN orders o "
    "ON p.id = o.pid",
    "SELECT COUNT(*) FROM orders o, shipments s "
    "WHERE o.oid = s.oid AND o.amount > 20",
    "SELECT COUNT(*) FROM people",
    "SELECT age * 2 + 1 FROM people WHERE id = 2",
    "SELECT name FROM people WHERE age BETWEEN 28 AND 34",
    "WITH parisians AS (SELECT * FROM people WHERE city = 'paris') "
    "SELECT name FROM parisians WHERE age > 35",
    "SELECT name FROM people WHERE id = "
    "(SELECT pid FROM orders WHERE oid = 12)",
    "SELECT name FROM people WHERE id IN (SELECT pid FROM orders)",
    "SELECT city FROM people WHERE city IS NOT NULL "
    "UNION SELECT item FROM orders WHERE amount > 100",
    "SELECT pid FROM orders UNION ALL SELECT id FROM people",
]

ORDERED_POOL = [
    "SELECT name FROM people ORDER BY age DESC, name LIMIT 3",
    "SELECT name FROM people ORDER BY age, name LIMIT 2 OFFSET 1",
    "SELECT p.name FROM people p, orders o WHERE p.id = o.pid "
    "ORDER BY o.amount DESC",
]


@pytest.fixture(scope="module")
def sql_db():
    database = Database()
    database.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name STRING, "
        "age INTEGER, city STRING)"
    )
    database.execute("CREATE INDEX people_city ON people (city)")
    database.execute("CREATE INDEX people_age ON people (age) USING sorted")
    database.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, pid INTEGER, "
        "amount DOUBLE, item STRING)"
    )
    database.execute("CREATE INDEX orders_pid ON orders (pid)")
    database.execute(
        "CREATE TABLE shipments (sid INTEGER PRIMARY KEY, oid INTEGER, "
        "carrier STRING)"
    )
    database.execute("CREATE INDEX shipments_oid ON shipments (oid)")
    people = [
        (1, "alice", 34, "paris"),
        (2, "bob", 28, "london"),
        (3, "carol", 41, "paris"),
        (4, "dan", 23, None),
        (5, "eve", 28, "berlin"),
        (6, "frank", None, "paris"),
    ]
    for row in people:
        database.execute("INSERT INTO people VALUES (?, ?, ?, ?)", list(row))
    orders = [
        (10, 1, 25.0, "book"),
        (11, 1, 14.0, "pen"),
        (12, 2, 120.0, "chair"),
        (13, 3, 9.5, "book"),
        (14, 5, 30.0, "lamp"),
    ]
    for row in orders:
        database.execute("INSERT INTO orders VALUES (?, ?, ?, ?)", list(row))
    shipments = [
        (100, 10, "dhl"),
        (101, 12, "ups"),
        (102, 13, "dhl"),
    ]
    for row in shipments:
        database.execute(
            "INSERT INTO shipments VALUES (?, ?, ?)", list(row)
        )
    database.execute("ANALYZE")
    return database


@pytest.mark.parametrize("sql", SQL_POOL)
def test_sql_shapes_agree(sql_db, sql):
    costed, heuristic = run_both_modes(lambda: sql_db.execute(sql).rows)
    assert canon(costed) == canon(heuristic), sql


@pytest.mark.parametrize("sql", ORDERED_POOL)
def test_ordered_sql_shapes_agree_exactly(sql_db, sql):
    costed, heuristic = run_both_modes(lambda: sql_db.execute(sql).rows)
    assert costed == heuristic, sql


def test_stats_actually_engage(sql_db):
    """Sanity check on the corpus itself: the costed side must not be
    silently identical because statistics failed to load."""
    assert sql_db.statistics.get(
        "people", sql_db.schema_epoch
    ) is not None
    import re

    def first_est(sql):
        text = sql_db.execute("EXPLAIN " + sql).rows[0][0]
        return int(re.search(r"est_rows=(\d+)", text).group(1))

    sql = "SELECT * FROM people WHERE city = 'paris'"
    costed, heuristic = run_both_modes(lambda: first_est(sql))
    assert costed != heuristic
