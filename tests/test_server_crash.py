"""Server crash-safety: kill -9 mid-workload, graceful SIGTERM.

The contract under test: once the server acknowledges a commit over the
wire, that commit survives ``kill -9`` of the server process.  Even under
``REPRO_WAL_FSYNC=group`` this holds for process death (the WAL always
*flushes* to the OS at the commit point; only power failure can lose the
group-fsync window) — the same differential oracle style as
``tests/crashkit.py``, but across a real process boundary.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.client import ClientError, SQLGraphClient
from repro.server.protocol import WireError

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX signals required"
)


def _spawn_server(path, *extra, fsync="group"):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_WAL_FSYNC"] = fsync
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--path", str(path), "--dataset", "tinker", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    line = proc.stdout.readline().strip()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def _wait_port_free(port, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
        except OSError:
            return
        time.sleep(0.05)


class TestKillNine:
    def test_acknowledged_commits_survive_sigkill(self, tmp_path):
        proc, port = _spawn_server(tmp_path / "store")
        acknowledged = []
        ack_guard = threading.Lock()
        stop = threading.Event()

        def writer(base):
            client = SQLGraphClient("127.0.0.1", port, retries=0)
            vid = 50000 + base * 1000
            try:
                client.connect()
                while not stop.is_set():
                    vid += 1
                    try:
                        with client.transaction():
                            client.sql(
                                "INSERT INTO va VALUES (?, ?)",
                                [vid, {"writer": str(base)}],
                            )
                    except (ClientError, WireError, OSError):
                        return  # commit unacknowledged: not recorded
                    with ack_guard:
                        acknowledged.append(vid)
            except (ClientError, WireError, OSError):
                return
            finally:
                client.close()

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(3)]
        for thread in threads:
            thread.start()

        # let the workload build up, then pull the plug mid-flight
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with ack_guard:
                if len(acknowledged) >= 30:
                    break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        with ack_guard:
            acked = sorted(acknowledged)
        assert len(acked) >= 30, "workload never got going before the kill"
        _wait_port_free(port)

        # recovery: a fresh server on the same path must see every
        # acknowledged commit (differential: acked ⊆ recovered)
        proc2, port2 = _spawn_server(tmp_path / "store")
        try:
            with SQLGraphClient("127.0.0.1", port2) as client:
                recovered = {
                    row[0] for row in client.sql(
                        "SELECT vid FROM va WHERE vid >= 50000"
                    ).rows
                }
            lost = [vid for vid in acked if vid not in recovered]
            assert not lost, (
                f"{len(lost)} acknowledged commits lost after kill -9: "
                f"{lost[:10]}"
            )
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=15) == 0


class TestCrudKillNine:
    def test_acknowledged_crud_survives_sigkill(self, tmp_path):
        """The stored-procedure CRUD path honors the same contract as SQL
        DML: once ``crud`` returns over the wire, the mutation's WAL
        records have reached a commit point (flushed to the OS) and
        survive kill -9 — they are not buffered until some later SQL
        statement happens to commit."""
        proc, port = _spawn_server(tmp_path / "store")
        acked = {}
        with SQLGraphClient("127.0.0.1", port, retries=0) as client:
            for offset in range(10):
                vid = client.crud(
                    "add_vertex", properties={"name": f"crud{offset}"}
                )
                acked[vid] = f"crud{offset}"
            eid = client.crud(
                "add_edge", out_vertex_id=min(acked), in_vertex_id=max(acked),
                label="follows",
            )
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        _wait_port_free(port)

        proc2, port2 = _spawn_server(tmp_path / "store")
        try:
            with SQLGraphClient("127.0.0.1", port2) as client:
                for vid, name in acked.items():
                    element = client.crud("get_vertex", vertex_id=vid)
                    assert element is not None, f"lost acked vertex {vid}"
                    assert element["properties"]["name"] == name
                edge = client.crud("get_edge", edge_id=eid)
                assert edge is not None, "lost acked edge"
                assert edge["label"] == "follows"
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=15) == 0


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, port = _spawn_server(tmp_path / "store")
        with SQLGraphClient("127.0.0.1", port) as client:
            with client.transaction():
                client.sql(
                    "INSERT INTO va VALUES (?, ?)", [60001, {"pre": "term"}]
                )
            proc.send_signal(signal.SIGTERM)
            # in-flight session is notified with a typed SHUTTING_DOWN error
            with pytest.raises((WireError, ClientError)):
                for __ in range(50):
                    client.ping()
                    time.sleep(0.1)
        assert proc.wait(timeout=15) == 0
        output = proc.stdout.read()
        assert "draining" in output
        assert "bye" in output
        _wait_port_free(port)

        # the pre-shutdown commit survived the checkpoint-and-close
        proc2, port2 = _spawn_server(tmp_path / "store")
        try:
            with SQLGraphClient("127.0.0.1", port2) as client:
                assert client.sql(
                    "SELECT COUNT(*) FROM va WHERE vid = 60001"
                ).scalar() == 1
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=15) == 0

    def test_sigterm_with_no_sessions_exits_promptly(self, tmp_path):
        proc, __port = _spawn_server(tmp_path / "store")
        started = time.monotonic()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
        assert time.monotonic() - started < 10.0
