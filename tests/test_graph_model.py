"""Tests for the property-graph object model."""

import pytest

from repro.graph import Direction, PropertyGraph


def sample():
    graph = PropertyGraph()
    graph.add_vertex(1, {"name": "a"})
    graph.add_vertex(2, {"name": "b"})
    graph.add_vertex(3)
    graph.add_edge(1, 2, "knows", 10, {"w": 0.5})
    graph.add_edge(1, 3, "likes", 11)
    graph.add_edge(2, 3, "knows", 12)
    return graph


class TestVerticesAndEdges:
    def test_counts(self):
        graph = sample()
        assert graph.vertex_count() == 3
        assert graph.edge_count() == 3

    def test_get(self):
        graph = sample()
        assert graph.get_vertex(1).get_property("name") == "a"
        assert graph.get_edge(10).label == "knows"
        assert graph.get_vertex(99) is None
        assert graph.get_edge(99) is None

    def test_auto_ids(self):
        graph = PropertyGraph()
        first = graph.add_vertex()
        second = graph.add_vertex()
        assert second.id == first.id + 1

    def test_duplicate_vertex_rejected(self):
        graph = sample()
        with pytest.raises(ValueError):
            graph.add_vertex(1)

    def test_edge_requires_endpoints(self):
        graph = sample()
        with pytest.raises(ValueError):
            graph.add_edge(1, 99, "x")

    def test_edge_endpoints(self):
        graph = sample()
        edge = graph.get_edge(10)
        assert edge.vertex(Direction.OUT).id == 1
        assert edge.vertex(Direction.IN).id == 2

    def test_edge_labels(self):
        assert sample().edge_labels() == {"knows", "likes"}


class TestAdjacency:
    def test_out_vertices(self):
        graph = sample()
        out = sorted(v.id for v in graph.get_vertex(1).vertices(Direction.OUT))
        assert out == [2, 3]

    def test_in_vertices(self):
        graph = sample()
        incoming = sorted(
            v.id for v in graph.get_vertex(3).vertices(Direction.IN)
        )
        assert incoming == [1, 2]

    def test_both(self):
        graph = sample()
        both = sorted(v.id for v in graph.get_vertex(2).vertices(Direction.BOTH))
        assert both == [1, 3]

    def test_label_filter(self):
        graph = sample()
        out = [
            v.id for v in graph.get_vertex(1).vertices(Direction.OUT, ("knows",))
        ]
        assert out == [2]

    def test_edges_by_direction(self):
        graph = sample()
        assert {
            e.id for e in graph.get_vertex(1).edges(Direction.OUT)
        } == {10, 11}
        assert {e.id for e in graph.get_vertex(3).edges(Direction.IN)} == {11, 12}

    def test_degree(self):
        graph = sample()
        assert graph.get_vertex(1).degree(Direction.OUT) == 2
        assert graph.get_vertex(1).degree() == 2


class TestMutations:
    def test_remove_edge(self):
        graph = sample()
        assert graph.remove_edge(10)
        assert graph.get_edge(10) is None
        assert graph.get_vertex(1).degree(Direction.OUT) == 1
        assert graph.get_vertex(2).degree(Direction.IN) == 0

    def test_remove_edge_missing(self):
        assert not sample().remove_edge(99)

    def test_remove_vertex_cascades(self):
        graph = sample()
        assert graph.remove_vertex(3)
        assert graph.edge_count() == 1
        assert graph.get_vertex(1).degree(Direction.OUT) == 1

    def test_remove_vertex_missing(self):
        assert not sample().remove_vertex(99)

    def test_set_properties(self):
        graph = sample()
        graph.set_vertex_property(1, "age", 30)
        graph.set_edge_property(10, "w", 0.9)
        assert graph.get_vertex(1).get_property("age") == 30
        assert graph.get_edge(10).get_property("w") == 0.9

    def test_property_keys_and_remove(self):
        graph = sample()
        vertex = graph.get_vertex(1)
        assert vertex.property_keys() == ["name"]
        assert vertex.remove_property("name") == "a"
        assert vertex.get_property("name") is None

    def test_copy_is_independent(self):
        graph = sample()
        clone = graph.copy()
        clone.set_vertex_property(1, "name", "zzz")
        clone.remove_edge(10)
        assert graph.get_vertex(1).get_property("name") == "a"
        assert graph.get_edge(10) is not None
        assert clone.vertex_count() == graph.vertex_count()
