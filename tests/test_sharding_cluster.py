"""Cluster supervision: real shard processes, kill -9, recovery.

The acceptance contract: after ``kill -9`` of any single shard process,
the supervisor restarts it on its learned port, the restarted shard
recovers every commit it acknowledged before death (per-shard WAL
replay, same guarantee as ``tests/test_server_crash.py`` for one
store), and the *other* shards keep serving throughout.
"""

import signal

import pytest

from repro.client import SQLGraphClient
from repro.server.protocol import WireError
from repro.sharding import ShardedStore
from repro.sharding.manager import ShardManager
from repro.sharding.partition import shard_of

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX signals required"
)


@pytest.fixture
def manager(tmp_path):
    manager = ShardManager(
        2, tmp_path / "cluster", dataset="tinker",
        env={"REPRO_WAL_FSYNC": "group"},
    ).start()
    yield manager
    manager.stop()


@pytest.fixture
def store(manager):
    store = ShardedStore.connect(manager.addresses(), manager=manager)
    yield store
    store.close()


class TestSupervisedCluster:
    def test_boot_loads_partitioned_dataset(self, store):
        assert sorted(store.run("g.V.name")) == \
            ["josh", "lop", "marko", "vadas"]
        assert store.vertex_count() == 4
        assert store.edge_count() == 5

    def test_acked_commits_survive_sigkill_of_either_shard(
            self, manager, store):
        # write a batch of vertices; every add_vertex below returned,
        # i.e. the owning shard acknowledged the autocommit
        acked = {}
        for offset in range(12):
            properties = {"name": f"w{offset}", "n": offset}
            vid = store.add_vertex(properties=properties)
            acked[vid] = properties

        for victim in (0, 1):
            manager.kill(victim, signal.SIGKILL)

            # the surviving shard keeps serving while the victim is down
            survivor = 1 - victim
            survivor_vid = next(
                vid for vid in acked if shard_of(vid, 2) == survivor
            )
            host, port = manager.addresses()[survivor]
            with SQLGraphClient(host, port) as direct:
                assert direct.run(f"g.v({survivor_vid}).name") == \
                    [acked[survivor_vid]["name"]]

            assert manager.wait_alive(victim, timeout_s=30)
            # recovery: every acknowledged commit is back
            for vid, properties in sorted(acked.items()):
                vertex = store.get_vertex(vid)
                assert vertex is not None, f"lost acked vertex {vid}"
                assert vertex.get_property("name") == properties["name"]
            assert manager.shards[victim].restarts >= 1

    def test_restart_rebinds_the_same_port(self, manager, store):
        before = manager.addresses()
        manager.kill(0, signal.SIGKILL)
        assert manager.wait_alive(0, timeout_s=30)
        assert manager.addresses() == before
        # the router's pools reconnect without reconfiguration
        assert sorted(store.run("g.V.name")) == \
            ["josh", "lop", "marko", "vadas"]

    def test_health_reports_supervision_counters(self, manager, store):
        report = store.shard_health()
        assert all(entry["restarts"] == 0 for entry in report)
        assert all(entry["pid"] for entry in report)
        manager.kill(1, signal.SIGKILL)
        assert manager.wait_alive(1, timeout_s=30)
        report = store.shard_health()
        assert report[1]["restarts"] >= 1

    def test_mutations_during_outage_fail_typed_then_recover(
            self, manager, store):
        vid = store.add_vertex(properties={"name": "pre"})
        victim = shard_of(vid, 2)
        manager.kill(victim, signal.SIGKILL)
        # the store sees a typed error, not a hang, while the shard is
        # down (the supervisor may restart it between retries, so allow
        # either outcome but never a wrong answer)
        try:
            value = store.get_vertex(vid)
        except WireError as exc:
            assert exc.code == "SHARD_UNAVAILABLE"
        else:
            assert value is None or \
                value.get_property("name") == "pre"
        assert manager.wait_alive(victim, timeout_s=30)
        assert store.get_vertex(vid).get_property("name") == "pre"
