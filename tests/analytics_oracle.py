"""Zero-dependency pure-python oracles for the analytics drivers.

Each oracle consumes the *property graph* the store was loaded from (not
the store itself), so an engine bug cannot leak into the expected
values.  Semantics mirror the documented contracts of
:mod:`repro.graph.analytics`:

* integer-valued algorithms (components, label propagation) match the
  SQL results *exactly*, including tie-breaks;
* :func:`oracle_pagerank` mirrors the driver's update formula so a run
  with ``tolerance=0.0`` and a fixed iteration count agrees to float
  re-association error (~1e-12 per term);
* :func:`oracle_sssp` is deliberately a *different algorithm* (Dijkstra
  with a heap) than the driver's frontier Bellman-Ford — agreement is a
  much stronger check than a structural mirror.
"""

from __future__ import annotations

import heapq


def graph_arrays(graph, weight_key=None):
    """Extract ``(vertex_ids, edge_triples)`` from a property graph.

    Edges are ``(src, dst, weight)`` with the same default-1.0 /
    attribute-lookup rule as ``GraphAnalytics._extract``.
    """
    vertices = sorted(vertex.id for vertex in graph.vertices())
    edges = []
    for edge in graph.edges():
        if weight_key is None:
            weight = 1.0
        else:
            weight = edge.get_property(weight_key)
            weight = 1.0 if weight is None else float(weight)
        edges.append((edge.out_vertex.id, edge.in_vertex.id, weight))
    return vertices, edges


def oracle_pagerank(graph, damping=0.85, tolerance=1e-6, max_iterations=50):
    """Power iteration mirroring the SQL driver's update formula."""
    vertices, edges = graph_arrays(graph)
    n = len(vertices)
    if not n:
        return {}
    out_degree = {}
    for src, __dst, __w in edges:
        out_degree[src] = out_degree.get(src, 0) + 1
    rank = {vid: 1.0 / n for vid in vertices}
    base = (1.0 - damping) / n
    for __ in range(max_iterations):
        contrib = {}
        for src, dst, __w in edges:
            contrib[dst] = contrib.get(dst, 0.0) + rank[src] / out_degree[src]
        dangling = sum(
            value for vid, value in rank.items() if vid not in out_degree
        )
        nxt = {
            vid: base + damping * (contrib.get(vid, 0.0) + dangling / n)
            for vid in vertices
        }
        delta = sum(abs(nxt[vid] - rank[vid]) for vid in vertices)
        rank = nxt
        if delta <= tolerance:
            break
    return rank


def oracle_components(graph):
    """Undirected reachability; component id = smallest member vid."""
    vertices, edges = graph_arrays(graph)
    neighbours = {vid: [] for vid in vertices}
    for src, dst, __w in edges:
        neighbours[src].append(dst)
        neighbours[dst].append(src)
    labels = {}
    for start in vertices:  # ascending, so the label is the min vid
        if start in labels:
            continue
        frontier = [start]
        labels[start] = start
        while frontier:
            vid = frontier.pop()
            for nxt in neighbours[vid]:
                if nxt not in labels:
                    labels[nxt] = start
                    frontier.append(nxt)
    return labels


def oracle_label_propagation(graph, max_iterations=20):
    """Synchronous label propagation with the driver's exact vote rule.

    Votes per round: every vertex for its own label, plus one per edge
    endpoint in each direction.  New label = most voted, smallest label
    on ties.  All-integer, so results must equal the SQL exactly.
    """
    vertices, edges = graph_arrays(graph)
    labels = {vid: vid for vid in vertices}
    for __ in range(max_iterations):
        votes = {vid: {labels[vid]: 1} for vid in vertices}
        for src, dst, __w in edges:
            votes[dst][labels[src]] = votes[dst].get(labels[src], 0) + 1
            votes[src][labels[dst]] = votes[src].get(labels[dst], 0) + 1
        nxt = {}
        for vid, counts in votes.items():
            best = max(counts.values())
            nxt[vid] = min(
                label for label, count in counts.items() if count == best
            )
        if nxt == labels:
            break
        labels = nxt
    return labels


def oracle_sssp(graph, source, weight_key=None):
    """Dijkstra (binary heap) over directed weighted edges.

    Returns distances for reachable vertices only, like the driver.
    """
    vertices, edges = graph_arrays(graph, weight_key)
    if source not in set(vertices):
        raise ValueError(f"unknown source vertex {source!r}")
    outgoing = {}
    for src, dst, weight in edges:
        outgoing.setdefault(src, []).append((dst, weight))
    distances = {}
    heap = [(0.0, source)]
    while heap:
        dist, vid = heapq.heappop(heap)
        if vid in distances:
            continue
        distances[vid] = dist
        for nxt, weight in outgoing.get(vid, ()):
            if nxt not in distances:
                heapq.heappush(heap, (dist + weight, nxt))
    return distances
