"""Coordinator serving, failure typing, and client retry classification.

Covers the wire-visible behavior of the sharded cluster: the
coordinator speaks the unmodified framed-JSON protocol (existing clients
work transparently), shard-local ops return typed errors instead of
half-answers, a down or version-mismatched worker surfaces as a typed
error rather than a hang, and the client's declarative
retryable-operation table (:func:`repro.client.classify_idempotent`)
only ever re-sends provably safe requests.
"""

import pytest

from repro.client import SQLGraphClient, classify_idempotent
from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph
from repro.server import SQLGraphServer
from repro.server import protocol
from repro.server.protocol import WireError, code_for_exception
from repro.sharding import CoordinatorServer, ShardedStore, partition_graph
from repro.sharding.router import ShardUnavailableError


@pytest.fixture
def shard_servers():
    servers = []
    for subgraph in partition_graph(paper_figure_graph(), 2):
        store = SQLGraphStore()
        store.load_graph(subgraph)
        servers.append(SQLGraphServer(store, port=0, max_workers=4).start())
    yield servers
    for server in servers:
        server.shutdown(drain_timeout_s=1.0)


@pytest.fixture
def coordinator(shard_servers):
    store = ShardedStore.connect(
        [(server.host, server.port) for server in shard_servers]
    )
    server = CoordinatorServer(store, port=0, max_workers=4).start()
    yield server
    server.shutdown(drain_timeout_s=1.0)
    store.close()


@pytest.fixture
def client(coordinator):
    with SQLGraphClient("127.0.0.1", coordinator.port) as client:
        yield client


class TestCoordinatorServing:
    def test_existing_client_works_transparently(self, client):
        assert sorted(client.run("g.V.name")) == \
            ["josh", "lop", "marko", "vadas"]
        result = client.query("g.v(1).out('knows').name")
        assert sorted(row[0] for row in result.rows) == ["josh", "vadas"]

    def test_query_stats_carry_sharding_section(self, client):
        result = client.query("g.v(1).name")
        assert result.stats["sharding"]["mode"] == "forward"
        result = client.query("g.v(1).out.name")
        assert result.stats["sharding"]["mode"] == "scatter"

    def test_stats_include_per_shard_health(self, client):
        payload = client.stats()
        shards = payload["server"]["shards"]
        assert len(shards) == 2
        assert all(entry["ok"] for entry in shards)

    def test_shell_shards_command(self, client):
        output = client.shell(":shards")
        assert output.count("shard ") == 2
        assert "up" in output

    def test_shell_guards_shard_local_commands(self, client):
        for line in (":sql SELECT 1", ":pagerank", ":translate g.V",
                     ":checkpoint", ":analyze-tables"):
            output = client.shell(line)
            assert "shard-local" in output

    def test_shell_sharded_stats(self, client):
        client.run("g.v(1).out.name")
        output = client.shell(":stats")
        assert "2 shards" in output
        assert "4 vertices / 5 edges" in output

    def test_transactions_rejected_typed(self, client):
        with pytest.raises(WireError) as excinfo:
            client.begin()
        assert excinfo.value.code == protocol.TRANSACTION_ERROR

    def test_sql_and_analytics_rejected_typed(self, client):
        with pytest.raises(WireError) as excinfo:
            client.sql("SELECT COUNT(*) FROM va")
        assert excinfo.value.code == protocol.BAD_REQUEST
        with pytest.raises(WireError) as excinfo:
            client.pagerank()
        assert excinfo.value.code == protocol.BAD_REQUEST

    def test_internal_ops_rejected_typed(self, client):
        for call in (lambda: client.hop("out", [1]),
                     lambda: client.fetch(vids=[1])):
            with pytest.raises(WireError) as excinfo:
                call()
            assert excinfo.value.code == protocol.BAD_REQUEST

    def test_crud_through_coordinator(self, client):
        vid = client.crud("add_vertex", properties={"name": "zoe"})
        assert vid == 5
        assert client.crud("get_vertex", vertex_id=vid) is not None
        assert client.crud("remove_vertex", vertex_id=vid) is True

    def test_requires_sharded_store(self):
        store = SQLGraphStore()
        store.load_graph(paper_figure_graph())
        with pytest.raises(TypeError, match="ShardedStore"):
            CoordinatorServer(store)


class TestShardFailureTyping:
    def test_dead_shard_is_typed_not_hung(self, shard_servers,
                                          coordinator):
        shard_servers[1].shutdown(drain_timeout_s=0.2)
        with SQLGraphClient("127.0.0.1", coordinator.port,
                            retries=0) as client:
            with pytest.raises(WireError) as excinfo:
                client.run("g.V.name")
        assert excinfo.value.code == protocol.SHARD_UNAVAILABLE

    def test_health_marks_dead_shard(self, shard_servers, coordinator):
        shard_servers[0].shutdown(drain_timeout_s=0.2)
        report = coordinator.store.shard_health()
        assert report[0]["ok"] is False
        assert report[1]["ok"] is True

    def test_forward_to_live_shard_still_serves(self, shard_servers,
                                                coordinator):
        from repro.sharding.partition import shard_of

        # kill shard 1; single-shard queries owned by shard 0 keep working
        dead = 1
        shard_servers[dead].shutdown(drain_timeout_s=0.2)
        survivor_vid = next(
            vid for vid in (1, 2, 3, 4) if shard_of(vid, 2) != dead
        )
        with SQLGraphClient("127.0.0.1", coordinator.port,
                            retries=0) as client:
            values = client.run(f"g.v({survivor_vid}).name")
            assert len(values) == 1

    def test_shard_unavailable_is_wire_typed(self):
        error = ShardUnavailableError(3, ("127.0.0.1", 1), OSError("down"))
        assert error.code == protocol.SHARD_UNAVAILABLE
        assert error.shard_index == 3
        # the coordinator relays the typed code instead of flattening
        # worker failures to INTERNAL_ERROR
        assert code_for_exception(error) == protocol.SHARD_UNAVAILABLE

    def test_worker_wire_errors_relay_through_coordinator(self):
        error = WireError(protocol.UNSUPPORTED_PROTOCOL, "v99")
        assert code_for_exception(error) == protocol.UNSUPPORTED_PROTOCOL


class TestVersionNegotiationMismatch:
    """A coordinator must not hang on a version-skewed worker shard."""

    def test_mismatched_shard_yields_typed_error(self, shard_servers,
                                                 coordinator,
                                                 monkeypatch):
        import repro.server.server as server_module

        # connect (and handshake) with the coordinator *before* the skew:
        # existing sessions keep protocol v1
        with SQLGraphClient("127.0.0.1", coordinator.port,
                            retries=0, request_timeout_s=10.0) as client:
            # now every *new* handshake in-process demands protocol 99 —
            # the coordinator's fresh pool connections to the workers
            # are rejected exactly like a version-skewed deployment
            monkeypatch.setattr(server_module, "PROTOCOL_VERSION", 99)
            with pytest.raises(WireError) as excinfo:
                client.run("g.V.name")
            assert excinfo.value.code == protocol.UNSUPPORTED_PROTOCOL
            assert "protocol" in str(excinfo.value).lower()

    def test_client_shard_mismatch_is_typed(self, shard_servers,
                                            monkeypatch):
        # direct client -> worker skew: same typed rejection, no hang
        import repro.client as client_module

        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 99)
        with pytest.raises(WireError) as excinfo:
            SQLGraphClient("127.0.0.1", shard_servers[0].port).connect()
        assert excinfo.value.code == protocol.UNSUPPORTED_PROTOCOL


class TestRetryClassification:
    """The declarative retryable-op table (satellite: analytics was
    wrongly non-retryable before this table existed)."""

    @pytest.mark.parametrize("op", ["ping", "stats"])
    def test_metadata_ops_always_idempotent(self, op):
        assert classify_idempotent(op) is True
        assert classify_idempotent(op, in_transaction=True) is True

    @pytest.mark.parametrize("op", ["gremlin", "run", "analytics",
                                    "hop", "fetch"])
    def test_reads_idempotent_outside_transaction(self, op):
        assert classify_idempotent(op) is True
        assert classify_idempotent(op, in_transaction=True) is False

    def test_sql_classified_by_statement(self):
        reads = ["SELECT * FROM va", "  select 1", "EXPLAIN SELECT 1"]
        writes = ["INSERT INTO kv VALUES (1)", "DELETE FROM kv",
                  "UPDATE kv SET v = 1", "CREATE TABLE t (a INTEGER)"]
        for text in reads:
            assert classify_idempotent("sql", {"query": text}) is True
            assert classify_idempotent(
                "sql", {"query": text}, in_transaction=True
            ) is False
        for text in writes:
            assert classify_idempotent("sql", {"query": text}) is False

    def test_crud_classified_by_action(self):
        assert classify_idempotent(
            "crud", {"action": "get_vertex"}) is True
        for action in ("add_vertex", "add_edge", "remove_vertex",
                       "remove_edge", "set_vertex_property"):
            assert classify_idempotent("crud", {"action": action}) is False

    @pytest.mark.parametrize("op", ["begin", "commit", "rollback",
                                    "shell", "set", "crud", "unknown"])
    def test_everything_else_never_retried(self, op):
        assert classify_idempotent(op) is False


@pytest.fixture
def single_server():
    store = SQLGraphStore()
    store.load_graph(paper_figure_graph())
    server = SQLGraphServer(store, port=0, max_workers=4).start()
    yield server
    server.shutdown(drain_timeout_s=1.0)


class TestRetryBehavior:
    def _drop_socket(self, client):
        """Simulate the server side dropping the connection."""
        client._sock.close()

    def test_analytics_retries_across_reconnect(self, single_server):
        with SQLGraphClient("127.0.0.1", single_server.port) as client:
            first_session = client.session_id
            self._drop_socket(client)
            ranks = client.pagerank(max_iterations=5)
            assert len(ranks) == 4
            assert client.reconnects == 1
            assert client.session_id != first_session

    def test_gremlin_read_retries_across_reconnect(self, single_server):
        with SQLGraphClient("127.0.0.1", single_server.port) as client:
            self._drop_socket(client)
            assert sorted(client.run("g.V.name")) == \
                ["josh", "lop", "marko", "vadas"]
            assert client.reconnects == 1

    def test_write_never_retried_after_drop(self, single_server):
        with SQLGraphClient("127.0.0.1", single_server.port) as client:
            self._drop_socket(client)
            from repro.client import ClientError

            with pytest.raises(ClientError):
                client.crud("add_vertex", properties={"name": "nope"})
            assert client.reconnects == 0

    def test_no_retry_inside_transaction(self, single_server):
        with SQLGraphClient("127.0.0.1", single_server.port) as client:
            client.begin()
            self._drop_socket(client)
            from repro.client import ClientError

            with pytest.raises(ClientError):
                client.run("g.V.name")
            assert client.reconnects == 0
