"""Differential tests: SQL analytics drivers vs pure-python oracles.

Every case loads one graph from the shared deterministic generator
(:func:`repro.datasets.random_graphs.analytics_case_graph` — the same
distribution ``benchmarks/test_analytics.py`` scales up) into a fresh
store and checks all four algorithms against :mod:`tests.analytics_oracle`:

* **components** / **label propagation** — exact equality, including the
  smallest-label tie-break;
* **SSSP** — exact for unweighted runs; weighted runs must agree with an
  *algorithmically different* oracle (Dijkstra vs the driver's frontier
  Bellman-Ford) to float-association error, over identical reachable
  sets;
* **PageRank** — run with ``tolerance=0.0`` and a fixed iteration count
  so both sides execute the same number of power iterations, then
  compared to 1e-9 (SQL aggregation order vs python sum order).

The case list starts with degenerate shapes (empty graph, single vertex,
self-loop, parallel edges, disconnected components) and continues with
200+ seeded random multigraphs.
"""

import pytest

from repro.core import SQLGraphStore
from repro.datasets.random_graphs import (
    ANALYTICS_EDGE_CASES,
    analytics_case_graph,
)
from tests.analytics_oracle import (
    oracle_components,
    oracle_label_propagation,
    oracle_pagerank,
    oracle_sssp,
)

#: ≥200 generated graphs, the first ANALYTICS_EDGE_CASES of them fixed
#: degenerate shapes
CASES = 210

#: fixed power-iteration count for the exact-mirror PageRank comparison
PAGERANK_ITERATIONS = 12


def _loaded_store(graph):
    store = SQLGraphStore()
    store.load_graph(graph)
    return store


@pytest.mark.parametrize("case", range(CASES))
def test_analytics_agree_with_oracles(case):
    graph = analytics_case_graph(case)
    store = _loaded_store(graph)

    ranks = store.pagerank(tolerance=0.0, max_iterations=PAGERANK_ITERATIONS)
    expected_ranks = oracle_pagerank(
        graph, tolerance=0.0, max_iterations=PAGERANK_ITERATIONS
    )
    assert set(ranks) == set(expected_ranks)
    for vid, expected in expected_ranks.items():
        assert ranks[vid] == pytest.approx(expected, abs=1e-9)

    assert store.connected_components() == oracle_components(graph)
    assert store.label_propagation() == oracle_label_propagation(graph)

    vids = sorted(vertex.id for vertex in graph.vertices())
    if vids:
        source = vids[case % len(vids)]  # vary the source across cases
        assert store.shortest_paths(source) == oracle_sssp(graph, source)
        distances = store.shortest_paths(source, weight_key="weight")
        expected_distances = oracle_sssp(graph, source, weight_key="weight")
        assert set(distances) == set(expected_distances)
        for vid, expected in expected_distances.items():
            assert distances[vid] == pytest.approx(expected, abs=1e-9)


def test_edge_cases_cover_the_degenerate_shapes():
    """The fixed prefix of the case list is what it claims to be."""
    assert analytics_case_graph(0).vertex_count() == 0
    single = analytics_case_graph(1)
    assert (single.vertex_count(), single.edge_count()) == (1, 0)
    loop = analytics_case_graph(2)
    assert (loop.vertex_count(), loop.edge_count()) == (1, 1)
    parallel = analytics_case_graph(3)
    assert parallel.edge_count() == 3
    pairs = {
        (edge.out_vertex.id, edge.in_vertex.id) for edge in parallel.edges()
    }
    assert pairs == {(1, 2), (2, 1)}  # parallel edges, both directions
    triangles = analytics_case_graph(4)
    assert len(set(oracle_components(triangles).values())) == 2
    assert CASES - ANALYTICS_EDGE_CASES >= 200


@pytest.mark.parametrize("case", [4, 8, 9, 42, 77])
def test_pagerank_convergence_path_matches_oracle(case):
    """The tolerance-triggered early exit lands near the oracle too."""
    graph = analytics_case_graph(case)
    store = _loaded_store(graph)
    ranks = store.pagerank(tolerance=1e-10, max_iterations=200)
    expected = oracle_pagerank(graph, tolerance=1e-10, max_iterations=200)
    assert store.last_analytics_stats.converged
    for vid, value in expected.items():
        assert ranks[vid] == pytest.approx(value, abs=1e-6)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("case", range(ANALYTICS_EDGE_CASES, 40))
def test_sssp_source_variation(case):
    """Every live vertex works as a source, not just the smallest."""
    graph = analytics_case_graph(case)
    store = _loaded_store(graph)
    vids = sorted(vertex.id for vertex in graph.vertices())
    for source in vids[:3] + vids[-2:]:
        assert store.shortest_paths(source) == oracle_sssp(graph, source)
