"""Differential testing: vectorized executor vs the row-at-a-time path.

The row-at-a-time loops are the reference semantics (they are the
pre-vectorization code, kept verbatim as ``rows_impl``); the batch
executor must produce identical results.  Because every batch operator
preserves input order exactly, results are compared *unsorted* — any
reordering is a bug.

Corpus: the paper's Table 8 pipe matrix and Figure 7 examples over the
TinkerPop classic graph, a pool of SQL shapes over a relational fixture,
and hypothesis-randomized predicates over randomized graphs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.corpus import FIGURE7_EXAMPLES, TABLE8_MATRIX
from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.datasets.tinker import tinkerpop_classic
from repro.relational import Database
from repro.relational import batch as batch_mod


def run_both_modes(run):
    """Call *run()* vectorized and in row mode; return both results."""
    old = batch_mod.set_enabled(True)
    try:
        vectorized = run()
        batch_mod.set_enabled(False)
        row = run()
    finally:
        batch_mod.set_enabled(old)
    return vectorized, row


@pytest.fixture(scope="module")
def classic_store():
    store = SQLGraphStore()
    store.load_graph(tinkerpop_classic())
    return store


@pytest.mark.parametrize("pipe_name", sorted(TABLE8_MATRIX))
def test_table8_pipes_agree(classic_store, pipe_name):
    text = TABLE8_MATRIX[pipe_name]
    vectorized, row = run_both_modes(lambda: classic_store.run(text))
    assert vectorized == row, text


@pytest.mark.parametrize("example", sorted(FIGURE7_EXAMPLES))
def test_figure7_examples_agree(classic_store, example):
    text = FIGURE7_EXAMPLES[example]
    vectorized, row = run_both_modes(lambda: classic_store.run(text))
    assert vectorized == row, text


SQL_POOL = [
    "SELECT name FROM people WHERE age > 30",
    "SELECT * FROM people WHERE city = 'paris'",
    "SELECT id FROM people WHERE city IS NULL",
    "SELECT name FROM people WHERE name LIKE '%a%'",
    "SELECT id FROM people WHERE id IN (1, 3, 9)",
    "SELECT DISTINCT city FROM people",
    "SELECT city, COUNT(*), SUM(age) FROM people GROUP BY city",
    "SELECT city, AVG(age) FROM people GROUP BY city HAVING COUNT(*) > 1",
    "SELECT p.name, o.item FROM people p, orders o WHERE p.id = o.pid",
    "SELECT p.name, o.item FROM people p LEFT JOIN orders o "
    "ON p.id = o.pid",
    "SELECT name FROM people ORDER BY age DESC, name LIMIT 3",
    "SELECT name FROM people ORDER BY age LIMIT 2 OFFSET 1",
    "SELECT COUNT(*) FROM people",
    "SELECT age * 2 + 1 FROM people WHERE id = 2",
    "SELECT name FROM people WHERE age BETWEEN 28 AND 34",
    "WITH parisians AS (SELECT * FROM people WHERE city = 'paris') "
    "SELECT name FROM parisians WHERE age > 35",
    "SELECT name FROM people WHERE id = "
    "(SELECT pid FROM orders WHERE oid = 12)",
    "SELECT name FROM people WHERE id IN (SELECT pid FROM orders)",
    "SELECT city FROM people WHERE city IS NOT NULL "
    "UNION SELECT item FROM orders WHERE amount > 100",
    "SELECT pid FROM orders UNION ALL SELECT id FROM people",
]


@pytest.fixture(scope="module")
def sql_db():
    database = Database()
    database.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name STRING, "
        "age INTEGER, city STRING)"
    )
    database.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, pid INTEGER, "
        "amount DOUBLE, item STRING)"
    )
    people = [
        (1, "alice", 34, "paris"),
        (2, "bob", 28, "london"),
        (3, "carol", 41, "paris"),
        (4, "dan", 23, None),
        (5, "eve", 28, "berlin"),
        (6, "frank", None, "paris"),
    ]
    for row in people:
        database.execute("INSERT INTO people VALUES (?, ?, ?, ?)", list(row))
    orders = [
        (10, 1, 25.0, "book"),
        (11, 1, 14.0, "pen"),
        (12, 2, 120.0, "chair"),
        (13, 3, 9.5, "book"),
        (14, 5, 30.0, "lamp"),
    ]
    for row in orders:
        database.execute("INSERT INTO orders VALUES (?, ?, ?, ?)", list(row))
    return database


@pytest.mark.parametrize("sql", SQL_POOL)
def test_sql_shapes_agree(sql_db, sql):
    vectorized, row = run_both_modes(lambda: sql_db.execute(sql).rows)
    assert vectorized == row, sql


GREMLIN_POOL = [
    "g.V.count()",
    "g.V.out.count()",
    "g.V.both.dedup().count()",
    "g.V.has('lang','java').both.dedup()",
    "g.V.out.out.dedup().count()",
    "g.V.out.in.dedup().name",
    "g.V.out.loop(1){it.loops < 2}.dedup().count()",
    "g.V.as('a').out('knows').as('b').select('a', 'b')",
    "g.V.age.order()",
    "g.V.out.range(2, 8).count()",
]

COLUMNS = ["name", "age", "lang", "score"]
OPERATORS = ["=", "<>", "<", "<=", ">", ">="]
CONJUNCTS = [
    "",
    " AND JSON_VAL(attr, 'age') IS NOT NULL",
    " OR JSON_VAL(attr, 'score') > 5.0",
    " AND JSON_VAL(attr, 'name') LIKE 'n%'",
]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_vertices=st.integers(5, 30),
    n_edges=st.integers(0, 60),
    query=st.sampled_from(GREMLIN_POOL),
)
def test_random_graphs_agree(seed, n_vertices, n_edges, query):
    graph = random_property_graph(
        seed=seed, n_vertices=n_vertices, n_edges=n_edges
    )
    store = SQLGraphStore()
    store.load_graph(graph)
    vectorized, row = run_both_modes(lambda: store.run(query))
    assert vectorized == row, query


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    column=st.sampled_from(COLUMNS),
    operator=st.sampled_from(OPERATORS),
    value=st.integers(0, 100),
    conjunct=st.sampled_from(CONJUNCTS),
    distinct=st.booleans(),
    seed=st.integers(0, 50),
)
def test_randomized_predicates_agree(
    column, operator, value, conjunct, distinct, seed
):
    """Randomized WHERE clauses over a randomized vertex-attribute table:
    the comparison/boolean kernels and their row fallbacks must agree on
    every generated predicate, including NULL-heavy columns."""
    graph = random_property_graph(seed=seed, n_vertices=20, n_edges=30)
    store = SQLGraphStore()
    store.load_graph(graph)
    head = "SELECT DISTINCT" if distinct else "SELECT"
    sql = (
        f"{head} vid FROM va "
        f"WHERE JSON_VAL(attr, '{column}') {operator} {value}{conjunct}"
    )
    # randomized predicates hit the store's relational layer directly
    vectorized, row = run_both_modes(
        lambda: store.database.execute(sql).rows
    )
    assert vectorized == row, sql
