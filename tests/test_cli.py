"""Tests for the interactive shell plumbing."""

import pytest

from repro.cli import build_store, execute_line, main


@pytest.fixture(scope="module")
def store():
    return build_store("tinker")


class TestBuildStore:
    def test_tinker(self, store):
        assert store.vertex_count() == 4

    def test_classic(self):
        assert build_store("classic").vertex_count() == 6

    def test_dbpedia_scaled(self):
        small = build_store("dbpedia", scale=0.05)
        assert small.vertex_count() > 50

    def test_linkbench_scaled(self):
        small = build_store("linkbench", scale=0.02)
        assert small.vertex_count() == 100

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_store("nope")


class TestExecuteLine:
    def test_gremlin_query(self, store):
        assert execute_line(store, "g.V.count()") == "4"

    def test_empty_line(self, store):
        assert execute_line(store, "   ") == ""

    def test_no_results(self, store):
        assert "(no results)" in execute_line(store, "g.V.has('name','zz')")

    def test_truncation(self):
        big = build_store("linkbench", scale=0.05)
        output = execute_line(big, "g.V")
        assert "results total" in output

    def test_translate_command(self, store):
        output = execute_line(store, ":translate g.v(1).out")
        assert output.startswith("WITH ")

    def test_explain_command(self, store):
        output = execute_line(store, ":explain g.v(1).out")
        assert "Scan" in output

    def test_sql_command(self, store):
        output = execute_line(store, ":sql SELECT COUNT(*) FROM va")
        assert "4" in output

    def test_sql_dml(self, store):
        output = execute_line(
            store, ":sql CREATE TABLE scratch (x INTEGER)"
        )
        assert "ok" in output or output  # DDL returns an empty resultset
        output = execute_line(
            store, ":sql INSERT INTO scratch VALUES (1)"
        )
        assert "1 rows affected" in output

    def test_stats_command(self, store):
        output = execute_line(store, ":stats")
        assert "vertices" in output
        assert "ea" in output

    def test_help_command(self, store):
        assert ":translate" in execute_line(store, ":help")

    def test_unknown_command(self, store):
        assert "unknown command" in execute_line(store, ":wat")

    def test_quit_raises_system_exit(self, store):
        with pytest.raises(SystemExit):
            execute_line(store, ":quit")


class TestMain:
    def test_one_shot_query(self, capsys):
        assert main(["--dataset", "tinker", "--query", "g.V.count()"]) == 0
        assert capsys.readouterr().out.strip() == "4"


def test_console_script_registered():
    import pathlib
    import tomllib

    pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
    config = tomllib.loads(pyproject.read_text())
    assert config["project"]["scripts"]["sqlgraph-shell"] == "repro.cli:main"
