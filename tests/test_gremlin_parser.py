"""Tests for Gremlin text parsing into the pipe AST."""

import pytest

from repro.gremlin import closures as cl
from repro.gremlin import pipes as p
from repro.gremlin.errors import GremlinSyntaxError, UnsupportedPipeError
from repro.gremlin.parser import parse_gremlin


def pipes_of(text):
    return parse_gremlin(text).pipes


class TestStartPipes:
    def test_all_vertices(self):
        (start,) = pipes_of("g.V")
        assert isinstance(start, p.StartVertices)
        assert not start.ids and start.key is None

    def test_vertex_by_id(self):
        (start,) = pipes_of("g.v(42)")
        assert start.ids == [42]

    def test_vertices_by_key_value(self):
        (start,) = pipes_of("g.V('name', 'marko')")
        assert start.key == "name" and start.value == "marko"

    def test_all_edges(self):
        (start,) = pipes_of("g.E")
        assert isinstance(start, p.StartEdges)

    def test_edge_by_id(self):
        (start,) = pipes_of("g.e(7)")
        assert start.ids == [7]

    def test_requires_g(self):
        with pytest.raises(GremlinSyntaxError):
            parse_gremlin("h.V")


class TestTraversalPipes:
    def test_out_with_labels(self):
        __, pipe = pipes_of("g.V.out('knows', 'likes')")
        assert isinstance(pipe, p.Adjacent)
        assert pipe.direction == "out"
        assert pipe.labels == ("knows", "likes")

    def test_in_keywordish_name(self):
        __, pipe = pipes_of("g.V.in('knows')")
        assert pipe.direction == "in"

    def test_both_bare(self):
        __, pipe = pipes_of("g.V.both")
        assert pipe.direction == "both" and pipe.labels == ()

    def test_incident_edges(self):
        __, pipe = pipes_of("g.V.outE('x')")
        assert isinstance(pipe, p.IncidentEdges) and pipe.direction == "out"

    def test_edge_vertices(self):
        __, pipe = pipes_of("g.E.inV")
        assert isinstance(pipe, p.EdgeVertex) and pipe.direction == "in"

    def test_property_shorthand(self):
        __, pipe = pipes_of("g.V.name")
        assert isinstance(pipe, p.PropertyGetter) and pipe.key == "name"

    def test_property_call(self):
        __, pipe = pipes_of("g.V.property('age')")
        assert pipe.key == "age"

    def test_id_label_path(self):
        pipes = pipes_of("g.E.id")
        assert isinstance(pipes[1], p.IdGetter)
        pipes = pipes_of("g.E.label")
        assert isinstance(pipes[1], p.LabelGetter)
        pipes = pipes_of("g.V.out.path")
        assert isinstance(pipes[2], p.PathPipe)


class TestFilterPipes:
    def test_has_forms(self):
        __, exists = pipes_of("g.V.has('age')")
        assert exists.exists_only
        __, equal = pipes_of("g.V.has('age', 29)")
        assert equal.op == "==" and equal.value == 29
        __, compared = pipes_of("g.V.has('age', T.gt, 29)")
        assert compared.op == ">" and compared.value == 29

    def test_unknown_token_rejected(self):
        with pytest.raises(GremlinSyntaxError):
            parse_gremlin("g.V.has('age', T.weird, 29)")

    def test_has_not(self):
        __, pipe = pipes_of("g.V.hasNot('age')")
        assert isinstance(pipe, p.HasNotPipe)

    def test_interval(self):
        __, pipe = pipes_of("g.V.interval('age', 10, 20)")
        assert (pipe.low, pipe.high) == (10, 20)

    def test_filter_closure(self):
        __, pipe = pipes_of("g.V.filter{it.age > 29}")
        assert isinstance(pipe.closure, cl.Compare)

    def test_dedup_range(self):
        pipes = pipes_of("g.V.dedup().range(0, 5)")
        assert isinstance(pipes[1], p.DedupPipe)
        assert (pipes[2].low, pipes[2].high) == (0, 5)

    def test_except_retain_by_name(self):
        __, pipe = pipes_of("g.V.except(x)")
        assert pipe.name == "x"
        __, pipe = pipes_of("g.V.retain('y')")
        assert pipe.name == "y"

    def test_except_by_list(self):
        __, pipe = pipes_of("g.V.except([1, 2])")
        assert pipe.values == (1, 2)

    def test_simple_path(self):
        pipes = pipes_of("g.V.out.simplePath")
        assert isinstance(pipes[2], p.SimplePathPipe)

    def test_and_or_branches(self):
        __, pipe = pipes_of("g.V.and(_().out('a'), _().in('b'))")
        assert isinstance(pipe, p.AndPipe) and len(pipe.branches) == 2
        assert isinstance(pipe.branches[0][0], p.Adjacent)


class TestBranchAndSideEffects:
    def test_if_then_else(self):
        __, pipe = pipes_of("g.V.ifThenElse{it.age > 1}{it.age}{0}")
        assert isinstance(pipe, p.IfThenElsePipe)

    def test_if_then_else_requires_three_closures(self):
        with pytest.raises(GremlinSyntaxError):
            parse_gremlin("g.V.ifThenElse{it.age > 1}{it.age}")

    def test_copy_split_merge(self):
        pipes = pipes_of("g.V.copySplit(_().out(), _().in()).exhaustMerge()")
        assert isinstance(pipes[1], p.CopySplitPipe)
        assert isinstance(pipes[2], p.MergePipe) and not pipes[2].fair

    def test_loop(self):
        pipes = pipes_of("g.V.out.loop(1){it.loops < 3}")
        loop = pipes[2]
        assert isinstance(loop, p.LoopPipe)
        assert loop.back_steps == 1

    def test_as_back_aggregate(self):
        pipes = pipes_of("g.V.as('x').out.back('x').aggregate(acc)")
        assert isinstance(pipes[1], p.AsPipe)
        assert pipes[3].target == "x"
        assert pipes[4].name == "acc"

    def test_back_by_number(self):
        pipes = pipes_of("g.V.out.back(1)")
        assert pipes[2].target == 1

    def test_side_effect_pipes_parse(self):
        pipes = pipes_of("g.V.table(t).groupCount(m).iterate()")
        assert isinstance(pipes[1], p.TablePipe)
        assert isinstance(pipes[2], p.GroupCountPipe)
        assert isinstance(pipes[3], p.IteratePipe)

    def test_unsupported_pipe_rejected(self):
        with pytest.raises(UnsupportedPipeError):
            parse_gremlin("g.V.shuffle(1)")


class TestClosureLanguage:
    def closure(self, text):
        return pipes_of(f"g.V.filter{{{text}}}")[1].closure

    def test_comparison(self):
        node = self.closure("it.age >= 21")
        assert node.op == ">=" and node.right.value == 21

    def test_boolean_combinators(self):
        node = self.closure("it.a == 1 && (it.b == 2 || !it.c)")
        assert isinstance(node, cl.BoolAnd)
        assert isinstance(node.right, cl.BoolOr)

    def test_arithmetic(self):
        node = self.closure("it.age + 1 * 2 == 31")
        assert isinstance(node.left, cl.Arith) and node.left.op == "+"

    def test_string_methods(self):
        node = self.closure("it.name.contains('ar')")
        assert isinstance(node, cl.StringMethod)
        node = self.closure("it.name.startsWith('m')")
        assert node.method == "startsWith"

    def test_null_literal(self):
        node = self.closure("it.age != null")
        assert node.right.value is None

    def test_bare_it(self):
        node = self.closure("it == 5")
        assert isinstance(node.left, cl.ItRef)

    def test_loops_counter(self):
        node = self.closure("it.loops < 3")
        assert node.left.name == "loops"

    def test_unknown_variable_rejected(self):
        with pytest.raises(UnsupportedPipeError):
            self.closure("x == 1")

    def test_unknown_method_rejected(self):
        with pytest.raises(UnsupportedPipeError):
            self.closure("it.name.toUpperCase() == 'X'")

    def test_nested_property_access_rejected(self):
        with pytest.raises(UnsupportedPipeError):
            self.closure("it.friend.name == 'x'")
