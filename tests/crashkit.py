"""Crash-injection harness for the durability subsystem.

The harness runs a *recorded* random workload against a durable
:class:`~repro.relational.database.Database`, remembering the WAL byte
offset at the end of every workload *unit* (an autocommitted statement or
a whole explicit transaction).  A crash is then simulated by copying the
database directory and truncating — or corrupting — the log copy at an
arbitrary byte offset before reopening it.  Correctness is differential:
the recovered state must equal an in-memory *oracle* database that ran
exactly the units whose commit point survived the cut.

Three invariants fall out of the design:

* **No lost committed transaction** — a unit whose end offset is at or
  below the cut is fully present after recovery.
* **No resurrected loser** — units cut mid-way (their commit record did
  not survive) and explicitly aborted transactions contribute nothing.
* **Torn tails are dropped, not trusted** — a cut that lands inside a
  record leaves a frame that fails the length/CRC check; recovery
  truncates it and behaves exactly like the cut at the previous record
  boundary.

Workload units keep autocommitted DML to single-row effects (point
updates/deletes by primary key) so every autocommit unit is exactly one
WAL record; multi-row statements only appear inside explicit
transactions, where the commit record already delimits atomicity.
"""

from __future__ import annotations

import os
import random
import shutil

from repro.relational.database import Database
from repro.relational.wal import scan_log


class _Abort(Exception):
    """Raised inside a transaction block to force a rollback."""


class Unit:
    """One atomic step of a recorded workload.

    :param kind: ``"auto"`` (autocommitted statements), ``"txn"``
        (committed transaction) or ``"abort"`` (rolled-back transaction).
    :param statements: the SQL executed, in order.

    ``end_offset`` is filled in by :func:`run_workload`: the WAL size in
    bytes right after this unit's commit point.
    """

    __slots__ = ("kind", "statements", "end_offset")

    def __init__(self, kind, statements):
        self.kind = kind
        self.statements = list(statements)
        self.end_offset = None

    def __repr__(self):
        return f"Unit({self.kind}, {len(self.statements)} stmts)"


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
def generate_workload(seed, size=200):
    """A deterministic list of :class:`Unit` for *seed*.

    The generator tracks its own model of committed keys so updates and
    deletes always target rows that exist at that point (aborted units do
    not advance the model — their effects never become visible).
    """
    rng = random.Random(seed)
    units = [
        Unit("auto", [
            "CREATE TABLE kv (k INTEGER PRIMARY KEY, v STRING, n INTEGER)"
        ]),
        Unit("auto", ["CREATE INDEX kv_n ON kv (n)"]),
        Unit("auto", [
            "CREATE TABLE audit (id INTEGER PRIMARY KEY, tag STRING)"
        ]),
        Unit("auto", ["CREATE INDEX audit_tag ON audit (tag) USING sorted"]),
    ]
    live = []          # committed keys of kv, in insertion order
    next_key = [0]
    next_audit = [0]

    def insert_sql():
        next_key[0] += 1
        k = next_key[0]
        return k, (
            f"INSERT INTO kv VALUES ({k}, 'v{k}', {rng.randrange(10)})"
        )

    def audit_sql():
        next_audit[0] += 1
        i = next_audit[0]
        return f"INSERT INTO audit VALUES ({i}, 'tag{rng.randrange(5)}')"

    while len(units) < size:
        roll = rng.random()
        if roll < 0.35 or not live:
            k, sql = insert_sql()
            units.append(Unit("auto", [sql]))
            live.append(k)
        elif roll < 0.5:
            k = rng.choice(live)
            units.append(Unit("auto", [
                f"UPDATE kv SET v = 'u{rng.randrange(100)}', "
                f"n = {rng.randrange(10)} WHERE k = {k}"
            ]))
        elif roll < 0.6:
            k = rng.choice(live)
            units.append(Unit("auto", [f"DELETE FROM kv WHERE k = {k}"]))
            live.remove(k)
        elif roll < 0.7:
            units.append(Unit("auto", [audit_sql()]))
        else:
            # explicit transaction: several statements, committed or not
            committed = roll < 0.9
            statements = []
            keys_added = []
            for __ in range(rng.randrange(1, 4)):
                inner = rng.random()
                if inner < 0.5 or not live:
                    k, sql = insert_sql()
                    statements.append(sql)
                    keys_added.append(k)
                elif inner < 0.75:
                    k = rng.choice(live)
                    statements.append(
                        f"UPDATE kv SET n = {rng.randrange(10)} WHERE k = {k}"
                    )
                else:
                    statements.append(audit_sql())
            statements.append(audit_sql())
            if committed:
                units.append(Unit("txn", statements))
                live.extend(keys_added)
            else:
                units.append(Unit("abort", statements))
    return units


def run_workload(database, units):
    """Execute *units* against a durable *database*, recording offsets."""
    wal = database.wal
    for unit in units:
        if unit.kind == "auto":
            for sql in unit.statements:
                database.execute(sql)
        else:
            try:
                with database.transaction():
                    for sql in unit.statements:
                        database.execute(sql)
                    if unit.kind == "abort":
                        raise _Abort()
            except _Abort:
                pass
        wal.flush()
        unit.end_offset = os.path.getsize(wal.path)


def oracle_database(units, cut_offset):
    """An in-memory database holding exactly the committed prefix.

    A unit survives the cut iff its commit point (``end_offset``) is at
    or below *cut_offset* — cut-off transactions are losers by
    definition, and aborted units never count.
    """
    database = Database()
    for unit in units:
        if unit.kind == "abort":
            continue
        if unit.end_offset is None or unit.end_offset > cut_offset:
            continue
        if unit.kind == "auto":
            for sql in unit.statements:
                database.execute(sql)
        else:
            with database.transaction():
                for sql in unit.statements:
                    database.execute(sql)
    return database


# ----------------------------------------------------------------------
# crash simulation
# ----------------------------------------------------------------------
def crash_copy(source_dir, target_dir, cut_offset=None, corrupt_at=None):
    """Copy a database directory, optionally mutilating the log copy.

    :param cut_offset: truncate the WAL copy to this many bytes
        (simulates the unsynced tail never reaching disk).
    :param corrupt_at: XOR one byte of the WAL copy at this offset
        (simulates a misdirected / bit-rotted write).
    """
    from repro.relational.recovery import wal_path

    shutil.copytree(source_dir, target_dir)
    log = wal_path(target_dir)
    if cut_offset is not None:
        with open(log, "r+b") as fh:
            fh.truncate(cut_offset)
    if corrupt_at is not None:
        with open(log, "r+b") as fh:
            fh.seek(corrupt_at)
            byte = fh.read(1)
            fh.seek(corrupt_at)
            fh.write(bytes([byte[0] ^ 0xFF]))
    return target_dir


def record_boundaries(log_path):
    """Every intact record's end offset in the log (ascending)."""
    records, __valid_end, __torn = scan_log(log_path)
    return [end for *__parts, end in records]


# ----------------------------------------------------------------------
# state extraction / comparison
# ----------------------------------------------------------------------
def _index_keys(index):
    """Multiset of keys an index currently holds (internals-aware)."""
    buckets = getattr(index, "_buckets", None)
    if buckets is not None:
        keys = []
        for key, rids in buckets.items():
            keys.extend([key] * len(rids))
        return keys
    return [key for __order, __rid, key in index._entries]


def database_state(database):
    """Comparable snapshot of every table: row and index-key multisets.

    RIDs are deliberately excluded — recovery leaves tombstone holes
    where loser transactions' rows sat, so physical addresses differ from
    an oracle that never ran the losers, while logical content must not.
    """
    state = {}
    for name in database.catalog.table_names():
        table = database.catalog.get_table(name)
        rows = sorted(repr(row) for row in table.scan_rows())
        indexes = {}
        for index_name, index in sorted(table.indexes.items()):
            indexes[index_name] = sorted(
                repr(key) for key in _index_keys(index)
            )
        state[name] = {
            "rows": rows,
            "live_rows": table.live_rows,
            "indexes": indexes,
        }
    return state


def assert_states_equal(recovered, oracle, context=""):
    """Assert two :func:`database_state` snapshots match, with detail."""
    assert set(recovered) == set(oracle), (
        f"{context}: table sets differ: "
        f"{sorted(recovered)} vs {sorted(oracle)}"
    )
    for name in sorted(oracle):
        got, want = recovered[name], oracle[name]
        assert got["rows"] == want["rows"], (
            f"{context}: rows of {name!r} differ\n"
            f"  recovered: {got['rows']}\n  oracle:    {want['rows']}"
        )
        assert got["live_rows"] == want["live_rows"], (
            f"{context}: live_rows of {name!r}: "
            f"{got['live_rows']} vs {want['live_rows']}"
        )
        assert got["indexes"] == want["indexes"], (
            f"{context}: index keys of {name!r} differ\n"
            f"  recovered: {got['indexes']}\n  oracle:    {want['indexes']}"
        )
