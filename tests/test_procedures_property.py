"""Property-based CRUD testing: SQLGraphStore vs the in-memory oracle.

Random operation sequences (add/remove vertices and edges, property
updates) are applied simultaneously to a SQLGraphStore and to a plain
PropertyGraph.  After the sequence, adjacency and attribute state must
agree when observed through queries.

One deliberate divergence is exercised and asserted: the paper's lazy
vertex delete leaves dangling neighbour ids in *other* vertices' adjacency
rows (cleaned offline).  The oracle deletes eagerly, so comparisons skip
vertices that lost a neighbour to deletion.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.graph.blueprints import Direction

LABELS = ("knows", "created", "likes")


def _apply_ops(seed, op_count, allow_vertex_delete=False):
    rng = random.Random(seed)
    base = random_property_graph(seed=seed, n_vertices=12, n_edges=20,
                                 labels=LABELS)
    store = SQLGraphStore()
    store.load_graph(base)
    oracle = base.copy()
    next_vertex = 100
    next_edge = 1000
    live_vertices = set(oracle.vertex_ids())
    live_edges = {edge.id for edge in oracle.edges()}
    touched_by_delete = set()

    for __ in range(op_count):
        choice = rng.random()
        if choice < 0.2:
            next_vertex += 1
            properties = {"name": f"v{next_vertex}"}
            store.add_vertex(next_vertex, properties)
            oracle.add_vertex(next_vertex, properties)
            live_vertices.add(next_vertex)
        elif choice < 0.55 and live_vertices:
            src = rng.choice(sorted(live_vertices))
            dst = rng.choice(sorted(live_vertices))
            label = rng.choice(LABELS)
            next_edge += 1
            store.add_edge(src, dst, label, next_edge, {"w": 1})
            oracle.add_edge(src, dst, label, next_edge, {"w": 1})
            live_edges.add(next_edge)
        elif choice < 0.7 and live_edges:
            edge_id = rng.choice(sorted(live_edges))
            store.remove_edge(edge_id)
            oracle.remove_edge(edge_id)
            live_edges.discard(edge_id)
        elif choice < 0.8 and live_vertices:
            vertex_id = rng.choice(sorted(live_vertices))
            store.set_vertex_property(vertex_id, "score", rng.randrange(100))
            oracle.set_vertex_property(vertex_id, "score", rng.randrange(0, 1) or
                                       oracle.get_vertex(vertex_id).get_property("score"))
            # keep values identical: re-read from the store
            value = store.get_vertex(vertex_id).get_property("score")
            oracle.set_vertex_property(vertex_id, "score", value)
        elif allow_vertex_delete and choice < 0.88 and len(live_vertices) > 3:
            vertex_id = rng.choice(sorted(live_vertices))
            vertex = oracle.get_vertex(vertex_id)
            for neighbour in vertex.vertices(Direction.BOTH):
                touched_by_delete.add(neighbour.id)
            incident = {edge.id for edge in vertex.edges(Direction.BOTH)}
            store.remove_vertex(vertex_id)
            oracle.remove_vertex(vertex_id)
            live_vertices.discard(vertex_id)
            live_edges -= incident
        elif live_edges:
            edge_id = rng.choice(sorted(live_edges))
            store.set_edge_property(edge_id, "w", rng.randrange(10))
            value = store.get_edge(edge_id).get_property("w")
            oracle.set_edge_property(edge_id, "w", value)
    return store, oracle, live_vertices, touched_by_delete


def _assert_equivalent(store, oracle, live_vertices, skip=()):
    assert store.vertex_count() == oracle.vertex_count()
    assert store.edge_count() == oracle.edge_count()
    for vertex_id in sorted(live_vertices):
        oracle_vertex = oracle.get_vertex(vertex_id)
        if oracle_vertex is None:
            assert store.get_vertex(vertex_id) is None
            continue
        stored = store.get_vertex(vertex_id)
        assert stored is not None, vertex_id
        assert stored.properties == oracle_vertex.properties, vertex_id
        if vertex_id in skip:
            continue  # lazy delete leaves dangling adjacency (documented)
        for label in LABELS:
            expected = sorted(
                v.id for v in oracle_vertex.vertices(Direction.OUT, (label,))
            )
            got = sorted(store.run(f"g.v({vertex_id}).out('{label}')"))
            assert got == expected, (vertex_id, label)
            expected_in = sorted(
                v.id for v in oracle_vertex.vertices(Direction.IN, (label,))
            )
            got_in = sorted(store.run(f"g.v({vertex_id}).in('{label}')"))
            assert got_in == expected_in, (vertex_id, label)


class TestCrudSequences:
    @pytest.mark.parametrize("seed", range(8))
    def test_without_vertex_deletes(self, seed):
        store, oracle, live, __ = _apply_ops(seed, op_count=60)
        _assert_equivalent(store, oracle, live)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_vertex_deletes(self, seed):
        store, oracle, live, touched = _apply_ops(
            seed + 50, op_count=60, allow_vertex_delete=True
        )
        _assert_equivalent(store, oracle, live, skip=touched)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), op_count=st.integers(5, 40))
def test_property_crud(seed, op_count):
    store, oracle, live, __ = _apply_ops(seed, op_count)
    _assert_equivalent(store, oracle, live)
