"""Tests for the §3 micro-benchmark schemas (JSON adjacency, hash attrs)."""

import pytest

from repro.baselines.schemas import HashAttributeTable, JsonAdjacencyStore
from repro.datasets.random_graphs import random_property_graph
from repro.datasets.tinker import paper_figure_graph
from repro.graph.model import PropertyGraph


class TestJsonAdjacency:
    @pytest.fixture
    def loaded(self):
        store = JsonAdjacencyStore()
        store.load_graph(paper_figure_graph())
        return store

    def test_one_hop_out(self, loaded):
        assert sorted(loaded.neighbors([1], "out")) == [2, 3, 4]

    def test_one_hop_in(self, loaded):
        assert sorted(loaded.neighbors([3], "in")) == [1, 4]

    def test_label_filter(self, loaded):
        assert sorted(loaded.neighbors([1], "out", ("knows",))) == [2, 4]

    def test_k_hop(self, loaded):
        assert sorted(loaded.k_hop([1], 2, "out")) == [2, 3]

    def test_k_hop_undirected(self, loaded):
        result = loaded.k_hop([2], 2, undirected=True)
        assert 3 in result  # 2 <- 1/4 -> 3

    def test_empty_frontier(self, loaded):
        assert loaded.neighbors([], "out") == []

    def test_matches_direct_graph_traversal(self):
        graph = random_property_graph(seed=4, n_vertices=30, n_edges=80)
        store = JsonAdjacencyStore()
        store.load_graph(graph)
        for start in list(graph.vertex_ids())[:5]:
            expected = sorted(
                {
                    v.id
                    for mid in graph.get_vertex(start).vertices(
                        __import__(
                            "repro.graph.blueprints", fromlist=["Direction"]
                        ).Direction.OUT
                    )
                    for v in mid.vertices(
                        __import__(
                            "repro.graph.blueprints", fromlist=["Direction"]
                        ).Direction.OUT
                    )
                }
            )
            assert sorted(store.k_hop([start], 2, "out")) == expected

    def test_storage_bytes(self, loaded):
        assert loaded.storage_bytes() > 0


class TestHashAttributeTable:
    @pytest.fixture
    def loaded(self):
        table = HashAttributeTable()
        table.load_graph(paper_figure_graph())
        return table

    def test_exists_lookup(self, loaded):
        result = loaded.database.execute(loaded.exists_sql("age"))
        assert sorted(row[0] for row in result.rows) == [1, 2, 4]

    def test_string_equality(self, loaded):
        sql = loaded.string_lookup_sql("name", equals="marko")
        assert loaded.database.execute(sql).rows == [(1,)]

    def test_like_lookup(self, loaded):
        sql = loaded.string_lookup_sql("name", like_pattern="%o%")
        result = loaded.database.execute(sql)
        assert sorted(row[0] for row in result.rows) == [1, 3, 4]

    def test_numeric_lookup_needs_cast(self, loaded):
        sql = loaded.numeric_lookup_sql("age", ">", 28)
        assert "CAST" in sql
        result = loaded.database.execute(sql)
        assert sorted(row[0] for row in result.rows) == [1, 4]

    def test_value_index_creation(self, loaded):
        loaded.create_value_index("name")
        sql = loaded.string_lookup_sql("name", equals="josh")
        assert loaded.database.execute(sql).rows == [(4,)]

    def test_long_strings_move_to_overflow(self):
        graph = PropertyGraph()
        graph.add_vertex(1, {"bio": "x" * 200, "name": "a"})
        table = HashAttributeTable()
        table.load_graph(graph)
        assert table.stats.long_string_rows == 1
        overflow = table.database.execute("SELECT val FROM vah_long")
        assert overflow.rows[0][0] == "x" * 200

    def test_multi_values_move_to_overflow(self):
        graph = PropertyGraph()
        graph.add_vertex(1, {"alias": ["a", "b", "c"]})
        table = HashAttributeTable()
        table.load_graph(graph)
        assert table.stats.multi_value_rows == 3

    def test_spills_with_capped_columns(self):
        graph = PropertyGraph()
        graph.add_vertex(1, {"a": 1, "b": 2, "c": 3, "d": 4})
        table = HashAttributeTable(max_columns=2)
        table.load_graph(graph)
        assert table.stats.spill_rows > 0

    def test_stats_shape(self, loaded):
        stats = loaded.stats
        assert stats.hashed_keys == 3  # name, age, lang
        assert stats.vertices == 4
        assert stats.bucket_size > 0
        assert stats.spill_percentage == 0.0

    def test_types_recorded(self, loaded):
        coloring = loaded.coloring
        column = coloring.column_for("age")
        result = loaded.database.execute(
            f"SELECT DISTINCT type{column} FROM vah WHERE attr{column} = 'age'"
        )
        assert result.rows == [("INTEGER",)]
