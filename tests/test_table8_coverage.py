"""Coverage matrix for paper Table 8: every supported pipe translates and
executes consistently with the interpreter, and the paper's Figure 7
example produces the documented CTE structure."""

import pytest

from repro.core import SQLGraphStore
from repro.datasets.tinker import tinkerpop_classic
from repro.gremlin import GremlinInterpreter, parse_gremlin

# one minimal query per Table 8 row (pipe -> query exercising it)
TABLE8_MATRIX = {
    "out": "g.v(1).out",
    "in": "g.v(3).in",
    "both": "g.v(4).both",
    "outV": "g.e(9).outV",
    "inV": "g.e(9).inV",
    "bothV": "g.e(9).bothV",
    "outE": "g.v(1).outE",
    "inE": "g.v(3).inE",
    "bothE": "g.v(4).bothE",
    "range filter": "g.V.range(1, 3).count()",
    "duplicate filter": "g.v(1).out.in.dedup()",
    "id filter": "g.V.has('id', 3)",
    "property filter": "g.V.has('age', T.gte, 29)",
    "interval filter": "g.V.interval('age', 27, 32)",
    "label filter": "g.E.has('label', 'created')",
    "except filter": "g.v(1).out.aggregate(x).out.except(x)",
    "retain filter": "g.v(1).out.aggregate(x).out.retain(x)",
    "cyclic path filter": "g.v(1).out.in.cyclicPath.count()",
    "back filter": "g.V.as('x').out('created').back('x')",
    "and filter": "g.V.and(_().out('knows'), _().out('created'))",
    "or filter": "g.V.or(_().has('lang'), _().has('age', T.gt, 33))",
    "if-then-else": "g.V.ifThenElse{it.age != null}{it.age}{0}",
    "split-merge": "g.v(1).copySplit(_().out('knows'), _().out('created'))"
                   ".exhaustMerge()",
    "loop": "g.v(1).out.loop(1){it.loops < 2}",
    "as": "g.V.as('here').count()",
    "aggregate": "g.V.aggregate(all).count()",
    "select": "g.v(1).as('a').out.as('b').select('a','b')",
    "path": "g.v(1).out('created').path",
    "simple path": "g.v(1).out.in.simplePath.count()",
    "order": "g.V.age.order()",
    "count": "g.V.count()",
    "property get": "g.v(1).name",
    "id get": "g.v(1).out.id",
    "label get": "g.v(1).outE.label",
    "table (identity)": "g.V.as('x').table(t).count()",
    "groupCount (identity)": "g.V.groupCount(m).count()",
    "sideEffect (identity)": "g.V.sideEffect{it.age > 0}.count()",
    "iterate (identity)": "g.V.iterate().count()",
}


@pytest.fixture(scope="module")
def pair():
    graph = tinkerpop_classic()
    store = SQLGraphStore()
    store.load_graph(graph)
    return store, GremlinInterpreter(graph)


def _normalize_interpreter(values):
    out = []
    for value in values:
        if hasattr(value, "id") and hasattr(value, "get_property"):
            out.append(value.id)
        elif isinstance(value, (list, tuple)):
            out.append(
                tuple(item.id if hasattr(item, "id") else item for item in value)
            )
        else:
            out.append(value)
    return sorted(map(repr, out))


@pytest.mark.parametrize("pipe_name", sorted(TABLE8_MATRIX))
def test_pipe_translates_and_agrees(pair, pipe_name):
    store, interpreter = pair
    text = TABLE8_MATRIX[pipe_name]
    sql = store.translate(text)
    assert sql.startswith("WITH ")
    expected = _normalize_interpreter(interpreter.run(parse_gremlin(text)))
    got = sorted(
        repr(tuple(v) if isinstance(v, (list, tuple)) else v)
        for v in store.run(text)
    )
    assert got == expected, text


def test_figure7_example_structure(pair):
    """The paper's running example, forced onto the hash-adjacency path by
    an extra traversal step, compiles to the Figure 7 CTE shape: JSON
    attribute lookup, OPA/OSA and IPA/ISA branches, UNION ALL, dedup,
    COUNT."""
    store, interpreter = pair
    text = "g.V.filter{it.tag=='w'}.both.both.dedup().count()"
    sql = store.translate(text)
    assert "JSON_VAL(p.attr, 'tag') = 'w'" in sql
    assert "opa" in sql and "LEFT OUTER JOIN osa" in sql
    assert "ipa" in sql and "LEFT OUTER JOIN isa" in sql
    assert "UNION ALL" in sql
    assert "SELECT DISTINCT" in sql
    assert "COUNT(*)" in sql
    assert sql.count(" AS (") >= 7
    assert store.run(text) == [0]  # no 'tag' attribute in this graph


def test_figure7_single_step_uses_ea_shortcut(pair):
    """With `both` as the only traversal step, the §3.5 optimization kicks
    in: the redundant EA table answers both directions, no OPA/OSA join."""
    store, __ = pair
    sql = store.translate("g.V.filter{it.tag=='w'}.both.dedup().count()")
    assert " ea " in sql
    assert "opa" not in sql and "UNION ALL" in sql


def test_figure7_with_matching_data(pair):
    store, __ = pair
    store.set_vertex_property(1, "tag", "w")
    try:
        result = store.run("g.V.filter{it.tag=='w'}.both.dedup().count()")
        assert result == [3]  # marko's distinct neighbours
    finally:
        store.procedures.update_vertex(1, {"tag": None})
