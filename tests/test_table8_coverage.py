"""Coverage matrix for paper Table 8: every supported pipe translates and
executes consistently with the interpreter, and the paper's Figure 7
example produces the documented CTE structure."""

import pytest

from repro.analysis.corpus import FIGURE7_EXAMPLES, TABLE8_MATRIX
from repro.core import SQLGraphStore
from repro.datasets.tinker import tinkerpop_classic
from repro.gremlin import GremlinInterpreter, parse_gremlin


@pytest.fixture(scope="module")
def pair():
    graph = tinkerpop_classic()
    store = SQLGraphStore()
    store.load_graph(graph)
    return store, GremlinInterpreter(graph)


def _normalize_interpreter(values):
    out = []
    for value in values:
        if hasattr(value, "id") and hasattr(value, "get_property"):
            out.append(value.id)
        elif isinstance(value, (list, tuple)):
            out.append(
                tuple(item.id if hasattr(item, "id") else item for item in value)
            )
        else:
            out.append(value)
    return sorted(map(repr, out))


@pytest.mark.parametrize("pipe_name", sorted(TABLE8_MATRIX))
def test_pipe_translates_and_agrees(pair, pipe_name):
    store, interpreter = pair
    text = TABLE8_MATRIX[pipe_name]
    sql = store.translate(text)
    assert sql.startswith("WITH ")
    expected = _normalize_interpreter(interpreter.run(parse_gremlin(text)))
    got = sorted(
        repr(tuple(v) if isinstance(v, (list, tuple)) else v)
        for v in store.run(text)
    )
    assert got == expected, text


def test_figure7_example_structure(pair):
    """The paper's running example, forced onto the hash-adjacency path by
    an extra traversal step, compiles to the Figure 7 CTE shape: JSON
    attribute lookup, OPA/OSA and IPA/ISA branches, UNION ALL, dedup,
    COUNT."""
    store, interpreter = pair
    text = FIGURE7_EXAMPLES["figure7 two-step"]
    sql = store.translate(text)
    assert "JSON_VAL(p.attr, 'tag') = 'w'" in sql
    assert "opa" in sql and "LEFT OUTER JOIN osa" in sql
    assert "ipa" in sql and "LEFT OUTER JOIN isa" in sql
    assert "UNION ALL" in sql
    assert "SELECT DISTINCT" in sql
    assert "COUNT(*)" in sql
    assert sql.count(" AS (") >= 7
    assert store.run(text) == [0]  # no 'tag' attribute in this graph


def test_figure7_single_step_uses_ea_shortcut(pair):
    """With `both` as the only traversal step, the §3.5 optimization kicks
    in: the redundant EA table answers both directions, no OPA/OSA join."""
    store, __ = pair
    sql = store.translate(FIGURE7_EXAMPLES["figure7 single-step"])
    assert " ea " in sql
    assert "opa" not in sql and "UNION ALL" in sql


def test_figure7_with_matching_data(pair):
    store, __ = pair
    store.set_vertex_property(1, "tag", "w")
    try:
        result = store.run(FIGURE7_EXAMPLES["figure7 single-step"])
        assert result == [3]  # marko's distinct neighbours
    finally:
        store.procedures.update_vertex(1, {"tag": None})
