"""Differential testing of the relational engine against SQLite.

SQLite serves as a semantics oracle for the SQL subset both systems share:
projections, predicates (3VL, LIKE, IN, BETWEEN), joins, grouping,
aggregates, set operations, ordering, CTEs and recursive CTEs.  Randomized
tables are loaded into both engines and each query must return the same
multiset of rows.

Known dialect differences handled by the harness:

* our engine returns ``True``/``False`` for boolean expressions where
  SQLite returns 1/0 — compared numerically;
* integer division: ours returns floats for inexact division (SQLite
  truncates), so the pool avoids bare ``/`` between integers;
* LIKE is case-sensitive in our engine, case-insensitive in SQLite for
  ASCII — patterns in the pool use lowercase text only.
"""

import random
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.relational import Database

QUERIES = [
    "SELECT a, b FROM t WHERE a > 3",
    "SELECT a + b * 2 FROM t",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT a FROM t WHERE b IS NOT NULL AND a < 5",
    "SELECT a FROM t WHERE s LIKE 'x%'",
    "SELECT a FROM t WHERE s LIKE '%3%'",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)",
    "SELECT a FROM t WHERE a BETWEEN 2 AND 6",
    "SELECT DISTINCT b FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(b), SUM(a), MIN(a), MAX(b) FROM t",
    "SELECT b, COUNT(*) FROM t GROUP BY b",
    "SELECT b, SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 1",
    "SELECT t.a, u.c FROM t, u WHERE t.a = u.a",
    "SELECT t.a, u.c FROM t LEFT OUTER JOIN u ON t.a = u.a",
    "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE u.c > 2",
    "SELECT a FROM t UNION SELECT a FROM u",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT a, b FROM t ORDER BY b, a LIMIT 4 OFFSET 1",
    "SELECT a FROM t WHERE a = (SELECT MAX(a) FROM u)",
    "SELECT CASE WHEN a > 3 THEN 'hi' ELSE 'lo' END FROM t",
    "SELECT a FROM t WHERE NOT (a > 3 AND b IS NOT NULL)",
    "WITH big AS (SELECT a FROM t WHERE a > 2) "
    "SELECT COUNT(*) FROM big",
    "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x WHERE a < 5) "
    "SELECT * FROM y",
    "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
    "WHERE n < 7) SELECT SUM(n) FROM r",
    "SELECT u.c, COUNT(*) FROM t, u WHERE t.b = u.a GROUP BY u.c",
    "SELECT ABS(a - 4) FROM t ORDER BY 1",
    "SELECT UPPER(s) FROM t WHERE s IS NOT NULL",
    "SELECT a % 3, COUNT(*) FROM t GROUP BY a % 3",
    # joins + aggregation
    "SELECT t.b, COUNT(u.c) FROM t LEFT OUTER JOIN u ON t.a = u.a GROUP BY t.b",
    "SELECT MAX(u.c) FROM t, u WHERE t.a = u.a AND t.b IS NOT NULL",
    "SELECT t.a FROM t JOIN u ON t.a = u.a JOIN u v ON u.c = v.c",
    # nested and correlated-free subqueries
    "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE c IN "
    "(SELECT b FROM t WHERE b IS NOT NULL))",
    "SELECT (SELECT COUNT(*) FROM u), COUNT(*) FROM t",
    "SELECT a FROM (SELECT a, COUNT(*) AS n FROM t GROUP BY a) AS s "
    "WHERE s.n > 1",
    # expression corners
    "SELECT CASE WHEN b IS NULL THEN -1 WHEN b > 2 THEN b ELSE 0 END FROM t",
    "SELECT a FROM t WHERE (a > 2 AND a < 7) OR s = 'zz'",
    "SELECT COALESCE(b, a, 99) FROM t",
    "SELECT a * 1.5 FROM t WHERE a BETWEEN 1 AND 4",
    "SELECT s || '!' FROM t WHERE s IS NOT NULL",
    "SELECT LENGTH(s) FROM t WHERE s IS NOT NULL ORDER BY 1",
    # set ops composed with the rest
    "SELECT a FROM t WHERE b IS NULL UNION SELECT a FROM u WHERE c > 3",
    "SELECT COUNT(*) FROM (SELECT a FROM t UNION SELECT a FROM u) AS s",
    "SELECT a FROM t INTERSECT SELECT a FROM t WHERE a > 2",
    # distinct / ordering interplay
    "SELECT DISTINCT a, b FROM t ORDER BY a DESC, b LIMIT 5",
    "SELECT DISTINCT s FROM t WHERE s LIKE '_2%'",
    # aggregates over expressions
    "SELECT SUM(a + COALESCE(b, 0)) FROM t",
    "SELECT MIN(s), MAX(s) FROM t",
    "SELECT b, AVG(a) FROM t GROUP BY b HAVING AVG(a) >= 3",
    # recursive CTE joined to data
    "WITH RECURSIVE r(n) AS (SELECT 0 UNION ALL SELECT n + 1 FROM r "
    "WHERE n < 8) SELECT COUNT(*) FROM r, t WHERE r.n = t.a",
]


def _random_rows(rng, count):
    rows = []
    for i in range(count):
        a = rng.randrange(0, 9)
        b = rng.choice([None, 1, 2, 3, 4])
        s = rng.choice([None, "x1", "x23", "y3", "zz"])
        rows.append((a, b, s))
    return rows


def _build_pair(seed, t_rows=12, u_rows=8):
    rng = random.Random(seed)
    ours = Database()
    ours.execute("CREATE TABLE t (a INTEGER, b INTEGER, s STRING)")
    ours.execute("CREATE TABLE u (a INTEGER, c INTEGER)")
    theirs = sqlite3.connect(":memory:")
    theirs.execute("CREATE TABLE t (a INTEGER, b INTEGER, s TEXT)")
    theirs.execute("CREATE TABLE u (a INTEGER, c INTEGER)")
    for row in _random_rows(rng, t_rows):
        ours.execute("INSERT INTO t VALUES (?, ?, ?)", list(row))
        theirs.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    for __ in range(u_rows):
        row = (rng.randrange(0, 9), rng.randrange(0, 6))
        ours.execute("INSERT INTO u VALUES (?, ?)", list(row))
        theirs.execute("INSERT INTO u VALUES (?, ?)", row)
    return ours, theirs


def _normalize(rows):
    out = []
    for row in rows:
        normalized = []
        for value in row:
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            normalized.append(value)
        out.append(tuple(normalized))
    return sorted(out, key=repr)


def _compare(ours, theirs, query):
    mine = _normalize(ours.execute(query).rows)
    reference = _normalize(theirs.execute(query).fetchall())
    assert mine == reference, query
    # second run re-executes the cached prepared statement (or, with the
    # cache disabled, re-parses) — either way results must not drift
    again = _normalize(ours.execute(query).rows)
    assert again == reference, f"repeat execution diverged: {query}"


class TestAgainstSqlite:
    @pytest.mark.parametrize("seed", range(5))
    def test_query_pool(self, seed):
        ours, theirs = _build_pair(seed)
        for query in QUERIES:
            _compare(ours, theirs, query)

    def test_query_pool_plan_cache_disabled(self):
        ours, theirs = _build_pair(11)
        ours.plan_cache.capacity = 0
        ours.plan_cache.invalidate_all()
        for query in QUERIES:
            _compare(ours, theirs, query)

    def test_empty_tables(self):
        ours, theirs = _build_pair(0, t_rows=0, u_rows=0)
        for query in QUERIES:
            _compare(ours, theirs, query)

    def test_single_row(self):
        ours, theirs = _build_pair(3, t_rows=1, u_rows=1)
        for query in QUERIES:
            _compare(ours, theirs, query)

    def test_indexes_do_not_change_results(self):
        ours, theirs = _build_pair(7)
        ours.execute("CREATE INDEX t_a ON t (a)")
        ours.execute("CREATE INDEX t_s ON t (s) USING sorted")
        ours.execute("CREATE INDEX u_a ON u (a)")
        for query in QUERIES:
            _compare(ours, theirs, query)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 100_000),
    t_rows=st.integers(0, 25),
    u_rows=st.integers(0, 15),
    query=st.sampled_from(QUERIES),
)
def test_property_sqlite_differential(seed, t_rows, u_rows, query):
    ours, theirs = _build_pair(seed, t_rows, u_rows)
    _compare(ours, theirs, query)
