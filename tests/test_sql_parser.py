"""Tests for SQL statement parsing (structure-level)."""

import pytest

from repro.relational import expressions as ex
from repro.relational.errors import SqlSyntaxError
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.parser import parse_statement


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        select = stmt.body
        assert len(select.items) == 2
        assert isinstance(select.from_items[0], ast.TableRef)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.body.items[0].star

    def test_qualified_star(self):
        stmt = parse_statement("SELECT v.* FROM t v")
        item = stmt.body.items[0]
        assert item.star and item.qualifier == "v"

    def test_alias_forms(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.body.items[0].alias == "x"
        assert stmt.body.items[1].alias == "y"

    def test_where_group_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a HAVING COUNT(*) > 2"
        )
        select = stmt.body
        assert select.where is not None
        assert len(select.group_by) == 1
        assert select.having is not None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").body.distinct

    def test_order_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert stmt.order_by[0].descending
        assert isinstance(stmt.limit, ex.Literal)
        assert isinstance(stmt.offset, ex.Literal)

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y"
        )
        join = stmt.body.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "left"
        assert join.left.kind == "inner"

    def test_unnest_values(self):
        stmt = parse_statement(
            "SELECT t.val FROM x p, TABLE(VALUES (p.a), (p.b)) AS t(val)"
        )
        unnest = stmt.body.from_items[1]
        assert isinstance(unnest, ast.UnnestValues)
        assert unnest.columns == ["val"]
        assert len(unnest.rows) == 2

    def test_tables_spelling_accepted(self):
        stmt = parse_statement(
            "SELECT t.val FROM x p, TABLES(VALUES (p.a)) AS t(val)"
        )
        assert isinstance(stmt.body.from_items[1], ast.UnnestValues)

    def test_subquery_source(self):
        stmt = parse_statement("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.body.from_items[0], ast.SubquerySource)

    def test_set_operations(self):
        stmt = parse_statement(
            "SELECT a FROM t UNION ALL SELECT a FROM u INTERSECT SELECT a FROM v"
        )
        top = stmt.body
        assert isinstance(top, ast.SetOp)
        assert top.op == "intersect"
        assert top.left.op == "union_all"

    def test_ctes(self):
        stmt = parse_statement(
            "WITH x AS (SELECT 1), y(a) AS (SELECT 2) SELECT * FROM y"
        )
        assert [cte.name for cte in stmt.ctes] == ["x", "y"]
        assert stmt.ctes[1].columns == ["a"]

    def test_recursive_cte_flag(self):
        stmt = parse_statement(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM r) "
            "SELECT * FROM r"
        )
        assert stmt.recursive

    def test_cte_with_order_and_limit(self):
        stmt = parse_statement(
            "WITH x AS (SELECT a FROM t ORDER BY a LIMIT 3) SELECT * FROM x"
        )
        inner = stmt.ctes[0].query
        assert isinstance(inner, ast.SelectStatement)
        assert inner.order_by and inner.limit is not None


class TestExpressionParsing:
    def expr(self, text):
        return parse_statement(f"SELECT {text} FROM t").body.items[0].expr

    def test_precedence(self):
        node = self.expr("1 + 2 * 3")
        assert isinstance(node, ex.BinaryOp) and node.op == "+"
        assert isinstance(node.right, ex.BinaryOp) and node.right.op == "*"

    def test_and_or_precedence(self):
        node = self.expr("a = 1 OR b = 2 AND c = 3")
        assert isinstance(node, ex.Or)
        assert isinstance(node.items[1], ex.And)

    def test_between(self):
        node = self.expr("a BETWEEN 1 AND 3")
        assert isinstance(node, ex.And)

    def test_not_between(self):
        node = self.expr("a NOT BETWEEN 1 AND 3")
        assert isinstance(node, ex.Not)

    def test_in_list(self):
        node = self.expr("a IN (1, 2, 3)")
        assert isinstance(node, ex.InList) and len(node.items) == 3

    def test_in_subquery(self):
        node = self.expr("a IN (SELECT b FROM u)")
        assert isinstance(node, ex.InSubquery)

    def test_not_in(self):
        node = self.expr("a NOT IN (1)")
        assert isinstance(node, ex.InList) and node.negated

    def test_like(self):
        node = self.expr("a LIKE 'x%'")
        assert isinstance(node, ex.Like)

    def test_is_not_null(self):
        node = self.expr("a IS NOT NULL")
        assert isinstance(node, ex.IsNull) and node.negated

    def test_case(self):
        node = self.expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(node, ex.CaseWhen)

    def test_cast(self):
        node = self.expr("CAST(a AS DOUBLE)")
        assert isinstance(node, ex.Cast)

    def test_count_star(self):
        node = self.expr("COUNT(*)")
        assert isinstance(node, ex.FuncCall) and node.star

    def test_count_distinct(self):
        node = self.expr("COUNT(DISTINCT a)")
        assert node.distinct

    def test_scalar_subquery(self):
        node = self.expr("(SELECT MAX(a) FROM u)")
        assert isinstance(node, ex.ScalarSubquery)

    def test_unary_minus_folds(self):
        node = self.expr("-5")
        assert isinstance(node, ex.Literal) and node.value == -5

    def test_exists(self):
        node = self.expr("EXISTS (SELECT 1 FROM u)")
        assert isinstance(node, ex.Exists)

    def test_params_numbered_in_order(self):
        stmt = parse_statement("SELECT ? FROM t WHERE a = ? AND b = ?")
        where = stmt.body.where
        assert where.items[0].right.index == 1
        assert where.items[1].right.index == 2


class TestDmlDdlParsing:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertStatement)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.UpdateStatement)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteStatement)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(40))"
        )
        assert stmt.primary_key == "id"
        assert stmt.columns[1].type_name == "VARCHAR"

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX ix ON t (a) USING sorted")
        assert stmt.unique and stmt.using == "sorted"

    def test_create_expression_index(self):
        stmt = parse_statement("CREATE INDEX ix ON t (JSON_VAL(attr, 'k'))")
        assert isinstance(stmt.expressions[0], ex.FuncCall)

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_trailing_semicolon(self):
        parse_statement("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1 FROM t nonsense nonsense")

    def test_empty_case_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT CASE END FROM t")
