"""Tests for schema reorganization after update-driven drift (paper §3.4)."""

from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph


def drifted_store():
    """Load a small graph, then add many edges with labels unknown to the
    coloring — the fallback hash conflicts and spill rows accumulate."""
    store = SQLGraphStore()
    store.load_graph(paper_figure_graph())
    for i, label in enumerate(
        ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    ):
        store.add_edge(1, 2, label, 200 + i)
        store.add_edge(4, 3, label, 300 + i)
    return store


class TestReorganize:
    def test_drift_creates_spills(self):
        store = drifted_store()
        spills = store.database.execute(
            "SELECT COUNT(*) FROM opa WHERE spill = 1"
        ).scalar()
        assert spills > 0

    def test_reorganize_removes_spills(self):
        store = drifted_store()
        report = store.reorganize()
        spills = store.database.execute(
            f"SELECT COUNT(*) FROM {store.schema.table_names['opa']} "
            "WHERE spill = 1"
        ).scalar()
        assert spills == 0
        assert report.out.spill_rows == 0
        # the new coloring has room for the new labels
        assert report.out.hashed_labels >= 9

    def test_reorganize_preserves_data(self):
        store = drifted_store()
        before_counts = (store.vertex_count(), store.edge_count())
        before_neighbors = sorted(store.run("g.v(1).out"))
        store.reorganize()
        assert (store.vertex_count(), store.edge_count()) == before_counts
        assert sorted(store.run("g.v(1).out")) == before_neighbors
        assert sorted(store.run("g.v(1).out('alpha')")) == [2]
        assert store.run("g.V.has('name','marko')") == [1]

    def test_reorganize_preserves_attribute_indexes(self):
        store = drifted_store()
        store.create_attribute_index("vertex", "name")
        store.reorganize()
        index = store.database.table(
            store.schema.table_names["va"]
        ).find_index("json_val(col(attr),'name')")
        assert index is not None
        assert store.run("g.V('name','josh')") == [4]

    def test_reorganize_drops_tombstones(self):
        store = drifted_store()
        store.remove_vertex(2)
        store.reorganize()
        negatives = store.database.execute(
            f"SELECT COUNT(*) FROM {store.schema.table_names['va']} "
            "WHERE vid < 0"
        ).scalar()
        assert negatives == 0  # reorganization doubles as offline cleanup
        assert store.get_vertex(2) is None

    def test_crud_still_works_after_reorganize(self):
        store = drifted_store()
        store.reorganize()
        vid = store.add_vertex(properties={"name": "post-reorg"})
        store.add_edge(vid, 1, "knows")
        assert store.run(f"g.v({vid}).out('knows')") == [1]
