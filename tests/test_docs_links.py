"""The docs-link checker passes on the repo and catches planted drift."""

import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs_links  # noqa: E402


def test_repo_docs_are_clean():
    report = check_docs_links.run()
    assert report == {}, f"dead doc references: {report}"


def test_cli_commands_extracted():
    commands = check_docs_links.cli_commands()
    assert {":translate", ":explain", ":analyze", ":sql", ":stats",
            ":help", ":quit"} <= commands


def test_detects_dead_markdown_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [here](no/such/file.py) for details\n")
    problems = check_docs_links.check_file(doc, set())
    assert problems == ["dead link: (no/such/file.py)"]


def test_detects_missing_file_reference(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("look at `src/repro/nonexistent.py` sometime\n")
    problems = check_docs_links.check_file(doc, set())
    assert problems == ["missing file reference: `src/repro/nonexistent.py`"]


def test_detects_unknown_cli_command(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("type `:frobnicate` in the shell\n")
    problems = check_docs_links.check_file(doc, {":stats"})
    assert len(problems) == 1
    assert ":frobnicate" in problems[0]


def test_known_cli_command_and_external_links_ok(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "type `:stats` — docs at [site](https://example.com) "
        "and [anchor](#section)\n"
    )
    assert check_docs_links.check_file(doc, {":stats"}) == []


def test_command_line_entry_point():
    result = subprocess.run(
        [sys.executable, str(TOOLS / "check_docs_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout


# --- cross-file sync checks (EXPLAIN ANALYZE fields, benchmark numbers) ---

from repro.analysis import docs as docs_mod  # noqa: E402


def _plant_stats(root, fields='("actual_rows", "batches", "time")'):
    stats = root / "src" / "repro" / "obs"
    stats.mkdir(parents=True)
    (stats / "stats.py").write_text(
        f"EXPLAIN_ANNOTATION_FIELDS = {fields}\n"
    )


def test_annotation_fields_parsed_from_source(tmp_path):
    _plant_stats(tmp_path)
    assert docs_mod.explain_annotation_fields(tmp_path) == (
        "actual_rows", "batches", "time",
    )


def test_documented_annotation_fields_pass(tmp_path):
    _plant_stats(tmp_path)
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text(
        "`actual_rows` counts rows, `batches` counts blocks, and the\n"
        "`(actual_rows=N batches=B time=T)` annotation shows `time` too.\n"
    )
    assert docs_mod.check_annotation_fields(tmp_path) == []


def test_undocumented_annotation_field_flagged(tmp_path):
    _plant_stats(tmp_path)
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text(
        "`actual_rows` and `time` are documented, batches is not "
        "backticked anywhere.\n"
    )
    problems = docs_mod.check_annotation_fields(tmp_path)
    assert len(problems) == 1
    assert "`batches`" in problems[0][2]


def _plant_benchmark(root, summary, doc_text):
    results = root / "benchmarks" / "results"
    results.mkdir(parents=True)
    import json
    (results / "BENCH_vectorized.json").write_text(
        json.dumps({"summary": summary})
    )
    (root / "docs").mkdir(exist_ok=True)
    (root / "docs" / "EXECUTION.md").write_text(doc_text)


def test_benchmark_summary_in_sync_passes(tmp_path):
    _plant_benchmark(
        tmp_path,
        {"fig8": "2.1x on the warm path", "command": "pytest -q"},
        "The executor wins 2.1x on the warm path; rerun via `pytest -q`.\n",
    )
    assert docs_mod.check_benchmark_sync(tmp_path) == []


def test_stale_benchmark_summary_flagged(tmp_path):
    _plant_benchmark(
        tmp_path,
        {"fig8": "3.0x on the warm path"},
        "The handbook still says 2.1x on the warm path.\n",
    )
    problems = docs_mod.check_benchmark_sync(tmp_path)
    assert len(problems) == 1
    assert "3.0x on the warm path" in problems[0][2]
    assert problems[0][0] == "docs/EXECUTION.md"


def test_missing_benchmark_record_is_not_a_finding(tmp_path):
    # no committed BENCH_vectorized.json -> nothing to sync against
    assert docs_mod.check_benchmark_sync(tmp_path) == []


def test_repo_sync_checks_are_clean():
    root = TOOLS.parent
    assert docs_mod.sync_problems(root) == []
