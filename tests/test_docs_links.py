"""The docs-link checker passes on the repo and catches planted drift."""

import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs_links  # noqa: E402


def test_repo_docs_are_clean():
    report = check_docs_links.run()
    assert report == {}, f"dead doc references: {report}"


def test_cli_commands_extracted():
    commands = check_docs_links.cli_commands()
    assert {":translate", ":explain", ":analyze", ":sql", ":stats",
            ":help", ":quit"} <= commands


def test_detects_dead_markdown_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [here](no/such/file.py) for details\n")
    problems = check_docs_links.check_file(doc, set())
    assert problems == ["dead link: (no/such/file.py)"]


def test_detects_missing_file_reference(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("look at `src/repro/nonexistent.py` sometime\n")
    problems = check_docs_links.check_file(doc, set())
    assert problems == ["missing file reference: `src/repro/nonexistent.py`"]


def test_detects_unknown_cli_command(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("type `:frobnicate` in the shell\n")
    problems = check_docs_links.check_file(doc, {":stats"})
    assert len(problems) == 1
    assert ":frobnicate" in problems[0]


def test_known_cli_command_and_external_links_ok(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "type `:stats` — docs at [site](https://example.com) "
        "and [anchor](#section)\n"
    )
    assert check_docs_links.check_file(doc, {":stats"}) == []


def test_command_line_entry_point():
    result = subprocess.run(
        [sys.executable, str(TOOLS / "check_docs_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout
