"""Wire-protocol framing and handshake edge cases.

Covers the hostile-input surface of :mod:`repro.server.protocol`: torn
frames, oversized frames, garbage bytes, CRC corruption, protocol-version
mismatch at handshake, and half-open connection reaping.
"""

import socket
import struct
import threading
import time
import zlib

import pytest

from repro.cli import build_store
from repro.client import ClientError, SQLGraphClient
from repro.server import (
    FrameAssembler,
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SQLGraphServer,
    WireError,
)
from repro.server import protocol
from repro.server.protocol import (
    RETRYABLE_CODES,
    code_for_exception,
    decode_payload,
    encode_frame,
    error_payload,
)
from repro.relational.errors import (
    BindError,
    CatalogError,
    LockTimeoutError,
    SqlSyntaxError,
    TransactionError,
)
from repro.gremlin.errors import GremlinError


# ---------------------------------------------------------------------------
# pure framing (no sockets)
# ---------------------------------------------------------------------------
class TestFrameAssembler:
    def test_roundtrip(self):
        assembler = FrameAssembler()
        message = {"op": "ping", "id": 7, "nested": {"a": [1, 2, None]}}
        assembler.feed(encode_frame(message))
        assert assembler.next_message() == message
        assert assembler.next_message() is None

    def test_torn_frame_reassembles_byte_by_byte(self):
        assembler = FrameAssembler()
        frame = encode_frame({"op": "ping", "id": 1})
        for offset in range(len(frame) - 1):
            assembler.feed(frame[offset:offset + 1])
            assert assembler.next_message() is None
        assembler.feed(frame[-1:])
        assert assembler.next_message() == {"op": "ping", "id": 1}

    def test_two_frames_in_one_feed(self):
        assembler = FrameAssembler()
        assembler.feed(encode_frame({"id": 1}) + encode_frame({"id": 2}))
        assert assembler.next_message() == {"id": 1}
        assert assembler.next_message() == {"id": 2}
        assert assembler.next_message() is None

    def test_oversized_frame_rejected(self):
        assembler = FrameAssembler()
        header = struct.pack("<II", MAX_FRAME_BYTES + 1, 0)
        assembler.feed(header)
        with pytest.raises(FrameError, match="oversized"):
            assembler.next_message()

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})

    def test_crc_mismatch_rejected(self):
        frame = bytearray(encode_frame({"op": "ping"}))
        frame[-1] ^= 0xFF  # flip a payload bit; CRC no longer matches
        assembler = FrameAssembler()
        assembler.feed(bytes(frame))
        with pytest.raises(FrameError, match="CRC"):
            assembler.next_message()

    def test_garbage_payload_with_valid_crc_rejected(self):
        payload = b"\x00\xffnot json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        assembler = FrameAssembler()
        assembler.feed(frame)
        with pytest.raises(FrameError, match="undecodable"):
            assembler.next_message()

    def test_decode_payload_requires_object(self):
        payload = b"[1, 2, 3]"
        with pytest.raises(FrameError, match="object"):
            decode_payload(payload)


class TestErrorCodes:
    def test_retryable_set_is_closed(self):
        assert RETRYABLE_CODES == {
            protocol.SERVER_BUSY,
            protocol.SHUTTING_DOWN,
            protocol.LOCK_TIMEOUT,
            protocol.STATEMENT_TIMEOUT,
        }

    def test_error_payload_carries_retryable_flag(self):
        busy = error_payload(protocol.SERVER_BUSY, "busy")
        assert busy["retryable"] is True
        syntax = error_payload(protocol.SQL_SYNTAX, "nope")
        assert syntax["retryable"] is False

    @pytest.mark.parametrize("exc,code", [
        (LockTimeoutError("t"), protocol.LOCK_TIMEOUT),
        (SqlSyntaxError("t"), protocol.SQL_SYNTAX),
        (BindError("t"), protocol.BIND_ERROR),
        (CatalogError("t"), protocol.CATALOG_ERROR),
        (TransactionError("t"), protocol.TRANSACTION_ERROR),
        (GremlinError("t"), protocol.GREMLIN_ERROR),
        (RuntimeError("t"), protocol.INTERNAL_ERROR),
    ])
    def test_exception_mapping(self, exc, code):
        assert code_for_exception(exc) == code

    def test_wire_error_roundtrip(self):
        payload = error_payload(protocol.LOCK_TIMEOUT, "lock wait timed out")
        error = WireError.from_payload(payload)
        assert error.code == protocol.LOCK_TIMEOUT
        assert error.retryable is True
        assert "lock wait" in str(error)


# ---------------------------------------------------------------------------
# live server: hostile clients
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    store = build_store("tinker")
    server = SQLGraphServer(
        store, port=0, max_workers=2, max_queue=2, idle_timeout_s=0.5
    ).start()
    yield server
    server.shutdown(drain_timeout_s=1.0)


def _raw_connection(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _recv_reply(sock):
    assembler = FrameAssembler()
    sock.settimeout(5.0)
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        assembler.feed(chunk)
        message = assembler.next_message()
        if message is not None:
            return message


class TestHandshake:
    def test_version_mismatch_rejected(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({
                "op": "hello", "protocol": PROTOCOL_VERSION + 1,
            }))
            reply = _recv_reply(sock)
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.UNSUPPORTED_PROTOCOL
        assert str(PROTOCOL_VERSION) in reply["error"]["message"]

    def test_first_frame_must_be_hello(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({"op": "ping", "id": 1}))
            reply = _recv_reply(sock)
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.PROTOCOL_ERROR

    def test_client_surfaces_version_mismatch(self, server, monkeypatch):
        import repro.client as client_module
        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 99)
        with pytest.raises(WireError) as excinfo:
            SQLGraphClient("127.0.0.1", server.port).connect()
        assert excinfo.value.code == protocol.UNSUPPORTED_PROTOCOL


class TestHostileFrames:
    def test_garbage_after_handshake_gets_protocol_error(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({
                "op": "hello", "protocol": PROTOCOL_VERSION,
            }))
            hello = _recv_reply(sock)
            assert hello["op"] == "hello"
            payload = b"garbage"
            sock.sendall(
                struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
            )
            reply = _recv_reply(sock)
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.PROTOCOL_ERROR

    def test_oversized_frame_header_closes_connection(self, server):
        before = server.protocol_errors
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({
                "op": "hello", "protocol": PROTOCOL_VERSION,
            }))
            _recv_reply(sock)
            sock.sendall(struct.pack("<II", MAX_FRAME_BYTES + 1, 0))
            reply = _recv_reply(sock)
            assert reply["error"]["code"] == protocol.PROTOCOL_ERROR
            # server hangs up after a framing violation
            sock.settimeout(5.0)
            assert sock.recv(65536) == b""
        assert server.protocol_errors > before

    def test_corrupt_crc_midstream(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({
                "op": "hello", "protocol": PROTOCOL_VERSION,
            }))
            _recv_reply(sock)
            frame = bytearray(encode_frame({"op": "ping", "id": 1}))
            frame[-1] ^= 0xFF
            sock.sendall(bytes(frame))
            reply = _recv_reply(sock)
        assert reply["error"]["code"] == protocol.PROTOCOL_ERROR


class TestHalfOpenReaping:
    def test_idle_session_is_reaped(self, server):
        before = server.idle_reaped
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({
                "op": "hello", "protocol": PROTOCOL_VERSION,
            }))
            _recv_reply(sock)
            # go silent: the 0.5s idle timeout must reap us
            reply = _recv_reply(sock)
            assert reply["ok"] is False
            assert reply["error"]["code"] == protocol.SESSION_IDLE
            sock.settimeout(5.0)
            assert sock.recv(65536) == b""
        assert server.idle_reaped > before

    def test_reaped_transaction_is_rolled_back(self, server):
        store = server.store
        baseline = store.execute_sql(
            "SELECT COUNT(*) FROM va WHERE vid >= 0"
        ).rows[0][0]
        client = SQLGraphClient("127.0.0.1", server.port).connect()
        client.begin()
        client.sql("INSERT INTO va VALUES (?, ?)", [9001, {"ghost": "yes"}])
        # abandon the connection without commit; wait out the reaper
        deadline = time.monotonic() + 5.0
        session_id = client.session_id
        abandoned = client._sock  # keep the fd open: half-open from server's view
        client._sock = None
        assert abandoned is not None
        while time.monotonic() < deadline:
            if all(s["id"] != session_id for s in server.active_sessions()):
                break
            time.sleep(0.05)
        else:
            pytest.fail("session was never reaped")
        after = store.execute_sql(
            "SELECT COUNT(*) FROM va WHERE vid >= 0"
        ).rows[0][0]
        assert after == baseline
