"""Tests for the expression language: 3VL, LIKE, JSON, functions."""

import pytest
from hypothesis import given, strategies as st

from repro.relational import expressions as ex
from repro.relational.errors import BindError
from repro.relational.schema import ColumnType


def const_ctx():
    def resolver(qualifier, name):
        raise BindError("no columns")

    return ex.CompileContext(resolver, ex.default_functions())


def evaluate(expression):
    return expression.compile(const_ctx())(None)


def lit(value):
    return ex.Literal(value)


class TestComparisons:
    def test_equality(self):
        assert evaluate(ex.Comparison("=", lit(3), lit(3))) is True
        assert evaluate(ex.Comparison("=", lit(3), lit(4))) is False

    def test_numeric_cross_type_equality(self):
        assert evaluate(ex.Comparison("=", lit(3), lit(3.0))) is True

    def test_string_int_not_equal(self):
        assert evaluate(ex.Comparison("=", lit("3"), lit(3))) is False

    def test_null_propagates(self):
        assert evaluate(ex.Comparison("=", lit(None), lit(3))) is None
        assert evaluate(ex.Comparison("<", lit(None), lit(None))) is None

    def test_ordering(self):
        assert evaluate(ex.Comparison("<", lit(3), lit(4))) is True
        assert evaluate(ex.Comparison(">=", lit("b"), lit("a"))) is True

    def test_not_equal_normalization(self):
        node = ex.Comparison("!=", lit(1), lit(2))
        assert node.op == "<>"
        assert evaluate(node) is True


class TestBooleanLogic:
    def test_and_kleene(self):
        assert evaluate(ex.And([lit(True), lit(None)])) is None
        assert evaluate(ex.And([lit(False), lit(None)])) is False
        assert evaluate(ex.And([lit(True), lit(True)])) is True

    def test_or_kleene(self):
        assert evaluate(ex.Or([lit(False), lit(None)])) is None
        assert evaluate(ex.Or([lit(True), lit(None)])) is True
        assert evaluate(ex.Or([lit(False), lit(False)])) is False

    def test_not(self):
        assert evaluate(ex.Not(lit(True))) is False
        assert evaluate(ex.Not(lit(None))) is None

    def test_is_null(self):
        assert evaluate(ex.IsNull(lit(None))) is True
        assert evaluate(ex.IsNull(lit(3), negated=True)) is True


class TestArithmetic:
    def test_basics(self):
        assert evaluate(ex.BinaryOp("+", lit(2), lit(3))) == 5
        assert evaluate(ex.BinaryOp("*", lit(2.5), lit(2))) == 5.0
        assert evaluate(ex.BinaryOp("%", lit(7), lit(3))) == 1

    def test_integer_division_stays_integral(self):
        assert evaluate(ex.BinaryOp("/", lit(6), lit(3))) == 2
        assert evaluate(ex.BinaryOp("/", lit(7), lit(2))) == 3.5

    def test_division_by_zero_is_null(self):
        assert evaluate(ex.BinaryOp("/", lit(1), lit(0))) is None
        assert evaluate(ex.BinaryOp("%", lit(1), lit(0))) is None

    def test_null_propagates(self):
        assert evaluate(ex.BinaryOp("+", lit(None), lit(3))) is None

    def test_concat_strings(self):
        assert evaluate(ex.BinaryOp("||", lit("a"), lit("b"))) == "ab"

    def test_concat_appends_to_tuple(self):
        assert evaluate(ex.BinaryOp("||", lit((1, 2)), lit(3))) == (1, 2, 3)


class TestLike:
    def cases(self):
        return [
            ("abc", "abc", True),
            ("abc", "a%", True),
            ("abc", "%c", True),
            ("abc", "a_c", True),
            ("abc", "a_d", False),
            ("a.c", "a.c", True),
            ("axc", "a.c", False),  # dot is literal, not regex
            ("", "%", True),
        ]

    def test_patterns(self):
        for value, pattern, expected in self.cases():
            node = ex.Like(lit(value), lit(pattern))
            assert evaluate(node) is expected, (value, pattern)

    def test_negated(self):
        assert evaluate(ex.Like(lit("abc"), lit("z%"), negated=True)) is True

    def test_null(self):
        assert evaluate(ex.Like(lit(None), lit("a%"))) is None


class TestInList:
    def test_membership(self):
        node = ex.InList(lit(2), [lit(1), lit(2)])
        assert evaluate(node) is True

    def test_not_in_with_null_is_unknown(self):
        node = ex.InList(lit(3), [lit(1), lit(None)])
        assert evaluate(node) is None

    def test_negated(self):
        node = ex.InList(lit(3), [lit(1), lit(2)], negated=True)
        assert evaluate(node) is True


class TestFunctions:
    def test_coalesce(self):
        node = ex.FuncCall("coalesce", [lit(None), lit(None), lit(7)])
        assert evaluate(node) == 7

    def test_coalesce_all_null(self):
        assert evaluate(ex.FuncCall("coalesce", [lit(None)])) is None

    def test_json_val(self):
        doc = {"a": {"b": [10, 20]}, "x": 5}
        assert ex.json_val(doc, "x") == 5
        assert ex.json_val(doc, "a.b.1") == 20
        assert ex.json_val(doc, "missing") is None
        assert ex.json_val(doc, "x.deeper") is None
        assert ex.json_val(None, "x") is None

    def test_string_functions(self):
        functions = ex.default_functions()
        assert functions["upper"]("abc") == "ABC"
        assert functions["length"]("abcd") == 4
        assert functions["substr"]("hello", 2, 3) == "ell"

    def test_path_helpers(self):
        functions = ex.default_functions()
        assert functions["path_init"](5) == (5,)
        assert functions["element_at"]((1, 2, 3), 1) == 2
        assert functions["element_at"]((1,), 9) is None
        assert functions["path_prefix"]((1, 2, 3), 1) == (1, 2)
        assert functions["issimplepath"]((1, 2, 3)) == 1
        assert functions["issimplepath"]((1, 2, 1)) == 0

    def test_unknown_function_raises(self):
        with pytest.raises(BindError):
            ex.FuncCall("nosuch", []).compile(const_ctx())

    def test_cast(self):
        assert evaluate(ex.Cast(lit("12"), ColumnType.INTEGER)) == 12
        assert evaluate(ex.Cast(lit("x"), ColumnType.INTEGER)) is None


class TestCase:
    def test_case_branches(self):
        node = ex.CaseWhen(
            [(lit(False), lit(1)), (lit(True), lit(2))], otherwise=lit(3)
        )
        assert evaluate(node) == 2

    def test_case_default(self):
        node = ex.CaseWhen([(lit(False), lit(1))], otherwise=lit(3))
        assert evaluate(node) == 3

    def test_case_no_default_is_null(self):
        node = ex.CaseWhen([(lit(False), lit(1))])
        assert evaluate(node) is None


class TestColumnsAndParams:
    def test_column_resolution(self):
        ctx = ex.CompileContext(lambda q, n: {"a": 0, "b": 1}[n], {})
        fn = ex.ColumnRef(None, "b").compile(ctx)
        assert fn((10, 20)) == 20

    def test_parameter_substitution(self):
        node = ex.Comparison("=", ex.ColumnRef(None, "a"), ex.Parameter(0))
        fixed = ex.substitute_parameters(node, [42])
        assert isinstance(fixed.right, ex.Literal)
        assert fixed.right.value == 42

    def test_missing_parameter_raises(self):
        node = ex.Parameter(1)
        with pytest.raises(BindError):
            ex.substitute_parameters(node, [1])

    def test_references(self):
        node = ex.And(
            [
                ex.Comparison("=", ex.ColumnRef("t", "a"), lit(1)),
                ex.IsNull(ex.ColumnRef(None, "b")),
            ]
        )
        assert node.references() == {("t", "a"), (None, "b")}


class TestFingerprints:
    def test_column_fingerprint_is_qualifier_free(self):
        assert ex.ColumnRef("t", "a").fingerprint() == ex.ColumnRef(
            None, "a"
        ).fingerprint()

    def test_func_fingerprint(self):
        node = ex.FuncCall("json_val", [ex.ColumnRef("p", "attr"), lit("k")])
        assert node.fingerprint() == "json_val(col(attr),'k')"


@given(st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text()),
       st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text()))
def test_compare_values_total(left, right):
    """compare_values never raises and returns bool/None for any op."""
    for op in ("=", "<>", "<", "<=", ">", ">="):
        result = ex.compare_values(op, left, right)
        assert result is None or isinstance(result, bool)
