"""The analysis regression corpus: known-bug fixtures reprolint must flag.

Each fixture under ``tests/fixtures/reprolint_regressions/`` freezes a
real bug a rule was built to catch, next to a fixed twin the rule must
stay silent on.  The CI analysis job runs this module, so a rule
regression (the bug pattern no longer detected, or the fix pattern
newly flagged) fails the build even though the live tree is clean.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "reprolint_regressions"


def _walflow_findings(path):
    report = lint_paths(FIXTURES, [path], select=["wal-commit-reachability"])
    return report.findings


class TestPr9MissingCommitPoint:
    """The PR-9 GraphProcedures durability bug stays detected."""

    def test_broken_twin_is_flagged(self):
        findings = _walflow_findings(FIXTURES / "pr9_missing_commit.py")
        flagged = {f.symbol.split(":", 1)[0] for f in findings}
        # both broken procedures, each at its mutation site
        assert "BrokenProcedures.add_vertex" in flagged
        assert "BrokenProcedures.update_vertex" in flagged
        assert all(f.rule == "wal-commit-reachability" for f in findings)

    def test_fixed_twin_is_clean(self):
        assert _walflow_findings(FIXTURES / "pr9_fixed_commit.py") == []

    def test_driver_flags_broken_twin(self):
        """The exact CI invocation: the CLI exits 1 and names the rule."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
             "--select", "wal-commit-reachability",
             str(FIXTURES / "pr9_missing_commit.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "wal-commit-reachability" in result.stdout
        assert "BrokenProcedures.add_vertex" in result.stdout

    def test_driver_passes_fixed_twin(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
             "--select", "wal-commit-reachability",
             str(FIXTURES / "pr9_fixed_commit.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
