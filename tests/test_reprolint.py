"""The reprolint framework and rules, driven over fixture snippets.

Each rule gets a minimal offending snippet (finding expected) and a
compliant twin (no finding); the framework tests cover suppressions,
baselines, rule selection, and the self-run asserting the real tree is
clean with zero unbaselined findings.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import all_rules, lint_paths
from repro.analysis.core import load_baseline, write_baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, source, select, name="snippet.py"):
    """Lint one dedented snippet with the given rules; returns findings."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    report = lint_paths(tmp_path, [path], select=select)
    return report.findings


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


# ---------------------------------------------------------------------------
# guarded-by
# ---------------------------------------------------------------------------

GUARDED_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            self.counter += 1
"""

GUARDED_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self.counter += 1
"""

GUARDED_HOLDS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self._bump_locked()

        def _bump_locked(self):  # holds: _lock
            self.counter += 1
"""

GUARDED_COMMENT_ABOVE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            # guarded-by: _lock
            self.counter = 0

        def read(self):
            return self.counter
"""


def test_guarded_by_flags_unlocked_access(tmp_path):
    findings = lint_snippet(tmp_path, GUARDED_BAD, ["guarded-by"])
    assert rules_of(findings) == ["guarded-by"]
    assert findings[0].symbol == "Store.bump:counter"
    assert "_lock" in findings[0].message


def test_guarded_by_accepts_with_block(tmp_path):
    assert lint_snippet(tmp_path, GUARDED_GOOD, ["guarded-by"]) == []


def test_guarded_by_accepts_holds_helper(tmp_path):
    assert lint_snippet(tmp_path, GUARDED_HOLDS, ["guarded-by"]) == []


def test_guarded_by_reads_comment_above(tmp_path):
    findings = lint_snippet(tmp_path, GUARDED_COMMENT_ABOVE, ["guarded-by"])
    assert rules_of(findings) == ["guarded-by"]
    assert findings[0].symbol == "Store.read:counter"


def test_guarded_by_lambda_inherits_held_set(tmp_path):
    snippet = """
        import threading

        class RWL:
            def __init__(self):
                self._condition = threading.Condition()
                self._writer = False  # guarded-by: _condition

            def acquire(self):
                with self._condition:
                    self._condition.wait_for(lambda: not self._writer)
    """
    assert lint_snippet(tmp_path, snippet, ["guarded-by"]) == []


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------

LOCK_CYCLE = """
    import threading

    class A:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()

        def forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def backward(self):
            with self.lock_b:
                with self.lock_a:
                    pass
"""

LOCK_ORDERED = """
    import threading

    class A:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()

        def forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def also_forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass
"""

LOCK_CHAIN_VIA_CALL = """
    import threading

    class Wal:
        def __init__(self):
            self._lock = threading.Lock()

        def append(self):
            with self._lock:
                pass

    class Db:
        def __init__(self):
            self._guard = threading.Lock()
            self.wal = Wal()

        def commit(self):
            with self._guard:
                self.wal.append()
"""

LOCK_CYCLE_VIA_CALL = """
    import threading

    class Wal:
        def __init__(self):
            self._lock = threading.Lock()

        def append(self):
            with self._lock:
                self.db.commit()

    class Db:
        def __init__(self):
            self._guard = threading.Lock()
            self.wal = Wal()

        def commit(self):
            with self._guard:
                self.wal.append()

    def make_db():
        db = Db()
        return db
"""


def test_lock_order_detects_cycle(tmp_path):
    findings = lint_snippet(tmp_path, LOCK_CYCLE, ["lock-order"])
    assert rules_of(findings) == ["lock-order"]
    assert "A.lock_a" in findings[0].message
    assert "A.lock_b" in findings[0].message


def test_lock_order_accepts_consistent_order(tmp_path):
    assert lint_snippet(tmp_path, LOCK_ORDERED, ["lock-order"]) == []


def test_lock_order_follows_resolved_calls(tmp_path):
    # Db.commit holds _guard and calls Wal.append (receiver resolved via
    # the `self.wal = Wal()` assignment): Db._guard -> Wal._lock, acyclic.
    assert lint_snippet(tmp_path, LOCK_CHAIN_VIA_CALL, ["lock-order"]) == []
    # Close the loop — Wal.append calls back into Db.commit while holding
    # Wal._lock — and the transitive cycle must fire.
    findings = lint_snippet(tmp_path, LOCK_CYCLE_VIA_CALL, ["lock-order"])
    assert rules_of(findings) == ["lock-order"]
    assert "Wal._lock" in findings[0].message
    assert "Db._guard" in findings[0].message


# ---------------------------------------------------------------------------
# hygiene rules
# ---------------------------------------------------------------------------

def test_broad_except_flags_swallower(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_broad_except_accepts_reraise_and_narrow(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:
                raise

        def g():
            try:
                return 1
            except ValueError:
                return None
    """
    assert lint_snippet(tmp_path, snippet, ["broad-except"]) == []


def test_bare_except_flagged(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except:
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_mutable_default_flagged(tmp_path):
    snippet = """
        def f(items=[], *, mapping={}, fine=None, n=3):
            return items, mapping, fine, n
    """
    findings = lint_snippet(tmp_path, snippet, ["mutable-default"])
    assert sorted(f.symbol for f in findings) == ["f:items", "f:mapping"]


def test_raw_table_mutation_flagged_outside_physical_layer(tmp_path):
    snippet = """
        def sneak(table, rid, row):
            table.apply_insert(rid, row)
    """
    findings = lint_snippet(tmp_path, snippet, ["raw-table-mutation"])
    assert rules_of(findings) == ["raw-table-mutation"]
    # the same code inside the recovery layer is the intended use
    layer = tmp_path / "relational"
    layer.mkdir()
    path = layer / "recovery.py"
    path.write_text(textwrap.dedent(snippet))
    report = lint_paths(tmp_path, [path], select=["raw-table-mutation"])
    assert report.findings == []


def test_wal_order_flags_append_after_commit(tmp_path):
    snippet = """
        def finish(wal, record):
            wal.commit_point()
            wal.append(record)
    """
    findings = lint_snippet(tmp_path, snippet, ["wal-order"])
    assert rules_of(findings) == ["wal-order"]


def test_wal_order_accepts_append_before_commit(tmp_path):
    snippet = """
        def finish(wal, records):
            for record in records:
                wal.append(record)
            wal.commit_point()

        def unrelated(log):
            log.commit_point() if hasattr(log, "commit_point") else None
            items = []
            items.append(1)
    """
    assert lint_snippet(tmp_path, snippet, ["wal-order"]) == []


# ---------------------------------------------------------------------------
# framework: suppressions, baseline, selection, parse errors
# ---------------------------------------------------------------------------

def test_suppression_silences_rule_on_line(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:  # reprolint: disable=broad-except -- fixture
                return None
    """
    assert lint_snippet(tmp_path, snippet, ["broad-except"]) == []


def test_suppression_is_rule_specific(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:  # reprolint: disable=mutable-default
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_baseline_downgrades_known_findings(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(GUARDED_BAD))
    first = lint_paths(tmp_path, [path], select=["guarded-by"])
    assert first.exit_code == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    baseline = load_baseline(baseline_path)
    second = lint_paths(tmp_path, [path], select=["guarded-by"],
                        baseline=baseline)
    assert second.exit_code == 0
    assert [f.baselined for f in second.findings] == [True]

    # fingerprints ignore line numbers: shifting the file keeps the match
    path.write_text("# a new leading comment\n"
                    + textwrap.dedent(GUARDED_BAD))
    third = lint_paths(tmp_path, [path], select=["guarded-by"],
                       baseline=baseline)
    assert third.exit_code == 0


def test_unknown_rule_selection_raises(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text("x = 1\n")
    with pytest.raises(KeyError):
        lint_paths(tmp_path, [path], select=["no-such-rule"])


def test_parse_error_is_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    report = lint_paths(tmp_path, [path], select=["broad-except"])
    assert rules_of(report.findings) == ["parse-error"]
    assert report.exit_code == 1


def test_rule_registry_is_complete():
    assert set(all_rules()) >= {
        "guarded-by", "lock-order", "broad-except", "mutable-default",
        "raw-table-mutation", "wal-order", "sql-invariants", "docs-links",
    }


# ---------------------------------------------------------------------------
# the tree itself is clean
# ---------------------------------------------------------------------------

def test_self_run_src_repro_is_clean():
    """src/repro (+ docs + corpus) has zero unbaselined findings."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--format", "json"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["new"] == 0
    assert payload["baselined"] == 0  # the baseline is empty; keep it so


def test_driver_fails_on_injected_violation(tmp_path):
    """The CLI exits nonzero and names the rule on a fresh violation."""
    path = tmp_path / "bad.py"
    path.write_text(textwrap.dedent(GUARDED_BAD))
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--select", "guarded-by", str(path)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 1
    assert "guarded-by" in result.stdout
