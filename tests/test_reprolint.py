"""The reprolint framework and rules, driven over fixture snippets.

Each rule gets a minimal offending snippet (finding expected) and a
compliant twin (no finding); the framework tests cover suppressions,
baselines, rule selection, and the self-run asserting the real tree is
clean with zero unbaselined findings.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import all_rules, lint_paths
from repro.analysis.core import load_baseline, write_baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, source, select, name="snippet.py"):
    """Lint one dedented snippet with the given rules; returns findings."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    report = lint_paths(tmp_path, [path], select=select)
    return report.findings


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


# ---------------------------------------------------------------------------
# guarded-by
# ---------------------------------------------------------------------------

GUARDED_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            self.counter += 1
"""

GUARDED_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self.counter += 1
"""

GUARDED_HOLDS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self._bump_locked()

        def _bump_locked(self):  # holds: _lock
            self.counter += 1
"""

GUARDED_COMMENT_ABOVE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            # guarded-by: _lock
            self.counter = 0

        def read(self):
            return self.counter
"""


def test_guarded_by_flags_unlocked_access(tmp_path):
    findings = lint_snippet(tmp_path, GUARDED_BAD, ["guarded-by"])
    assert rules_of(findings) == ["guarded-by"]
    assert findings[0].symbol == "Store.bump:counter"
    assert "_lock" in findings[0].message


def test_guarded_by_accepts_with_block(tmp_path):
    assert lint_snippet(tmp_path, GUARDED_GOOD, ["guarded-by"]) == []


def test_guarded_by_accepts_holds_helper(tmp_path):
    assert lint_snippet(tmp_path, GUARDED_HOLDS, ["guarded-by"]) == []


def test_guarded_by_reads_comment_above(tmp_path):
    findings = lint_snippet(tmp_path, GUARDED_COMMENT_ABOVE, ["guarded-by"])
    assert rules_of(findings) == ["guarded-by"]
    assert findings[0].symbol == "Store.read:counter"


def test_guarded_by_lambda_inherits_held_set(tmp_path):
    snippet = """
        import threading

        class RWL:
            def __init__(self):
                self._condition = threading.Condition()
                self._writer = False  # guarded-by: _condition

            def acquire(self):
                with self._condition:
                    self._condition.wait_for(lambda: not self._writer)
    """
    assert lint_snippet(tmp_path, snippet, ["guarded-by"]) == []


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------

LOCK_CYCLE = """
    import threading

    class A:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()

        def forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def backward(self):
            with self.lock_b:
                with self.lock_a:
                    pass
"""

LOCK_ORDERED = """
    import threading

    class A:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()

        def forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def also_forward(self):
            with self.lock_a:
                with self.lock_b:
                    pass
"""

LOCK_CHAIN_VIA_CALL = """
    import threading

    class Wal:
        def __init__(self):
            self._lock = threading.Lock()

        def append(self):
            with self._lock:
                pass

    class Db:
        def __init__(self):
            self._guard = threading.Lock()
            self.wal = Wal()

        def commit(self):
            with self._guard:
                self.wal.append()
"""

LOCK_CYCLE_VIA_CALL = """
    import threading

    class Wal:
        def __init__(self):
            self._lock = threading.Lock()

        def append(self):
            with self._lock:
                self.db.commit()

    class Db:
        def __init__(self):
            self._guard = threading.Lock()
            self.wal = Wal()

        def commit(self):
            with self._guard:
                self.wal.append()

    def make_db():
        db = Db()
        return db
"""


def test_lock_order_detects_cycle(tmp_path):
    findings = lint_snippet(tmp_path, LOCK_CYCLE, ["lock-order"])
    assert rules_of(findings) == ["lock-order"]
    assert "A.lock_a" in findings[0].message
    assert "A.lock_b" in findings[0].message


def test_lock_order_accepts_consistent_order(tmp_path):
    assert lint_snippet(tmp_path, LOCK_ORDERED, ["lock-order"]) == []


def test_lock_order_follows_resolved_calls(tmp_path):
    # Db.commit holds _guard and calls Wal.append (receiver resolved via
    # the `self.wal = Wal()` assignment): Db._guard -> Wal._lock, acyclic.
    assert lint_snippet(tmp_path, LOCK_CHAIN_VIA_CALL, ["lock-order"]) == []
    # Close the loop — Wal.append calls back into Db.commit while holding
    # Wal._lock — and the transitive cycle must fire.
    findings = lint_snippet(tmp_path, LOCK_CYCLE_VIA_CALL, ["lock-order"])
    assert rules_of(findings) == ["lock-order"]
    assert "Wal._lock" in findings[0].message
    assert "Db._guard" in findings[0].message


# ---------------------------------------------------------------------------
# hygiene rules
# ---------------------------------------------------------------------------

def test_broad_except_flags_swallower(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_broad_except_accepts_reraise_and_narrow(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:
                raise

        def g():
            try:
                return 1
            except ValueError:
                return None
    """
    assert lint_snippet(tmp_path, snippet, ["broad-except"]) == []


def test_bare_except_flagged(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except:
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_mutable_default_flagged(tmp_path):
    snippet = """
        def f(items=[], *, mapping={}, fine=None, n=3):
            return items, mapping, fine, n
    """
    findings = lint_snippet(tmp_path, snippet, ["mutable-default"])
    assert sorted(f.symbol for f in findings) == ["f:items", "f:mapping"]


def test_raw_table_mutation_flagged_outside_physical_layer(tmp_path):
    snippet = """
        def sneak(table, rid, row):
            table.apply_insert(rid, row)
    """
    findings = lint_snippet(tmp_path, snippet, ["raw-table-mutation"])
    assert rules_of(findings) == ["raw-table-mutation"]
    # the same code inside the recovery layer is the intended use
    layer = tmp_path / "relational"
    layer.mkdir()
    path = layer / "recovery.py"
    path.write_text(textwrap.dedent(snippet))
    report = lint_paths(tmp_path, [path], select=["raw-table-mutation"])
    assert report.findings == []


def test_wal_order_flags_append_after_commit(tmp_path):
    snippet = """
        def finish(wal, record):
            wal.commit_point()
            wal.append(record)
    """
    findings = lint_snippet(tmp_path, snippet, ["wal-order"])
    assert rules_of(findings) == ["wal-order"]


def test_wal_order_accepts_append_before_commit(tmp_path):
    snippet = """
        def finish(wal, records):
            for record in records:
                wal.append(record)
            wal.commit_point()

        def unrelated(log):
            log.commit_point() if hasattr(log, "commit_point") else None
            items = []
            items.append(1)
    """
    assert lint_snippet(tmp_path, snippet, ["wal-order"]) == []


# ---------------------------------------------------------------------------
# framework: suppressions, baseline, selection, parse errors
# ---------------------------------------------------------------------------

def test_suppression_silences_rule_on_line(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:  # reprolint: disable=broad-except -- fixture
                return None
    """
    assert lint_snippet(tmp_path, snippet, ["broad-except"]) == []


def test_suppression_is_rule_specific(tmp_path):
    snippet = """
        def f():
            try:
                return 1
            except Exception:  # reprolint: disable=mutable-default
                return None
    """
    findings = lint_snippet(tmp_path, snippet, ["broad-except"])
    assert rules_of(findings) == ["broad-except"]


def test_baseline_downgrades_known_findings(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(GUARDED_BAD))
    first = lint_paths(tmp_path, [path], select=["guarded-by"])
    assert first.exit_code == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    baseline = load_baseline(baseline_path)
    second = lint_paths(tmp_path, [path], select=["guarded-by"],
                        baseline=baseline)
    assert second.exit_code == 0
    assert [f.baselined for f in second.findings] == [True]

    # fingerprints ignore line numbers: shifting the file keeps the match
    path.write_text("# a new leading comment\n"
                    + textwrap.dedent(GUARDED_BAD))
    third = lint_paths(tmp_path, [path], select=["guarded-by"],
                       baseline=baseline)
    assert third.exit_code == 0


def test_unknown_rule_selection_raises(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text("x = 1\n")
    with pytest.raises(KeyError):
        lint_paths(tmp_path, [path], select=["no-such-rule"])


def test_parse_error_is_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    report = lint_paths(tmp_path, [path], select=["broad-except"])
    assert rules_of(report.findings) == ["parse-error"]
    assert report.exit_code == 1


def test_rule_registry_is_complete():
    assert set(all_rules()) >= {
        "guarded-by", "lock-order", "broad-except", "mutable-default",
        "raw-table-mutation", "wal-order", "sql-invariants", "docs-links",
    }


# ---------------------------------------------------------------------------
# the tree itself is clean
# ---------------------------------------------------------------------------

def test_self_run_src_repro_is_clean():
    """src/repro (+ docs + corpus) has zero unbaselined findings."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--format", "json"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["new"] == 0
    assert payload["baselined"] == 0  # the baseline is empty; keep it so


def test_driver_fails_on_injected_violation(tmp_path):
    """The CLI exits nonzero and names the rule on a fresh violation."""
    path = tmp_path / "bad.py"
    path.write_text(textwrap.dedent(GUARDED_BAD))
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--select", "guarded-by", str(path)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 1
    assert "guarded-by" in result.stdout


# ---------------------------------------------------------------------------
# wal-commit-reachability (flow-sensitive, PR 10)
# ---------------------------------------------------------------------------

WALFLOW_BAD = """
    class Procedures:
        def __init__(self, wal):
            self.wal = wal

        def add_thing(self, record):
            self.wal.append(record)
            return record
"""

WALFLOW_GOOD = """
    class Procedures:
        def __init__(self, wal):
            self.wal = wal

        def add_thing(self, record):
            self.wal.append(record)
            self.wal.commit_point()
            return record
"""

WALFLOW_CONDITIONAL = """
    class Procedures:
        def __init__(self, wal):
            self.wal = wal

        def add_thing(self, record, flush):
            self.wal.append(record)
            if flush:
                self.wal.commit_point()
            return record
"""

WALFLOW_VIA_HELPER = """
    class Procedures:
        def __init__(self, wal):
            self.wal = wal

        def add_thing(self, record):
            self.wal.append(record)
            self._commit()
            return record

        def _commit(self):
            self.wal.commit_point()
"""


def test_walflow_flags_append_without_commit(tmp_path):
    findings = lint_snippet(tmp_path, WALFLOW_BAD,
                            ["wal-commit-reachability"])
    assert rules_of(findings) == ["wal-commit-reachability"]
    assert "Procedures.add_thing" in findings[0].message


def test_walflow_accepts_unconditional_commit(tmp_path):
    assert lint_snippet(tmp_path, WALFLOW_GOOD,
                        ["wal-commit-reachability"]) == []


def test_walflow_flags_commit_on_one_branch_only(tmp_path):
    findings = lint_snippet(tmp_path, WALFLOW_CONDITIONAL,
                            ["wal-commit-reachability"])
    assert rules_of(findings) == ["wal-commit-reachability"]


def test_walflow_follows_commit_through_helper(tmp_path):
    assert lint_snippet(tmp_path, WALFLOW_VIA_HELPER,
                        ["wal-commit-reachability"]) == []


# ---------------------------------------------------------------------------
# release-on-all-paths
# ---------------------------------------------------------------------------

RELEASE_BAD = """
    class Pool:
        def serve(self):
            token = self.locks.acquire()
            self.work()
            token.release()
"""

RELEASE_GOOD = """
    class Pool:
        def serve(self):
            token = self.locks.acquire()
            try:
                self.work()
            finally:
                token.release()
"""


def test_release_flags_leak_on_exception_path(tmp_path):
    findings = lint_snippet(tmp_path, RELEASE_BAD, ["release-on-all-paths"])
    assert rules_of(findings) == ["release-on-all-paths"]
    assert "token" in findings[0].message


def test_release_accepts_try_finally(tmp_path):
    assert lint_snippet(tmp_path, RELEASE_GOOD,
                        ["release-on-all-paths"]) == []


# ---------------------------------------------------------------------------
# error-code-conformance
# ---------------------------------------------------------------------------

def lint_protocol_tree(tmp_path, protocol_source, extra=None):
    """Lay out a miniature server/ package and lint it whole."""
    server = tmp_path / "server"
    server.mkdir()
    paths = [server / "protocol.py"]
    paths[0].write_text(textwrap.dedent(protocol_source))
    for name, source in (extra or {}).items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    report = lint_paths(tmp_path, paths, select=["error-code-conformance"])
    return report.findings


WIRE_OK = """
    GOOD_ERROR = "GOOD_ERROR"
    OTHER_ERROR = "OTHER_ERROR"

    RETRYABLE_CODES = frozenset({GOOD_ERROR})
    NON_RETRYABLE_CODES = frozenset({OTHER_ERROR})

    class WireError(Exception):
        def __init__(self, code, message):
            self.code = code

    def error_payload(code, message):
        return {"code": code, "retryable": code in RETRYABLE_CODES}

    def fail():
        raise WireError(GOOD_ERROR, "x")

    def fail_other():
        raise WireError(OTHER_ERROR, "x")
"""

WIRE_UNCLASSIFIED = """
    GOOD_ERROR = "GOOD_ERROR"
    LIMBO_ERROR = "LIMBO_ERROR"

    RETRYABLE_CODES = frozenset({GOOD_ERROR})
    NON_RETRYABLE_CODES = frozenset()

    class WireError(Exception):
        def __init__(self, code, message):
            self.code = code

    def fail():
        raise WireError(GOOD_ERROR, "x")

    def fail_limbo():
        raise WireError(LIMBO_ERROR, "x")
"""

WIRE_UNKNOWN_EMISSION = """
    GOOD_ERROR = "GOOD_ERROR"

    RETRYABLE_CODES = frozenset({GOOD_ERROR})
    NON_RETRYABLE_CODES = frozenset()

    class WireError(Exception):
        def __init__(self, code, message):
            self.code = code

    def fail():
        raise WireError("MADE_UP_CODE", "x")

    def ok():
        raise WireError(GOOD_ERROR, "x")
"""


def test_wirecheck_accepts_conformant_protocol(tmp_path):
    assert lint_protocol_tree(tmp_path, WIRE_OK) == []


def test_wirecheck_flags_unclassified_code(tmp_path):
    findings = lint_protocol_tree(tmp_path, WIRE_UNCLASSIFIED)
    assert any("LIMBO_ERROR" in f.message and "neither" in f.message
               for f in findings)


def test_wirecheck_flags_unknown_code_spelling(tmp_path):
    findings = lint_protocol_tree(tmp_path, WIRE_UNKNOWN_EMISSION)
    assert any("MADE_UP_CODE" in f.message for f in findings)


def test_wirecheck_flags_dead_code_constant(tmp_path):
    dead = WIRE_OK.replace('def fail_other():\n        '
                           'raise WireError(OTHER_ERROR, "x")\n',
                           'def fail_other():\n        return None\n')
    findings = lint_protocol_tree(tmp_path, dead)
    assert any("OTHER_ERROR" in f.message and "never" in f.message
               for f in findings)


def test_wirecheck_silent_without_protocol_module(tmp_path):
    # fixture trees (and this repo's tests/) have no server/protocol.py
    findings = lint_snippet(tmp_path, "X = 1\n",
                            ["error-code-conformance"])
    assert findings == []


# ---------------------------------------------------------------------------
# guarded-by-interproc
# ---------------------------------------------------------------------------

INTERPROC_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def outer(self):
            self._bump_locked()

        def _bump_locked(self):  # holds: _lock
            self.counter += 1
"""

INTERPROC_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.counter = 0  # guarded-by: _lock

        def outer(self):
            with self._lock:
                self._step()

        def _step(self):
            self._bump_locked()

        def _bump_locked(self):  # holds: _lock
            self.counter += 1
"""


def test_interproc_flags_unlocked_call_into_holds_method(tmp_path):
    findings = lint_snippet(tmp_path, INTERPROC_BAD,
                            ["guarded-by-interproc"])
    assert rules_of(findings) == ["guarded-by-interproc"]
    assert "Store.outer->Store._bump_locked" in findings[0].message \
        or "_bump_locked" in findings[0].message


def test_interproc_infers_locks_through_undeclared_helper(tmp_path):
    assert lint_snippet(tmp_path, INTERPROC_GOOD,
                        ["guarded-by-interproc"]) == []


# ---------------------------------------------------------------------------
# --since and stale-baseline driver behavior
# ---------------------------------------------------------------------------

def _git(cwd, *argv):
    subprocess.run(["git", *argv], cwd=cwd, check=True,
                   capture_output=True, text=True)


def test_since_limits_file_rules_to_changed_files(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "--allow-empty", "-m", "seed")
    clean = tmp_path / "clean.py"
    clean.write_text(textwrap.dedent(GUARDED_BAD))  # pre-existing violation
    _git(tmp_path, "add", "clean.py")
    _git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "-m", "baseline tree")
    changed = tmp_path / "changed.py"
    changed.write_text(textwrap.dedent(RELEASE_BAD))
    _git(tmp_path, "add", "changed.py")  # git diff HEAD sees staged adds

    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--since", "HEAD", "--format", "json", str(tmp_path)],
        capture_output=True, text=True, cwd=tmp_path,
    )
    payload = json.loads(result.stdout)
    flagged = {f["path"] for f in payload["findings"]}
    assert result.returncode == 1
    # only the uncommitted file is linted by file-scope rules
    assert any(path.endswith("changed.py") for path in flagged)
    assert not any(path.endswith("clean.py") for path in flagged)


def test_since_with_bad_ref_fails_loudly(tmp_path):
    _git(tmp_path, "init", "-q")
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"),
         "--since", "no-such-ref", str(tmp_path)],
        capture_output=True, text=True, cwd=tmp_path,
    )
    assert result.returncode == 2
    assert "--since" in result.stderr


def test_stale_baseline_entry_fails_full_run(tmp_path):
    report = lint_paths(REPO_ROOT, [tmp_path], select=None,
                        baseline={"ghost-rule:src/x.py:ghost"},
                        check_baseline=True)
    assert list(report.dead_baseline) == ["ghost-rule:src/x.py:ghost"]
    assert report.exit_code == 1
    assert "stale baseline entry" in report.render_text()
    assert "ghost-rule" in report.render_text()


def test_stale_baseline_ignored_on_partial_run(tmp_path):
    report = lint_paths(REPO_ROOT, [tmp_path], select=None,
                        baseline={"ghost-rule:src/x.py:ghost"},
                        check_baseline=False)
    assert list(report.dead_baseline) == []
    assert report.exit_code == 0
