"""Tests for the dataset generators."""

from repro.datasets import dbpedia, linkbench
from repro.datasets.random_graphs import random_property_graph
from repro.datasets.tinker import paper_figure_graph, tinkerpop_classic
from repro.graph.blueprints import Direction


class TestTinker:
    def test_paper_figure_shape(self):
        graph = paper_figure_graph()
        assert graph.vertex_count() == 4
        assert graph.edge_count() == 5
        assert graph.get_edge(9).get_property("weight") == 0.4

    def test_classic_shape(self):
        graph = tinkerpop_classic()
        assert graph.vertex_count() == 6
        assert graph.edge_count() == 6


class TestRandomGraphs:
    def test_deterministic(self):
        first = random_property_graph(seed=5)
        second = random_property_graph(seed=5)
        assert first.vertex_count() == second.vertex_count()
        assert sorted(e.label for e in first.edges()) == sorted(
            e.label for e in second.edges()
        )

    def test_seed_changes_graph(self):
        first = random_property_graph(seed=5, n_edges=40)
        second = random_property_graph(seed=6, n_edges=40)
        pairs_a = {(e.out_vertex.id, e.in_vertex.id) for e in first.edges()}
        pairs_b = {(e.out_vertex.id, e.in_vertex.id) for e in second.edges()}
        assert pairs_a != pairs_b

    def test_requested_sizes(self):
        graph = random_property_graph(seed=1, n_vertices=17, n_edges=23)
        assert graph.vertex_count() == 17
        assert graph.edge_count() == 23


SMALL = dbpedia.DBpediaConfig(
    places=300, players=200, teams=20, persons=60, artists=40, seed=3
)


class TestDBpediaGenerator:
    def test_deterministic(self):
        first = dbpedia.generate(SMALL)
        second = dbpedia.generate(SMALL)
        assert first.graph.vertex_count() == second.graph.vertex_count()
        assert first.graph.edge_count() == second.graph.edge_count()

    def test_structure(self):
        data = dbpedia.generate(SMALL)
        assert len(data.place_ids) == 300
        assert len(data.player_ids) == 200
        # every player has at least one team edge
        for player_id in data.player_ids[:20]:
            vertex = data.graph.get_vertex(player_id)
            assert vertex.degree(Direction.OUT, ("team",)) >= 1

    def test_ispartof_depth_supports_nine_hops(self):
        data = dbpedia.generate(dbpedia.DBpediaConfig(places=2000, seed=1,
                                                      players=10, teams=2,
                                                      persons=5, artists=5))
        graph = data.graph
        depth = 0
        for place_id in data.place_ids:
            hops = 0
            current = graph.get_vertex(place_id)
            while True:
                parents = list(current.vertices(Direction.OUT, ("isPartOf",)))
                if not parents:
                    break
                current = parents[0]
                hops += 1
            depth = max(depth, hops)
        assert depth >= 9

    def test_edges_have_provenance(self):
        data = dbpedia.generate(SMALL)
        edge = next(iter(data.graph.edges()))
        assert "oldid" in edge.properties
        assert "section" in edge.properties

    def test_type_edges_exist(self):
        data = dbpedia.generate(SMALL)
        place_type = data.graph.get_vertex(data.type_ids["Place"])
        assert place_type.degree(Direction.IN, ("rdf:type",)) == 300

    def test_tag_buckets_have_expected_order(self):
        data = dbpedia.generate(dbpedia.DBpediaConfig(seed=5))
        counts = {"large": 0, "mid": 0, "small": 0}
        for place_id in data.place_ids:
            tag = data.graph.get_vertex(place_id).get_property("tag")
            if tag in counts:
                counts[tag] += 1
        assert counts["large"] > counts["mid"] > counts["small"] > 0

    def test_query_sets_well_formed(self):
        from repro.gremlin.parser import parse_gremlin

        data = dbpedia.generate(SMALL)
        for __, text, __meta in dbpedia.adjacency_queries(data):
            parse_gremlin(text)
        for __, text in dbpedia.benchmark_queries(data):
            parse_gremlin(text)
        assert len(dbpedia.benchmark_queries(data)) == 20
        assert len(dbpedia.path_queries(data)) == 11
        assert len(dbpedia.ATTRIBUTE_QUERIES) == 16


class TestLinkBenchGenerator:
    def test_build_sizes(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=500))
        assert data.graph.vertex_count() == 500
        assert data.graph.edge_count() == 2000

    def test_node_attributes(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=100))
        vertex = data.graph.get_vertex(1)
        assert vertex.get_property("type") in linkbench.NODE_TYPES
        assert len(vertex.get_property("data")) == 96

    def test_power_law_hubness(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=500))
        degrees = sorted(
            (v.degree(Direction.OUT) for v in data.graph.vertices()),
            reverse=True,
        )
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_operation_mix_sums_to_one(self):
        assert abs(sum(w for __, w in linkbench.OPERATION_MIX) - 1.0) < 1e-9

    def test_request_generator_distribution(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=200))
        generator = linkbench.RequestGenerator(data, seed=1)
        counts = {}
        for __ in range(4000):
            name, __args = next(generator)
            counts[name] = counts.get(name, 0) + 1
        assert counts["get_link_list"] > counts["get_node"] > counts["add_node"]
        assert counts["get_link_list"] / 4000 > 0.4

    def test_generators_allocate_disjoint_ids(self):
        data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=100))
        first = linkbench.RequestGenerator(data, seed=1, requester_id=0)
        second = linkbench.RequestGenerator(data, seed=1, requester_id=1)
        ids_a = set()
        ids_b = set()
        for __ in range(500):
            name, args = next(first)
            if name in ("add_node", "add_link"):
                ids_a.add(args["id"])
            name, args = next(second)
            if name in ("add_node", "add_link"):
                ids_b.add(args["id"])
        assert not (ids_a & ids_b)
