"""Durability contract of analytics runs: scratch state never survives.

The drivers run under ``wal.pause()`` and scratch tables are excluded
from checkpoint snapshots, so the invariants are:

* an analytics run appends **zero bytes** to the WAL — the log is
  byte-identical before and after;
* a crash at any point around a run recovers the base tables exactly
  (differential against :func:`tests.crashkit.database_state`) with no
  orphaned frontier/temp tables;
* even scratch DDL that *was* logged (a scratch table created outside a
  run, WAL active) or snapshotted around is dropped on reopen — the
  belt-and-braces sweep in ``Database._open_durable``.
"""

import os

import pytest

from repro.core import SQLGraphStore
from repro.datasets.random_graphs import random_property_graph
from repro.relational.database import Database
from tests.crashkit import (
    assert_states_equal,
    crash_copy,
    database_state,
    record_boundaries,
)


def _durable_store(path):
    store = SQLGraphStore(path=str(path))
    if store.schema is None:
        store.load_graph(random_property_graph(seed=21, n_vertices=25,
                                               n_edges=50))
    return store


def _wal_bytes(store):
    wal = store.database.wal
    wal.flush()
    with open(wal.path, "rb") as fh:
        return fh.read()


def _scratch_tables(database):
    return [name for name in database.catalog.table_names()
            if name.startswith("scratch_")]


def test_analytics_append_zero_wal_bytes(tmp_path):
    store = _durable_store(tmp_path / "db")
    # CRUD traffic so the log is non-trivial before the runs
    vid = store.add_vertex(properties={"name": "extra"})
    store.add_edge(vid, 1, "knows")
    before = _wal_bytes(store)
    store.pagerank(max_iterations=5)
    store.connected_components()
    store.shortest_paths(1)
    assert _wal_bytes(store) == before  # byte-identical, not just same size
    assert _scratch_tables(store.database) == []
    store.close()


def test_crash_after_analytics_recovers_base_tables_identically(tmp_path):
    source = tmp_path / "db"
    store = _durable_store(source)
    store.add_vertex(properties={"name": "crud"})
    store.remove_vertex(2)
    store.connected_components()
    store.label_propagation(max_iterations=4)
    expected = database_state(store.database)
    store.database.wal.flush()
    crashed = crash_copy(str(source), str(tmp_path / "crashed"))
    recovered = SQLGraphStore(path=crashed)
    assert _scratch_tables(recovered.database) == []
    assert_states_equal(
        database_state(recovered.database), expected, "post-analytics crash"
    )
    # the recovered store still runs analytics (schema + WAL intact)
    after = recovered.connected_components()
    assert after == store.connected_components()
    recovered.close()
    store.close()


def test_crash_at_every_boundary_leaves_no_scratch(tmp_path):
    source = tmp_path / "db"
    store = _durable_store(source)
    for i in range(4):
        vid = store.add_vertex(properties={"n": i})
        store.add_edge(vid, 1, "burst")
        store.pagerank(max_iterations=2)  # interleave runs with CRUD
    store.database.wal.flush()
    boundaries = record_boundaries(store.database.wal.path)
    store.close()
    # cut at a handful of commit boundaries, including the torn middle
    cuts = boundaries[:: max(1, len(boundaries) // 4)] + [
        boundaries[-1] - 3  # mid-record: torn tail dropped
    ]
    for i, cut in enumerate(cuts):
        crashed = crash_copy(str(source), str(tmp_path / f"cut{i}"),
                             cut_offset=cut)
        recovered = Database(path=crashed)
        assert _scratch_tables(recovered) == []
        recovered.close()


def test_logged_scratch_ddl_is_dropped_on_reopen(tmp_path):
    source = tmp_path / "db"
    store = _durable_store(source)
    # a scratch table created OUTSIDE a run is logged (WAL active) and
    # replayed at recovery; the post-recovery sweep must still drop it
    store.database.execute("CREATE TABLE scratch_stale (k INTEGER)")
    store.database.execute("INSERT INTO scratch_stale VALUES (1)")
    store.database.wal.flush()
    crashed = crash_copy(str(source), str(tmp_path / "crashed"))
    recovered = SQLGraphStore(path=crashed)
    assert _scratch_tables(recovered.database) == []
    recovered.close()
    store.close()


def test_checkpoint_snapshot_excludes_scratch_tables(tmp_path):
    source = tmp_path / "db"
    store = _durable_store(source)
    store.database.execute("CREATE TABLE scratch_live (k INTEGER)")
    store.database.execute("INSERT INTO scratch_live VALUES (7)")
    expected = {
        name: state
        for name, state in database_state(store.database).items()
        if not name.startswith("scratch_")
    }
    assert store.database.checkpoint()
    store.close()
    recovered = SQLGraphStore(path=str(source))
    assert _scratch_tables(recovered.database) == []
    assert_states_equal(
        database_state(recovered.database), expected, "checkpoint+scratch"
    )
    recovered.close()


def test_failed_run_leaves_durable_store_clean(tmp_path):
    store = _durable_store(tmp_path / "db")
    before = _wal_bytes(store)
    with pytest.raises(Exception):
        store.shortest_paths(10**9)  # unknown source aborts mid-setup
    assert _scratch_tables(store.database) == []
    assert _wal_bytes(store) == before
    # WAL logging resumed after the aborted run's pause
    store.add_vertex(properties={"name": "after"})
    assert len(_wal_bytes(store)) > len(before)
    store.close()
