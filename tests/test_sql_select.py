"""End-to-end SELECT execution tests over the engine."""

import pytest

from repro.relational import Database
from repro.relational.errors import BindError


def rows(db, sql, params=None):
    return db.execute(sql, params).rows


class TestProjectionAndFilter:
    def test_select_columns(self, people_db):
        result = rows(people_db, "SELECT name FROM people WHERE age > 30")
        assert sorted(result) == [("alice",), ("carol",)]

    def test_select_star(self, people_db):
        result = rows(people_db, "SELECT * FROM people WHERE id = 1")
        assert result == [(1, "alice", 34, "paris")]

    def test_expression_projection(self, people_db):
        result = rows(people_db, "SELECT age * 2 + 1 FROM people WHERE id = 2")
        assert result == [(57,)]

    def test_aliases_in_output(self, people_db):
        result = people_db.execute("SELECT name AS who FROM people WHERE id = 1")
        assert result.columns == ["who"]

    def test_where_null_is_false(self, people_db):
        result = rows(people_db, "SELECT id FROM people WHERE city = 'oslo'")
        assert result == []
        # dan has NULL city: excluded from both sides
        result = rows(people_db, "SELECT id FROM people WHERE city <> 'paris'")
        assert sorted(result) == [(2,), (5,)]

    def test_is_null_filter(self, people_db):
        result = rows(people_db, "SELECT id FROM people WHERE city IS NULL")
        assert result == [(4,)]

    def test_like_filter(self, people_db):
        result = rows(people_db, "SELECT name FROM people WHERE name LIKE '%a%'")
        assert sorted(result) == [("alice",), ("carol",), ("dan",)]

    def test_in_list(self, people_db):
        result = rows(people_db, "SELECT id FROM people WHERE id IN (1, 3, 9)")
        assert sorted(result) == [(1,), (3,)]

    def test_between(self, people_db):
        result = rows(
            people_db, "SELECT id FROM people WHERE age BETWEEN 28 AND 34"
        )
        assert sorted(result) == [(1,), (2,), (5,)]

    def test_parameters(self, people_db):
        result = rows(
            people_db, "SELECT name FROM people WHERE age = ? AND city = ?",
            [28, "london"],
        )
        assert result == [("bob",)]

    def test_no_from(self, db):
        assert rows(db, "SELECT 1 + 2, 'x'") == [(3, "x")]

    def test_unknown_column_raises(self, people_db):
        with pytest.raises(BindError):
            people_db.execute("SELECT nosuch FROM people")

    def test_unknown_table_raises(self, people_db):
        with pytest.raises(BindError):
            people_db.execute("SELECT 1 FROM nosuch")


class TestJoins:
    def test_inner_join(self, people_db):
        result = rows(
            people_db,
            "SELECT p.name, o.item FROM people p, orders o "
            "WHERE p.id = o.pid AND o.amount > 20",
        )
        assert sorted(result) == [("alice", "book"), ("bob", "chair"),
                                  ("eve", "lamp")]

    def test_explicit_join_syntax(self, people_db):
        result = rows(
            people_db,
            "SELECT p.name FROM people p JOIN orders o ON p.id = o.pid "
            "WHERE o.item = 'pen'",
        )
        assert sorted(result) == [("alice",), ("eve",)]

    def test_left_outer_join(self, people_db):
        result = rows(
            people_db,
            "SELECT p.id, o.oid FROM people p LEFT OUTER JOIN orders o "
            "ON p.id = o.pid ORDER BY p.id",
        )
        ids = [row[0] for row in result]
        assert 4 in ids  # dan has no orders but appears
        dan_rows = [row for row in result if row[0] == 4]
        assert dan_rows == [(4, None)]

    def test_left_join_with_residual(self, people_db):
        result = rows(
            people_db,
            "SELECT p.id, o.oid FROM people p LEFT OUTER JOIN orders o "
            "ON p.id = o.pid AND o.amount > 100",
        )
        matched = [row for row in result if row[1] is not None]
        assert matched == [(2, 12)]
        assert len(result) == 5  # every person appears

    def test_three_way_join(self, people_db):
        people_db.execute("CREATE TABLE cities (name STRING, country STRING)")
        people_db.execute(
            "INSERT INTO cities VALUES ('paris', 'fr'), ('london', 'uk')"
        )
        result = rows(
            people_db,
            "SELECT DISTINCT c.country FROM people p, orders o, cities c "
            "WHERE p.id = o.pid AND p.city = c.name",
        )
        assert sorted(result) == [("fr",), ("uk",)]

    def test_self_join(self, people_db):
        result = rows(
            people_db,
            "SELECT a.name, b.name FROM people a, people b "
            "WHERE a.age = b.age AND a.id < b.id",
        )
        assert result == [("bob", "eve")]

    def test_cross_join_when_no_condition(self, people_db):
        result = rows(
            people_db,
            "SELECT COUNT(*) FROM people p, orders o",
        )
        assert result == [(30,)]

    def test_ambiguous_column_raises(self, people_db):
        people_db.execute("CREATE TABLE dup (name STRING)")
        people_db.execute("INSERT INTO dup VALUES ('x')")
        with pytest.raises(BindError):
            people_db.execute("SELECT name FROM people, dup")


class TestAggregates:
    def test_global_aggregates(self, people_db):
        result = rows(
            people_db,
            "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM people",
        )
        assert result == [(5, 154, 23, 41, 30.8)]

    def test_count_column_skips_nulls(self, people_db):
        assert rows(people_db, "SELECT COUNT(city) FROM people") == [(4,)]

    def test_count_distinct(self, people_db):
        assert rows(people_db, "SELECT COUNT(DISTINCT city) FROM people") == [(3,)]

    def test_group_by(self, people_db):
        result = rows(
            people_db,
            "SELECT city, COUNT(*) FROM people WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY city",
        )
        assert result == [("berlin", 1), ("london", 1), ("paris", 2)]

    def test_group_by_expression_in_select(self, people_db):
        result = rows(
            people_db,
            "SELECT age / 10, COUNT(*) FROM people GROUP BY age / 10 "
            "ORDER BY 1",
        )
        assert result == [(2.3, 1), (2.8, 2), (3.4, 1), (4.1, 1)]

    def test_having(self, people_db):
        result = rows(
            people_db,
            "SELECT pid, SUM(amount) FROM orders GROUP BY pid "
            "HAVING SUM(amount) > 30 ORDER BY pid",
        )
        assert result == [(1, 39.0), (2, 120.0), (5, 35.0)]

    def test_aggregate_on_empty_input(self, people_db):
        result = rows(
            people_db, "SELECT COUNT(*), SUM(age) FROM people WHERE id > 99"
        )
        assert result == [(0, None)]

    def test_group_aggregate_mixed_expression(self, people_db):
        result = rows(
            people_db,
            "SELECT city, MAX(age) - MIN(age) FROM people "
            "WHERE city = 'paris' GROUP BY city",
        )
        assert result == [("paris", 7)]


class TestSetOpsDistinctOrder:
    def test_union_all(self, people_db):
        result = rows(
            people_db,
            "SELECT id FROM people WHERE id <= 2 "
            "UNION ALL SELECT id FROM people WHERE id <= 1",
        )
        assert sorted(result) == [(1,), (1,), (2,)]

    def test_union_distinct(self, people_db):
        result = rows(
            people_db,
            "SELECT city FROM people UNION SELECT 'oslo'",
        )
        assert len(result) == len(set(result))
        assert ("oslo",) in result

    def test_intersect(self, people_db):
        result = rows(
            people_db,
            "SELECT id FROM people INTERSECT SELECT pid FROM orders",
        )
        assert sorted(result) == [(1,), (2,), (3,), (5,)]

    def test_except(self, people_db):
        result = rows(
            people_db,
            "SELECT id FROM people EXCEPT SELECT pid FROM orders",
        )
        assert result == [(4,)]

    def test_distinct(self, people_db):
        result = rows(people_db, "SELECT DISTINCT item FROM orders")
        assert len(result) == 4

    def test_order_by_multiple_keys(self, people_db):
        result = rows(
            people_db, "SELECT age, name FROM people ORDER BY age DESC, name"
        )
        assert result[0] == (41, "carol")
        assert result[1] == (34, "alice")
        assert result[2] == (28, "bob")

    def test_order_by_position(self, people_db):
        result = rows(people_db, "SELECT name FROM people ORDER BY 1 DESC")
        assert result[0] == ("eve",)

    def test_limit_offset(self, people_db):
        result = rows(
            people_db, "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1"
        )
        assert result == [(2,), (3,)]


class TestSubqueries:
    def test_in_subquery(self, people_db):
        result = rows(
            people_db,
            "SELECT name FROM people WHERE id IN "
            "(SELECT pid FROM orders WHERE item = 'book')",
        )
        assert sorted(result) == [("alice",), ("carol",)]

    def test_not_in_subquery(self, people_db):
        result = rows(
            people_db,
            "SELECT name FROM people WHERE id NOT IN (SELECT pid FROM orders)",
        )
        assert result == [("dan",)]

    def test_scalar_subquery(self, people_db):
        result = rows(
            people_db,
            "SELECT name FROM people WHERE age = (SELECT MAX(age) FROM people)",
        )
        assert result == [("carol",)]

    def test_exists(self, people_db):
        result = rows(
            people_db,
            "SELECT COUNT(*) FROM people WHERE EXISTS "
            "(SELECT 1 FROM orders WHERE amount > 100)",
        )
        assert result == [(5,)]

    def test_from_subquery(self, people_db):
        result = rows(
            people_db,
            "SELECT s.c FROM (SELECT city AS c, COUNT(*) AS n FROM people "
            "GROUP BY city) AS s WHERE s.n = 2",
        )
        assert result == [("paris",)]


class TestUnnestValues:
    def test_lateral_unnest(self, db):
        db.execute("CREATE TABLE m (a INTEGER, b INTEGER, c INTEGER)")
        db.execute("INSERT INTO m VALUES (1, 2, NULL), (4, NULL, 6)")
        result = rows(
            db,
            "SELECT t.val FROM m p, TABLE(VALUES (p.a), (p.b), (p.c)) "
            "AS t(val) WHERE t.val IS NOT NULL",
        )
        assert sorted(result) == [(1,), (2,), (4,), (6,)]

    def test_multi_column_unnest(self, db):
        db.execute("CREATE TABLE m (a INTEGER, l1 STRING, b INTEGER, l2 STRING)")
        db.execute("INSERT INTO m VALUES (1, 'x', 2, 'y')")
        result = rows(
            db,
            "SELECT t.lbl, t.val FROM m p, "
            "TABLE(VALUES (p.l1, p.a), (p.l2, p.b)) AS t(lbl, val)",
        )
        assert sorted(result) == [("x", 1), ("y", 2)]

    def test_unnest_requires_preceding_relation(self, db):
        db.execute("CREATE TABLE m (a INTEGER)")
        with pytest.raises(BindError):
            db.execute("SELECT t.val FROM TABLE(VALUES (1)) AS t(val)")


class TestJsonQueries:
    def test_json_val_filter(self, db):
        db.execute("CREATE TABLE docs (id INTEGER, body JSON)")
        db.execute("INSERT INTO docs VALUES (?, ?)", [1, {"name": "x", "n": 3}])
        db.execute("INSERT INTO docs VALUES (?, ?)", [2, {"name": "y"}])
        result = rows(
            db, "SELECT id FROM docs WHERE JSON_VAL(body, 'n') IS NOT NULL"
        )
        assert result == [(1,)]
        result = rows(
            db, "SELECT JSON_VAL(body, 'name') FROM docs ORDER BY id"
        )
        assert result == [("x",), ("y",)]
