"""Knowledge-graph workload: the DBpedia-style scenario from the paper.

Builds a synthetic DBpedia-like property graph (place hierarchies, soccer
players/teams, typed literals, provenance edge attributes), loads it into
SQLGraph, adds the attribute indexes a user would create, and runs a mix of
lookup and multi-hop traversal queries — comparing elapsed time against a
Neo4j-like pipe-at-a-time store on the same data.

Run with: ``python examples/knowledge_graph.py``
"""

import time

from repro.baselines import NativeGraphStore
from repro.core import SQLGraphStore
from repro.datasets import dbpedia


def main():
    config = dbpedia.DBpediaConfig(
        places=1200, players=800, teams=50, persons=200, artists=150
    )
    data = dbpedia.generate(config)
    graph = data.graph
    print(f"generated {graph.vertex_count()} vertices, "
          f"{graph.edge_count()} edges")

    store = SQLGraphStore()
    report = store.load_graph(graph)
    for key in ("uri", "tag", "wikiPageID"):
        store.create_attribute_index("vertex", key)
    print(f"SQLGraph schema: {report.out.columns} outgoing / "
          f"{report.incoming.columns} incoming column triads, "
          f"{report.out.multi_value_rows + report.incoming.multi_value_rows} "
          "secondary adjacency rows")

    native = NativeGraphStore()
    native.load_graph(graph)
    native.create_attribute_index("uri")
    native.create_attribute_index("tag")

    place = "http://dbpedia.org/ontology/Place"
    player = "http://dbpedia.org/ontology/SoccerPlayer"
    showcase = [
        ("how many places?",
         f"g.V('uri','{place}').in('rdf:type').count()"),
        ("dense places",
         f"g.V('uri','{place}').in('rdf:type')"
         ".has('populationDensitySqMi', T.gt, 4000).count()"),
        ("a specific page id",
         "g.V.has('wikiPageID', 3000005).label"),
        ("players two team-hops away",
         f"g.v({data.player_ids[0]}).both('team').dedup"
         ".loop(2){it.loops < 4}.dedup.count()"),
        ("deep place containment",
         "g.V.has('tag','mid').in('isPartOf').dedup"
         ".loop(2){it.loops < 6}.dedup.count()"),
        ("teams of filtered players",
         f"g.V('uri','{player}').in('rdf:type')"
         ".filter{it.label.contains('7')}.out('team').dedup().count()"),
    ]
    print(f"\n{'description':38}{'result':>10}{'sqlgraph':>12}{'native':>12}")
    for description, text in showcase:
        start = time.perf_counter()
        result = store.run(text)
        sql_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        native.run(text)
        native_ms = 1000 * (time.perf_counter() - start)
        value = result[0] if len(result) == 1 else result[:3]
        print(f"{description:38}{str(value):>10}{sql_ms:>10.1f}ms"
              f"{native_ms:>10.1f}ms")

    print("\nprovenance of one edge (n-quad context, paper Fig. 1):")
    edge = next(iter(store.edges()))
    print(f"  {edge}: {edge.properties}")


if __name__ == "__main__":
    main()
