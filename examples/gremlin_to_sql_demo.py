"""A tour of the Gremlin → SQL translator (paper §4, Table 8).

Shows, for each supported pipe family, the exact single SQL statement the
translator emits — including the paper's own running example
``g.V.filter{it.tag=='w'}.both.dedup().count()`` (Figure 7).

Run with: ``python examples/gremlin_to_sql_demo.py``
"""

from repro.core import SQLGraphStore
from repro.datasets.tinker import paper_figure_graph

SHOWCASE = [
    ("the paper's Figure 7 example",
     "g.V.filter{it.tag=='w'}.both.dedup().count()"),
    ("GraphQuery merge: filters fold into the start CTE",
     "g.V.has('age', T.gt, 28).has('name').name"),
    ("single-step traversals use the redundant EA table",
     "g.v(1).out('knows')"),
    ("multi-step traversals use the hash adjacency tables + OSA join",
     "g.v(1).out.out"),
    ("path tracking threads a path column through every CTE",
     "g.v(1).out.out.path"),
    ("back() rewinds using ELEMENT_AT/PATH_PREFIX over the path",
     "g.V.as('x').out('created').back('x').name"),
    ("loops unroll to fixed depth",
     "g.v(1).out.loop(1){it.loops < 3}.count()"),
    ("aggregate/except become CTE snapshots + NOT IN",
     "g.v(1).out.aggregate(x).out.except(x)"),
    ("branch filters follow the paper's path[0] template",
     "g.V.and(_().out('knows'), _().out('created')).name"),
    ("ifThenElse value closures compile to CASE",
     "g.V.ifThenElse{it.age != null}{it.age}{-1}"),
]


def main():
    store = SQLGraphStore()
    store.load_graph(paper_figure_graph())
    for title, text in SHOWCASE:
        print("=" * 72)
        print(f"-- {title}")
        print(f"gremlin> {text}")
        print()
        print(store.translate(text))
        print()
        print(f"result: {store.run(text)}")
        print()


if __name__ == "__main__":
    main()
