"""Social-network workload: the LinkBench scenario from the paper §5.2.

Generates a power-law social graph, then drives the paper's CRUD operation
mix (Table 6: 50.7% get_link_list, 12.9% get_node, ...) against SQLGraph
with multiple concurrent requesters, reporting throughput and per-operation
latency.

Run with: ``python examples/social_network.py``
"""

from repro.bench.concurrency import run_throughput
from repro.core import SQLGraphStore
from repro.datasets import linkbench


def main():
    data = linkbench.build_graph(linkbench.LinkBenchConfig(nodes=3000))
    graph = data.graph
    print(f"social graph: {graph.vertex_count()} objects, "
          f"{graph.edge_count()} associations")

    store = SQLGraphStore()
    store.load_graph(graph)
    adapter = linkbench.SQLGraphLinkBench(store)

    print("\noperation mix (paper Table 6):")
    for name, weight in linkbench.OPERATION_MIX:
        print(f"  {name:14} {100 * weight:5.1f}%")

    print("\nclosed-loop throughput:")
    for requesters in (1, 4, 16):
        result = run_throughput(
            adapter,
            lambda rid: linkbench.RequestGenerator(
                data, seed=3, requester_id=rid
            ),
            requesters=requesters,
            duration=1.5,
            record_latency=True,
        )
        print(f"  {requesters:3} requesters: "
              f"{result.ops_per_second:8.1f} ops/sec "
              f"({result.operations} ops, {result.errors} errors)")
        if requesters == 16:
            print("\nper-operation latency at 16 requesters (mean ms):")
            for name, seconds in sorted(result.per_op_seconds.items()):
                print(f"  {name:14} {1000 * seconds:7.2f} "
                      f"(max {1000 * result.per_op_max[name]:7.2f})")

    # the store stayed consistent under the concurrent mixed workload
    vertices = store.vertex_count()
    edges = store.edge_count()
    print(f"\nfinal graph: {vertices} objects, {edges} associations")
    sample = data.node_ids[0]
    listed = store.run(f"g.v({sample}).outE('friend')")
    print(f"object {sample} has {len(listed)} friend links")


if __name__ == "__main__":
    main()
