"""Quickstart: load a property graph into SQLGraph and query it with Gremlin.

Run with: ``python examples/quickstart.py``
"""

from repro.core import SQLGraphStore
from repro.graph import PropertyGraph


def build_graph():
    """The sample property graph from the paper's Figure 2a."""
    graph = PropertyGraph()
    graph.add_vertex(1, {"name": "marko", "age": 29})
    graph.add_vertex(2, {"name": "vadas", "age": 27})
    graph.add_vertex(3, {"name": "lop", "lang": "java"})
    graph.add_vertex(4, {"name": "josh", "age": 32})
    graph.add_edge(1, 2, "knows", 7, {"weight": 0.5})
    graph.add_edge(1, 4, "knows", 8, {"weight": 1.0})
    graph.add_edge(1, 3, "created", 9, {"weight": 0.4})
    graph.add_edge(4, 2, "likes", 10, {"weight": 0.2})
    graph.add_edge(4, 3, "created", 11, {"weight": 0.8})
    return graph


def main():
    store = SQLGraphStore()
    report = store.load_graph(build_graph())
    print(f"loaded {report.vertex_count} vertices, {report.edge_count} edges")
    print(f"outgoing adjacency uses {report.out.columns} column triads\n")

    queries = [
        "g.V.count()",
        "g.v(1).out('knows').name",
        "g.V.has('age', T.gt, 28).name",
        "g.V.filter{it.lang == 'java'}.in('created').name",
        "g.v(1).out.out.path",
        "g.V.filter{it.tag=='w'}.both.dedup().count()",  # the paper's example
    ]
    for text in queries:
        print(f"  {text}")
        print(f"    -> {store.run(text)}")

    # CRUD through the Blueprints-style API
    peter = store.add_vertex(properties={"name": "peter", "age": 35})
    store.add_edge(peter, 3, "created", properties={"weight": 0.2})
    print(f"\nafter adding peter: {store.run('g.V.count()')[0]} vertices")
    creators = sorted(store.run("g.v(3).in('created').name"))
    print(f"lop's creators: {creators}")

    # every Gremlin query became exactly one SQL statement
    print(f"\none of those translations:\n{store.translate(queries[1])}")


if __name__ == "__main__":
    main()
