"""Benchmark harness: timing protocol, concurrency driver, reporting."""

from repro.bench.runner import median_time, warm_cache_time
from repro.bench.concurrency import ThroughputResult, run_throughput
from repro.bench.reporting import format_table

__all__ = [
    "ThroughputResult",
    "format_table",
    "median_time",
    "run_throughput",
    "warm_cache_time",
]
