"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report, so EXPERIMENTS.md can record paper-vs-measured side by side.
"""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_metrics(snapshot, title="engine metrics"):
    """Render an ``ENGINE_METRICS.snapshot()`` flat dict as a table.

    The snapshot is already flat (histograms expand into ``.count`` /
    ``.total_s`` / ``.mean_s`` / ``.max_s`` entries), so this just sorts
    and aligns it.
    """
    rows = [[name, snapshot[name]] for name in sorted(snapshot)]
    if not rows:
        rows.append(["(no metrics recorded)", ""])
    return format_table(["metric", "value"], rows, title=title)


def ratio(numerator, denominator):
    """Safe speedup ratio (None when the denominator is zero)."""
    if not denominator:
        return None
    return numerator / denominator


def milliseconds(seconds):
    return seconds * 1000.0
