"""Closed-loop multi-requester throughput driver (paper Figure 9).

Each requester is a thread running operations back-to-back against a store
adapter for a fixed duration; throughput is total completed operations per
second.  The simulated client/server round trips sleep (releasing the GIL),
so the concurrency behaviour of chatty vs. one-shot protocols emerges the
same way it does between real clients and a localhost server.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class ThroughputResult:
    requesters: int
    duration: float
    operations: int
    per_op_seconds: dict = field(default_factory=dict)
    per_op_max: dict = field(default_factory=dict)
    errors: int = 0

    @property
    def ops_per_second(self):
        if self.duration <= 0:
            return 0.0
        return self.operations / self.duration


def run_throughput(adapter, generator_factory, requesters=1, duration=1.0,
                   record_latency=False):
    """Run a closed-loop throughput test.

    :param adapter: object with ``execute(operation)``.
    :param generator_factory: ``requester_id -> iterator of operations``.
    :param requesters: number of concurrent requester threads.
    :param duration: seconds to run.
    :param record_latency: collect per-operation latency stats
        (mean / max per operation name, paper Tables 6 and 7).
    """
    stop_at = time.perf_counter() + duration
    counts = [0] * requesters
    errors = [0] * requesters
    latencies: dict[str, list[float]] = {}
    latency_lock = threading.Lock()

    def worker(requester_id):
        generator = generator_factory(requester_id)
        while time.perf_counter() < stop_at:
            operation = next(generator)
            start = time.perf_counter()
            try:
                adapter.execute(operation)
            except Exception:  # reprolint: disable=broad-except -- benchmark workers count failures instead of dying mid-measurement
                errors[requester_id] += 1
                continue
            counts[requester_id] += 1
            if record_latency:
                elapsed = time.perf_counter() - start
                with latency_lock:
                    latencies.setdefault(operation[0], []).append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(requesters)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    result = ThroughputResult(
        requesters=requesters,
        duration=elapsed,
        operations=sum(counts),
        errors=sum(errors),
    )
    if record_latency:
        for name, samples in latencies.items():
            result.per_op_seconds[name] = sum(samples) / len(samples)
            result.per_op_max[name] = max(samples)
    return result
