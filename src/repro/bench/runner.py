"""Timing protocol.

The paper (§3.2): "we ran each query 10 times, discarded the first run, and
report the mean query time".  :func:`warm_cache_time` implements exactly
that protocol (with a configurable run count so the full suite stays fast);
:func:`median_time` is a cheaper variant for smoke benchmarks.
"""

from __future__ import annotations

import statistics
import time


def warm_cache_time(fn, runs=10, discard_first=True):
    """Mean wall-clock seconds of *fn* over warm-cache runs.

    Runs *fn* ``runs`` times, discards the first (cold) run when
    ``discard_first``, and returns ``(mean_seconds, samples)``.
    """
    samples = []
    for __ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    kept = samples[1:] if discard_first and len(samples) > 1 else samples
    return statistics.fmean(kept), samples


def median_time(fn, runs=5):
    """Median wall-clock seconds of *fn* over *runs* runs."""
    samples = []
    for __ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class StopWatch:
    """Accumulates named wall-clock measurements."""

    def __init__(self):
        self.samples: dict[str, list[float]] = {}

    def measure(self, name, fn):
        start = time.perf_counter()
        result = fn()
        self.samples.setdefault(name, []).append(time.perf_counter() - start)
        return result

    def mean(self, name):
        return statistics.fmean(self.samples[name])

    def maximum(self, name):
        return max(self.samples[name])
