"""Blocking client for the SQLGraph server.

:class:`SQLGraphClient` speaks the framed-JSON protocol of
:mod:`repro.server.protocol`: one request frame out, one response frame
in, matched by request id.  Mirrors the embedded store's query surface::

    from repro.client import SQLGraphClient

    with SQLGraphClient("127.0.0.1", 7687) as client:
        names = client.run("g.V.has('age', T.gt, 28).name")
        result = client.sql("SELECT COUNT(*) FROM va WHERE vid >= 0")
        with client.transaction():
            client.sql("INSERT INTO kv VALUES (?, ?)", [1, "one"])

Failure handling
----------------

Server-side failures surface as :class:`~repro.server.protocol.WireError`
with a typed ``code`` and a ``retryable`` flag.  The client additionally
*retries transparently* when it is provably safe:

* **idempotent reads** (``gremlin``/``run``/``sql`` SELECTs, ``ping``,
  ``stats``) are re-sent after a reconnect when the connection drops, and
  re-sent after a backoff on retryable rejections (``SERVER_BUSY``);
* **everything else** (writes, transaction control) is never auto-retried
  — a dropped connection mid-write means the commit state is unknown, so
  the error propagates to the caller;
* retries never happen inside an open transaction: the session (and its
  transaction) died with the old connection.
"""

from __future__ import annotations

import itertools
import socket
import time

from repro.server.protocol import (
    ConnectionClosedError,
    FrameAssembler,
    FrameError,
    PROTOCOL_VERSION,
    WireError,
    recv_message,
    send_message,
)

CLIENT_NAME = "repro-client/1.0"

#: ops safe to re-send regardless of session state (no data access, or
#: access to server metadata only)
ALWAYS_IDEMPOTENT_OPS = frozenset({"ping", "stats"})

#: read-only ops: safe to re-send unless the session had an open
#: transaction (the transaction died with the old connection, so a
#: retried read would silently run outside it).  ``analytics`` belongs
#: here — a run reads a frozen scratch copy of the graph and writes
#: nothing, so a reconnect-and-retry returns the same answer.
READ_ONLY_OPS = frozenset({"gremlin", "run", "analytics", "hop", "fetch"})

#: ``crud`` sub-actions that only read (everything else mutates and must
#: never be auto-retried: a dropped connection mid-write leaves the
#: commit state unknown)
CRUD_READ_ACTIONS = frozenset({"get_vertex", "get_edge"})

#: ``sql`` statements retryable by leading keyword
SQL_READ_PREFIXES = ("select", "explain")


def classify_idempotent(op, payload=None, in_transaction=False):
    """Is one request provably safe to re-send after a failure?

    The single source of truth for the client's retry loop: pure reads
    outside a transaction are idempotent, every mutation and all
    transaction control is not.
    """
    if op in ALWAYS_IDEMPOTENT_OPS:
        return True
    if in_transaction:
        return False
    if op in READ_ONLY_OPS:
        return True
    payload = payload or {}
    if op == "sql":
        query = payload.get("query", "")
        return query.lstrip().lower().startswith(SQL_READ_PREFIXES)
    if op == "crud":
        return payload.get("action") in CRUD_READ_ACTIONS
    return False


class ClientError(Exception):
    """Client-side failure (connect, handshake, response mismatch)."""


class ResultSet:
    """Client-side mirror of the engine ResultSet (columns + rows)."""

    __slots__ = ("columns", "rows", "rowcount", "stats")

    def __init__(self, columns=(), rows=(), rowcount=0, stats=None):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        self.rowcount = rowcount
        self.stats = stats

    def scalar(self):
        if not self.rows:
            return None
        return self.rows[0][0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


class SQLGraphClient:
    """A blocking connection to a SQLGraph server.

    :param host/port: server address.
    :param connect_timeout_s: TCP connect + handshake budget.
    :param request_timeout_s: per-response wait budget.
    :param retries: extra attempts for idempotent reads (see module doc).
    :param retry_backoff_s: base sleep between retry attempts (doubles
        per attempt).
    """

    def __init__(self, host="127.0.0.1", port=7687, connect_timeout_s=5.0,
                 request_timeout_s=30.0, retries=2, retry_backoff_s=0.05,
                 client_name=CLIENT_NAME):
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.client_name = client_name
        self.session_id = None
        self.reconnects = 0
        #: stats dict of the most recent :meth:`analytics` run
        self.last_analytics_stats = None
        self._sock = None
        self._assembler = None
        self._ids = itertools.count(1)
        self._in_transaction = False

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self):
        """Open the socket and run the protocol handshake.  Idempotent."""
        if self._sock is not None:
            return self
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        # one ownership boundary: until the handshake fully succeeds,
        # *any* failure — transport, timeout, a bad reply — closes the
        # socket before the exception escapes
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            assembler = FrameAssembler()
            try:
                send_message(sock, {
                    "op": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "client": self.client_name,
                })
                reply = recv_message(sock, assembler)
            except (OSError, ConnectionClosedError, FrameError) as exc:
                raise ClientError(f"handshake failed: {exc}") from None
            if reply is None:
                raise ClientError("handshake timed out")
            if reply.get("ok") is False:
                raise WireError.from_payload(reply.get("error", {}))
            if reply.get("op") != "hello" or reply.get("protocol") != \
                    PROTOCOL_VERSION:
                raise ClientError(f"unexpected handshake reply: {reply!r}")
            sock.settimeout(self.request_timeout_s)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._assembler = assembler
        self.session_id = reply.get("session")
        self._in_transaction = False
        return self

    def close(self):
        """Close the connection.  Idempotent."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._assembler = None
                self.session_id = None
                self._in_transaction = False

    def _drop_connection(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._assembler = None
        self.session_id = None
        self._in_transaction = False

    @property
    def connected(self):
        return self._sock is not None

    @property
    def in_transaction(self):
        return self._in_transaction

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _request(self, op, payload=None, idempotent=None):
        """Send one request, wait for its response, unwrap the result.

        *idempotent* requests are retried across reconnects and
        retryable rejections; everything else fails fast.  When left as
        ``None`` the flag comes from :func:`classify_idempotent` — the
        declarative retryable-op table at the top of this module.
        """
        if idempotent is None:
            idempotent = classify_idempotent(
                op, payload, in_transaction=self._in_transaction
            )
        attempts = 1 + (self.retries if idempotent else 0)
        last_error = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
            try:
                return self._request_once(op, payload)
            except (ConnectionClosedError, OSError) as exc:
                self._drop_connection()
                last_error = ClientError(f"connection lost: {exc}")
                if not idempotent:
                    raise last_error from None
                self.reconnects += 1
            except WireError as exc:
                if not (idempotent and exc.retryable):
                    raise
                last_error = exc
                self._drop_connection()
        raise last_error

    def _request_once(self, op, payload):
        if self._sock is None:
            self.connect()
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        if payload:
            message.update(payload)
        send_message(self._sock, message)
        while True:
            reply = recv_message(self._sock, self._assembler)
            if reply is None:
                self._drop_connection()
                raise ConnectionClosedError(
                    f"no response within {self.request_timeout_s}s"
                )
            if reply.get("id") is None and reply.get("ok") is False:
                # unsolicited close notification (idle reap, drain)
                self._drop_connection()
                raise WireError.from_payload(reply.get("error", {}))
            if reply.get("id") != request_id:
                self._drop_connection()
                raise ClientError(
                    f"response id {reply.get('id')!r} does not match "
                    f"request id {request_id}"
                )
            if reply.get("ok"):
                return reply.get("result")
            raise WireError.from_payload(reply.get("error", {}))

    # ------------------------------------------------------------------
    # query surface (mirrors SQLGraphStore)
    # ------------------------------------------------------------------
    def ping(self):
        return self._request("ping")

    def query(self, gremlin_text):
        """Run a Gremlin query; returns a :class:`ResultSet`."""
        result = self._request("gremlin", {"query": gremlin_text})
        return ResultSet(
            result["columns"], result["rows"], stats=result.get("stats")
        )

    def run(self, gremlin_text):
        """Run a Gremlin query; returns the list of result values."""
        result = self._request("run", {"query": gremlin_text})
        return result["values"]

    def sql(self, sql_text, params=None):
        """Raw SQL.  SELECTs outside a transaction are retried safely."""
        payload = {"query": sql_text}
        if params is not None:
            payload["params"] = list(params)
        result = self._request("sql", payload)
        return ResultSet(
            result["columns"], result["rows"], result.get("rowcount", 0)
        )

    def shell(self, line):
        """One REPL line, executed server-side; returns the output text."""
        result = self._request("shell", {"line": line})
        return result["output"]

    # ------------------------------------------------------------------
    # bulk analytics (one request per full run; see docs/ANALYTICS.md)
    # ------------------------------------------------------------------
    def analytics(self, algorithm, **options):
        """One full analytics run server-side; returns ``{vid: value}``.

        Analytics read a frozen scratch copy of the live graph and write
        nothing, so a dropped connection mid-run is safe to retry; the
        per-run :class:`~repro.obs.stats.AnalyticsStats` dict lands on
        :attr:`last_analytics_stats`.
        """
        result = self._request(
            "analytics", {"algorithm": algorithm, "options": options}
        )
        self.last_analytics_stats = result.get("stats")
        return {vid: value for vid, value in result["rows"]}

    def pagerank(self, **options):
        return self.analytics("pagerank", **options)

    def connected_components(self, **options):
        return self.analytics("components", **options)

    def label_propagation(self, **options):
        return self.analytics("labelprop", **options)

    def shortest_paths(self, source, **options):
        return self.analytics("sssp", source=source, **options)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self):
        result = self._request("begin")
        self._in_transaction = True
        return result["txid"]

    def commit(self):
        try:
            return self._request("commit")
        finally:
            self._in_transaction = False

    def rollback(self):
        try:
            return self._request("rollback")
        finally:
            self._in_transaction = False

    def transaction(self):
        """``with client.transaction():`` — commit on success, roll back
        on exception (same contract as ``Database.transaction()``)."""
        client = self

        class _RemoteTransaction:
            def __enter__(self):
                client.begin()
                return client

            def __exit__(self, exc_type, exc, tb):
                if exc_type is None:
                    client.commit()
                elif client.connected and client.in_transaction:
                    try:
                        client.rollback()
                    except (ClientError, WireError):
                        pass
                return False

        return _RemoteTransaction()

    # ------------------------------------------------------------------
    # session settings / introspection
    # ------------------------------------------------------------------
    def set_statement_timeout(self, milliseconds):
        """Bound this session's statement lock waits (None clears)."""
        return self._request(
            "set", {"settings": {"statement_timeout_ms": milliseconds}}
        )

    def stats(self):
        """Server + session + last-query statistics."""
        return self._request("stats")

    # ------------------------------------------------------------------
    # sharding transport (batched primitives; see repro.sharding.router)
    # ------------------------------------------------------------------
    def hop(self, direction, vids, labels=()):
        """Live EA rows reachable from *vids* in *direction* (read-only)."""
        result = self._request("hop", {
            "direction": direction,
            "vids": list(vids),
            "labels": list(labels),
        })
        return result["rows"]

    def fetch(self, vids=None, eids=None, all=None):
        """Batched VA/EA row fetch (see the server ``fetch`` op)."""
        payload = {}
        if vids is not None:
            payload["vids"] = list(vids)
        if eids is not None:
            payload["eids"] = list(eids)
        if all is not None:
            payload["all"] = all
        return self._request("fetch", payload)

    def crud(self, action, **args):
        """One Blueprints mutation on the remote store.

        Write actions are never auto-retried (the commit state of a
        dropped connection is unknown); the classification lives in
        :func:`classify_idempotent`.
        """
        payload = {"action": action}
        payload.update(args)
        return self._request("crud", payload)["value"]
