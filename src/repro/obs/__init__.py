"""Observability for the query path: metrics, per-query stats, plan analysis.

Two layers, both dependency-free:

* :mod:`repro.obs.metrics` — a process-global :data:`ENGINE_METRICS`
  registry of counters / gauges / timing histograms that the relational
  engine reports into (page cache, index probes, lock waits).  Disabled by
  default; the disabled path costs one branch per event.
* :mod:`repro.obs.stats` — per-query :class:`ExecutionStats` (operator
  actual rows + inclusive wall time via :func:`instrument_plan`), the
  translator's :class:`TranslationTrace`, and the store-level
  :class:`QueryStats` that ties a Gremlin query to its SQL, trace and
  execution counters.

See ``docs/OBSERVABILITY.md`` for metric names and output formats.
"""

from repro.obs.context import (
    clear_session,
    current_connection,
    current_session_id,
    session_scope,
    set_session,
)
from repro.obs.metrics import (
    Counter,
    ENGINE_METRICS,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
)
from repro.obs.stats import (
    AnalyticsStats,
    ExecutionStats,
    OperatorStats,
    QueryStats,
    TranslationTrace,
    instrument_plan,
    render_analyzed_plan,
)

__all__ = [
    "AnalyticsStats",
    "Counter",
    "ENGINE_METRICS",
    "clear_session",
    "current_connection",
    "current_session_id",
    "session_scope",
    "set_session",
    "ExecutionStats",
    "Gauge",
    "MetricsRegistry",
    "OperatorStats",
    "QueryStats",
    "TimingHistogram",
    "TranslationTrace",
    "instrument_plan",
    "render_analyzed_plan",
]
