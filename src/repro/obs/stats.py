"""Per-query execution statistics: operator counters, plan annotation.

This module is deliberately ignorant of the relational engine's classes —
it works against the small structural interface every physical operator
exposes (``rows()``/``batches()``, ``uses_batches()``, ``describe()``,
``children_ops()``, ``est_rows``), so ``repro.obs`` stays dependency-free
and the engine can import it without cycles.

The central idea: instrumentation is **opt-in per plan**.  A plan runs
untouched unless :func:`instrument_plan` wraps it first, so the disabled
path adds zero per-row work.  Wrapping replaces each operator's *native*
iterator — ``batches`` when the operator reports ``uses_batches()``,
``rows`` otherwise — with a generator that counts output and accumulates
*inclusive* wall time (time spent inside this operator's iterator,
children included — the same convention as PostgreSQL's ``EXPLAIN
ANALYZE`` actual time).  Only the native method is wrapped, and the
engine's row↔batch shims route through the instrumented instance
attribute, so nothing is ever counted twice.

Under batch execution, ``rows_out`` stays **exact**: the wrapper adds
each batch's ``selected_count()`` — the number of positions live in its
selection vector — never the physical batch size, so EXPLAIN ANALYZE
actual-row counts are identical in both executor modes.  ``batches_out``
additionally reports how many blocks flowed out of the operator.
"""

from __future__ import annotations

from time import perf_counter

#: annotation fields EXPLAIN ANALYZE can emit per operator; the reprolint
#: docs-links rule keeps docs/OBSERVABILITY.md mentioning each of these.
EXPLAIN_ANNOTATION_FIELDS = (
    "est_rows", "actual_rows", "batches", "time", "q_err",
)


def q_error(estimated, actual):
    """Per-operator Q-error: ``max(est/act, act/est)`` with a floor of 1
    on both sides (the standard cardinality-estimation quality metric —
    1.0 is a perfect estimate, symmetric in over- and underestimation)."""
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


class OperatorStats:
    """Actual row count, batch count and inclusive wall time for one plan
    operator, plus the planner's row estimate for est-vs-actual feedback."""

    __slots__ = ("rows_out", "batches_out", "time_s", "started", "est_rows")

    def __init__(self):
        self.rows_out = 0
        self.batches_out = 0
        self.time_s = 0.0
        self.started = False
        self.est_rows = None

    def q_error(self):
        """Q-error of this operator, or ``None`` before execution."""
        if not self.started or self.est_rows is None:
            return None
        return q_error(self.est_rows, self.rows_out)


class ExecutionStats:
    """Everything observed while executing one statement.

    ``operators`` maps ``id(operator)`` to :class:`OperatorStats` — the
    plan object itself is the key space, so the stats die with the plan.
    Counter deltas (page cache, index probes, lock waits) are filled in by
    the database facade around execution.
    """

    def __init__(self, sql=None):
        self.sql = sql
        self.operators = {}
        self.cte_plans = []  # (cte_name, instrumented plan root)
        self.elapsed_s = 0.0
        self.rows_returned = 0
        self.page_hits = 0
        self.page_misses = 0
        self.page_evictions = 0
        self.index_probes = 0
        self.index_range_scans = 0
        self.lock_wait_s = 0.0
        #: serving-layer attribution (``None`` outside a server session)
        self.session_id = None
        self.connection = None

    def operator_stats(self, operator):
        return self.operators.get(id(operator))

    def total_operator_rows(self):
        return sum(entry.rows_out for entry in self.operators.values())

    def operator_q_errors(self):
        """Q-errors of every operator that executed (unordered)."""
        errors = []
        for entry in self.operators.values():
            error = entry.q_error()
            if error is not None:
                errors.append(error)
        return errors

    def median_q_error(self):
        """Median per-operator Q-error, or ``None`` if nothing executed."""
        errors = sorted(self.operator_q_errors())
        if not errors:
            return None
        middle = len(errors) // 2
        if len(errors) % 2:
            return errors[middle]
        return (errors[middle - 1] + errors[middle]) / 2

    def as_dict(self):
        return {
            "sql": self.sql,
            "elapsed_s": self.elapsed_s,
            "rows_returned": self.rows_returned,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "page_evictions": self.page_evictions,
            "index_probes": self.index_probes,
            "index_range_scans": self.index_range_scans,
            "lock_wait_s": self.lock_wait_s,
            "median_q_error": self.median_q_error(),
            "session_id": self.session_id,
            "connection": self.connection,
        }


def instrument_plan(plan, stats):
    """Wrap every operator of *plan* so execution records into *stats*.

    Mutates the plan in place (plans are per-statement throwaways).  Safe
    to call once per plan; wrapping an operator twice would double-count.
    """
    seen = set()

    def wrap(operator):
        if id(operator) in seen:
            return
        seen.add(id(operator))
        entry = OperatorStats()
        entry.est_rows = getattr(operator, "est_rows", None)
        stats.operators[id(operator)] = entry

        uses_batches = getattr(operator, "uses_batches", None)
        if uses_batches is not None and uses_batches():
            original = operator.batches

            def counted_batches(_original=original, _entry=entry):
                _entry.started = True
                iterator = iter(_original())
                while True:
                    start = perf_counter()
                    try:
                        block = next(iterator)
                    except StopIteration:
                        _entry.time_s += perf_counter() - start
                        return
                    _entry.time_s += perf_counter() - start
                    # exact actual rows: count selected positions, never
                    # the physical batch size
                    _entry.rows_out += block.selected_count()
                    _entry.batches_out += 1
                    yield block

            operator.batches = counted_batches
        else:
            original = operator.rows

            def counted_rows(_original=original, _entry=entry):
                _entry.started = True
                iterator = iter(_original())
                while True:
                    start = perf_counter()
                    try:
                        row = next(iterator)
                    except StopIteration:
                        _entry.time_s += perf_counter() - start
                        return
                    _entry.time_s += perf_counter() - start
                    _entry.rows_out += 1
                    yield row

            operator.rows = counted_rows
        for child in operator.children_ops():
            wrap(child)

    wrap(plan)
    return plan


def render_analyzed_plan(plan, stats, indent=0):
    """Render an executed plan tree with actual row counts and timings.

    Mirrors the static ``explain_plan`` layout, adding ``actual_rows``,
    ``batches`` (for operators that executed vectorized) and inclusive
    ``time``; operators that never started (e.g. the probe side of a
    short-circuited join) render as ``never executed``.
    """
    entry = stats.operator_stats(plan)
    if entry is None:
        annotation = ""
    elif not entry.started:
        annotation = "  (never executed)"
    else:
        batches = (
            f" batches={entry.batches_out}" if entry.batches_out else ""
        )
        error = entry.q_error()
        q_err = f" q_err={error:.2f}" if error is not None else ""
        annotation = (
            f"  (actual_rows={entry.rows_out}{batches}"
            f" time={entry.time_s * 1000:.3f}ms{q_err})"
        )
    lines = [
        f"{'  ' * indent}{plan.describe()}  (est_rows={plan.est_rows})"
        f"{annotation}"
    ]
    for child in plan.children_ops():
        lines.extend(
            render_analyzed_plan(child, stats, indent + 1).splitlines()
        )
    return "\n".join(lines)


class TranslationTrace:
    """What the Gremlin→SQL translator did for one pipeline (paper §4.5.1).

    ``events`` is the ordered list of template applications; the named
    counters summarize which rewrites fired so tests and the slow-query log
    can assert on them without string-matching SQL.
    """

    def __init__(self):
        self.events = []
        self.cte_count = 0
        self.graphquery_merges = 0
        self.vertexquery_merges = 0
        self.ea_shortcut = False
        self.path_tracking = False
        self.loop_unrolls = 0

    def record(self, event):
        self.events.append(event)

    def as_dict(self):
        return {
            "events": list(self.events),
            "cte_count": self.cte_count,
            "graphquery_merges": self.graphquery_merges,
            "vertexquery_merges": self.vertexquery_merges,
            "ea_shortcut": self.ea_shortcut,
            "path_tracking": self.path_tracking,
            "loop_unrolls": self.loop_unrolls,
        }

    def describe(self):
        flags = []
        if self.ea_shortcut:
            flags.append("EA-shortcut")
        if self.graphquery_merges:
            flags.append(f"GraphQuery-merge x{self.graphquery_merges}")
        if self.vertexquery_merges:
            flags.append(f"VertexQuery-merge x{self.vertexquery_merges}")
        if self.loop_unrolls:
            flags.append(f"loop-unroll x{self.loop_unrolls}")
        if self.path_tracking:
            flags.append("path-tracking")
        summary = ", ".join(flags) if flags else "no rewrites"
        lines = [f"{self.cte_count} CTEs; {summary}"]
        lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)


class QueryStats:
    """Store-level view of one Gremlin query: translation + execution."""

    def __init__(self, gremlin=None, sql=None, trace=None):
        self.gremlin = gremlin
        self.sql = sql
        self.trace = trace
        self.execution = None  # ExecutionStats
        self.translate_s = 0.0
        self.elapsed_s = 0.0
        self.rows_returned = 0
        #: did this query reuse a cached Gremlin->SQL translation?
        self.translation_cache_hit = False
        #: did the engine reuse a cached prepared statement?
        self.plan_cache_hit = False
        #: point-in-time counter snapshots of both compiled-query caches
        #: ({"plan_cache": {...}, "translation_cache": {...}})
        self.cache_stats = None
        #: WAL counter snapshot (``Database.wal_stats()``); ``None`` for an
        #: in-memory store
        self.wal = None
        #: serving-layer attribution (``None`` outside a server session)
        self.session_id = None
        self.connection = None
        #: scatter-gather accounting for sharded execution (``None`` on
        #: an embedded store): ``{"mode": "forward"|"scatter", "shards",
        #: "target_shard", "hops", "requests"}``
        self.sharding = None

    def as_dict(self):
        return {
            "gremlin": self.gremlin,
            "session_id": self.session_id,
            "connection": self.connection,
            "sql": self.sql,
            "translate_s": self.translate_s,
            "elapsed_s": self.elapsed_s,
            "rows_returned": self.rows_returned,
            "translation_cache_hit": self.translation_cache_hit,
            "plan_cache_hit": self.plan_cache_hit,
            "cache_stats": self.cache_stats,
            "wal": self.wal,
            "sharding": self.sharding,
            "trace": self.trace.as_dict() if self.trace else None,
            "execution": self.execution.as_dict() if self.execution else None,
        }


class AnalyticsStats:
    """Observability record of one graph-analytics run (pagerank, ...).

    Each driver iteration appends one entry to ``iterations``:
    ``{"iteration": i, "rows": frontier/update row count,
    "delta": convergence measure (algorithm-specific; None when the
    algorithm uses pure row counts), "elapsed_s": wall time}``.  The
    totals below summarize the run for the slow-query log and the
    ``analytics`` server op.
    """

    def __init__(self, algorithm, options=None):
        self.algorithm = algorithm
        #: resolved driver options (damping, tolerance, max_iterations...)
        self.options = dict(options or {})
        self.iterations = []
        #: every SQL statement the driver issued (setup + iterations)
        self.statements_executed = 0
        #: False when the run stopped at ``max_iterations`` instead of at
        #: its convergence condition
        self.converged = False
        self.result_rows = 0
        self.elapsed_s = 0.0
        #: serving-layer attribution (``None`` outside a server session)
        self.session_id = None
        self.connection = None

    @property
    def iteration_count(self):
        return len(self.iterations)

    def record_iteration(self, rows, delta, elapsed_s):
        self.iterations.append(
            {
                "iteration": len(self.iterations) + 1,
                "rows": rows,
                "delta": delta,
                "elapsed_s": elapsed_s,
            }
        )

    def as_dict(self):
        return {
            "algorithm": self.algorithm,
            "options": dict(self.options),
            "iterations": [dict(entry) for entry in self.iterations],
            "iteration_count": self.iteration_count,
            "statements_executed": self.statements_executed,
            "converged": self.converged,
            "result_rows": self.result_rows,
            "elapsed_s": self.elapsed_s,
            "session_id": self.session_id,
            "connection": self.connection,
        }

    def describe(self):
        state = "converged" if self.converged else "iteration-capped"
        lines = [
            f"{self.algorithm}: {self.result_rows} rows, "
            f"{self.iteration_count} iterations ({state}), "
            f"{self.statements_executed} statements in "
            f"{self.elapsed_s * 1000:.3f}ms"
        ]
        for entry in self.iterations:
            delta = entry["delta"]
            delta_text = "-" if delta is None else f"{delta:.3g}"
            lines.append(
                f"  iter {entry['iteration']}: {entry['rows']} rows, "
                f"delta {delta_text}, {entry['elapsed_s'] * 1000:.3f}ms"
            )
        return "\n".join(lines)
