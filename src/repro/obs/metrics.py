"""A tiny in-process metrics registry: counters, gauges, timing histograms.

Zero dependencies, and designed so the *disabled* path costs one attribute
load plus one branch — instrumentation sites are written as::

    from repro.obs.metrics import ENGINE_METRICS

    _PROBES = ENGINE_METRICS.counter("index.probes")
    ...
    if ENGINE_METRICS.enabled:
        _PROBES.inc()

Counters are cached at the call site, so the registry dict is only touched
at import/setup time, never per event.  ``ENGINE_METRICS`` is the process
global the relational engine reports into; it starts **disabled** so the
benchmark hot paths pay nothing unless observability is explicitly turned
on (``ENGINE_METRICS.enable()``, the CLI ``:stats`` machinery, or the
``REPRO_BENCH_METRICS=1`` benchmark knob).

Histograms bucket observations by power-of-two microseconds, which is
plenty for "where does query time go" questions without the memory or
arithmetic of a real HDR histogram.
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotonically increasing count (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def reset(self):
        self.value = 0


class TimingHistogram:
    """Wall-time observations bucketed by power-of-two microseconds.

    Tracks count / total / min / max exactly; the bucket array answers
    coarse percentile questions (:meth:`quantile`).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    #: bucket upper bounds in seconds: 1us, 2us, 4us, ... ~8.4s, +inf
    BOUNDS = tuple(1e-6 * 2 ** i for i in range(24)) + (math.inf,)

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self.buckets = [0] * len(self.BOUNDS)

    def observe(self, seconds):
        self.count += 1
        self.total += seconds
        if self.minimum is None or seconds < self.minimum:
            self.minimum = seconds
        if self.maximum is None or seconds > self.maximum:
            self.maximum = seconds
        for i, bound in enumerate(self.BOUNDS):
            if seconds <= bound:
                self.buckets[i] += 1
                return

    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Upper bound of the bucket holding the q-quantile observation."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        running = 0
        for i, bound in enumerate(self.BOUNDS):
            running += self.buckets[i]
            if running >= target:
                return bound
        return self.BOUNDS[-1]

    def reset(self):
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self.buckets = [0] * len(self.BOUNDS)


class _Timer:
    """Context manager that observes elapsed wall time into a histogram."""

    __slots__ = ("_registry", "_histogram", "_start")

    def __init__(self, registry, histogram):
        self._registry = registry
        self._histogram = histogram
        self._start = None

    def __enter__(self):
        if self._registry.enabled:
            from time import perf_counter

            self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._start is not None:
            from time import perf_counter

            self._histogram.observe(perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named counters, gauges and timing histograms behind one enable flag.

    The ``enabled`` attribute is a plain bool read by instrumentation sites;
    the registry itself never sits on a hot path.  Metric objects are created
    on demand and live for the registry's lifetime, so call sites can (and
    should) cache them.
    """

    def __init__(self, enabled=False):
        self.enabled = enabled
        self._metrics = {}
        self._guard = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def reset(self):
        """Zero every registered metric (the set of names is kept)."""
        with self._guard:
            for metric in self._metrics.values():
                metric.reset()

    # ------------------------------------------------------------------
    # metric accessors
    # ------------------------------------------------------------------
    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._guard:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = factory(name)
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {factory.__name__}"
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, TimingHistogram)

    def time(self, name):
        """``with registry.time("stage"):`` — no-op when disabled."""
        return _Timer(self, self.histogram(name))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def value(self, name):
        """Current value of a counter/gauge (0 if never created)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        return metric.value

    def snapshot(self):
        """Flat ``{name: number}`` view of every metric.

        Histograms expand into ``name.count`` / ``name.total_s`` /
        ``name.mean_s`` / ``name.max_s`` entries.
        """
        out = {}
        with self._guard:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, TimingHistogram):
                out[f"{metric.name}.count"] = metric.count
                out[f"{metric.name}.total_s"] = metric.total
                out[f"{metric.name}.mean_s"] = metric.mean()
                out[f"{metric.name}.max_s"] = metric.maximum or 0.0
            else:
                out[metric.name] = metric.value
        return out


#: Process-global registry the relational engine reports into.  Disabled by
#: default; benchmarks and the CLI flip it on explicitly.
ENGINE_METRICS = MetricsRegistry(enabled=False)
