"""Per-thread session attribution for observability records.

The serving layer (:mod:`repro.server`) executes each client session on a
dedicated worker thread.  Binding the session/connection identity to the
thread lets every layer below — the store's slow-query log, the engine's
``EXPLAIN ANALYZE`` stats, lock-timeout errors — stamp its records with
*who* ran the statement without threading a session object through every
call signature.

Embedded (non-server) use never touches this module: the context defaults
to ``None`` and every consumer treats that as "no session".
"""

from __future__ import annotations

import threading

_CONTEXT = threading.local()


def set_session(session_id, connection=None):
    """Bind the calling thread's work to *session_id*.

    :param session_id: server-assigned session number (int).
    :param connection: optional peer description, e.g. ``"127.0.0.1:52114"``.
    """
    _CONTEXT.session_id = session_id
    _CONTEXT.connection = connection


def clear_session():
    """Detach the calling thread from any session."""
    _CONTEXT.session_id = None
    _CONTEXT.connection = None


def current_session_id():
    """The session id bound to this thread, or ``None``."""
    return getattr(_CONTEXT, "session_id", None)


def current_connection():
    """The peer description bound to this thread, or ``None``."""
    return getattr(_CONTEXT, "connection", None)


class session_scope:
    """``with session_scope(sid, conn):`` — bind and always unbind."""

    def __init__(self, session_id, connection=None):
        self.session_id = session_id
        self.connection = connection

    def __enter__(self):
        set_session(self.session_id, self.connection)
        return self

    def __exit__(self, exc_type, exc, tb):
        clear_session()
        return False
