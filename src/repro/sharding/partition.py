"""Vertex ownership and bulk graph partitioning.

Ownership is a pure function of the vertex id: ``shard_of(vid, n)``
hashes the id through the Knuth multiplicative constant so consecutive
ids (the common allocation pattern) spread evenly instead of striping.
Every edge lives on the shard that owns its **source** vertex, so a
vertex's complete out-adjacency — the hot direction for traversals — is
always a single-shard lookup; in-hops are resolved by broadcasting to
all shards (the edge can have been stored anywhere).

``partition_graph`` splits one in-memory property graph into per-shard
subgraphs suitable for :class:`~repro.core.loader.SQLGraphLoader`:

* shard *s* holds VA rows for exactly the vertices it owns;
* shard *s* holds EA/OPA rows for exactly the edges whose source it
  owns.  A cross-shard edge's head vertex is represented by a *ghost*
  :class:`~repro.graph.model.Vertex` — referenced by the edge object so
  the loader can read ``edge.in_vertex.id``, but never yielded by
  ``vertices()``, so no duplicate VA row exists anywhere;
* a shard's IPA rows cover only its **local** edges.  In-adjacency of
  cross-shard edges is intentionally represented nowhere: the router
  never uses IPA across shards (it broadcasts ``ea.inv`` probes), and a
  worker queried directly serves only its own fragment.
"""

from __future__ import annotations

from repro.graph.model import Edge, PropertyGraph, Vertex

#: Knuth's multiplicative hashing constant (2^32 / phi)
_KNUTH = 2654435761
_MASK = 0xFFFFFFFF


def shard_of(vid, num_shards):
    """The shard index owning vertex *vid* in a *num_shards* cluster."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return ((int(vid) * _KNUTH) & _MASK) % num_shards


def owner_groups(vids, num_shards):
    """Group *vids* by owning shard: ``{shard_index: [vid, ...]}``.

    Preserves first-seen order within each group and drops duplicates —
    the shape every scatter call wants its frontier in.
    """
    groups = {}
    seen = set()
    for vid in vids:
        if vid in seen:
            continue
        seen.add(vid)
        groups.setdefault(shard_of(vid, num_shards), []).append(vid)
    return groups


def partition_graph(graph, num_shards):
    """Split *graph* into *num_shards* loadable subgraphs.

    Returns a list of :class:`PropertyGraph` objects, one per shard,
    following the ownership rules in the module docstring.  The input
    graph is not modified; vertices, edges and property dicts are
    copied.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    shards = [PropertyGraph() for _ in range(num_shards)]
    for vertex in graph.vertices():
        index = shard_of(vertex.id, num_shards)
        shards[index].add_vertex(vertex.id, dict(vertex.properties))
    # ghost head vertices per shard: referenced by local edge objects but
    # never registered, so the loader sees them only through the edge
    ghosts = [dict() for _ in range(num_shards)]
    for edge in graph.edges():
        index = shard_of(edge.out_vertex.id, num_shards)
        subgraph = shards[index]
        tail = subgraph.get_vertex(edge.out_vertex.id)
        head = subgraph.get_vertex(edge.in_vertex.id)
        if head is None:
            head = ghosts[index].get(edge.in_vertex.id)
            if head is None:
                head = Vertex(edge.in_vertex.id, dict(edge.in_vertex.properties))
                ghosts[index][edge.in_vertex.id] = head
        _register_edge(
            subgraph,
            Edge(edge.id, tail, head, edge.label, dict(edge.properties)),
        )
    return shards


def _register_edge(subgraph, edge):
    """Attach *edge* to *subgraph* without endpoint-existence validation.

    ``PropertyGraph.add_edge`` requires both endpoints to be registered
    vertices; a partitioned subgraph deliberately dangles edge heads
    into ghost vertices, so the edge is wired up manually here.
    """
    subgraph._edges[edge.id] = edge
    subgraph._next_edge_id = max(subgraph._next_edge_id, edge.id + 1)
    edge.out_vertex.out_edges.setdefault(edge.label, []).append(edge)
    edge.in_vertex.in_edges.setdefault(edge.label, []).append(edge)
