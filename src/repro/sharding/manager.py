"""Shard process supervision: launch, monitor, restart.

:class:`ShardManager` spawns one ``python -m repro.server`` process per
shard — each loading its hash-partition of the dataset into its own
durable directory with its own WAL — and keeps them alive: a monitor
thread polls the processes and respawns any that die, re-binding the
same port so the coordinator's client pools reconnect transparently.
Recovery is the ordinary single-store path (the data directory already
holds a schema, so the dataset load is skipped and the WAL replays),
which is what makes per-shard crash recovery composable: kill -9 one
worker and only its partition replays.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

READY_PREFIX = "listening on "


class ShardStartupError(RuntimeError):
    """A shard process exited (or went silent) before announcing its port."""


class ShardProcess:
    """One supervised worker: spawn args + the live Popen handle."""

    def __init__(self, index, path, port=0):
        self.index = index
        self.path = path
        self.port = port  # 0 until the first boot announces one
        self.process = None
        self.restarts = 0

    @property
    def alive(self):
        return self.process is not None and self.process.poll() is None


class ShardManager:
    """Launch and supervise N shard server processes.

    :param num_shards: cluster width (the hash modulus).
    :param data_dir: root directory; shard *i* persists under
        ``data_dir/shard-<i>``.
    :param dataset/scale: partitioned bulk load on first boot.
    :param host: bind address for every worker.
    :param base_port: first worker port; 0 assigns ephemeral ports
        (recorded after boot and re-used on restart).
    :param env: extra environment variables for the workers (e.g.
        ``REPRO_WAL_FSYNC``).
    :param supervise: restart dead workers automatically.
    """

    POLL_INTERVAL_S = 0.2
    BOOT_TIMEOUT_S = 60.0

    def __init__(self, num_shards, data_dir, dataset="tinker", scale=1.0,
                 host="127.0.0.1", base_port=0, workers_per_shard=4,
                 env=None, supervise=True):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.data_dir = Path(data_dir)
        self.dataset = dataset
        self.scale = scale
        self.host = host
        self.workers_per_shard = workers_per_shard
        self.env = dict(env or {})
        self.supervise = supervise
        self.shards = [
            ShardProcess(
                index,
                self.data_dir / f"shard-{index}",
                port=0 if base_port == 0 else base_port + index,
            )
            for index in range(num_shards)
        ]
        self._monitor = None
        self._stopping = threading.Event()
        self._guard = threading.Lock()

    # ------------------------------------------------------------------
    def start(self):
        """Boot every shard, wait for readiness, start supervision."""
        self._stopping.clear()
        for shard in self.shards:
            self._spawn(shard)
        if self.supervise:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="shard-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def stop(self, timeout_s=10.0):
        """Graceful SIGTERM to every worker, SIGKILL stragglers."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout_s)
            self._monitor = None
        with self._guard:
            shards = list(self.shards)
        for shard in shards:
            if shard.alive:
                shard.process.terminate()
        deadline = time.monotonic() + timeout_s
        for shard in shards:
            if shard.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shard.process.kill()
                shard.process.wait(timeout=5.0)

    def addresses(self):
        return [(self.host, shard.port) for shard in self.shards]

    def kill(self, index, sig=signal.SIGKILL):
        """Hard-kill one worker (crash testing); supervision restarts it."""
        shard = self.shards[index]
        if shard.alive:
            os.kill(shard.process.pid, sig)
            shard.process.wait(timeout=10.0)

    def wait_alive(self, index, timeout_s=30.0):
        """Block until shard *index* is accepting again (post-kill).

        "Alive" means the respawned process is actually serving — its
        listener accepts a TCP connection — not merely forked.
        """
        deadline = time.monotonic() + timeout_s
        shard = self.shards[index]
        while time.monotonic() < deadline:
            if shard.alive and self._accepting(shard):
                return True
            time.sleep(self.POLL_INTERVAL_S)
        return False

    def _accepting(self, shard):
        try:
            socket.create_connection(
                (self.host, shard.port), timeout=0.5
            ).close()
            return True
        except OSError:
            return False

    def describe(self):
        """Supervision snapshot for the ``:shards`` report."""
        return [
            {
                "shard": shard.index,
                "address": f"{self.host}:{shard.port}",
                "pid": shard.process.pid if shard.alive else None,
                "alive": shard.alive,
                "restarts": shard.restarts,
            }
            for shard in self.shards
        ]

    # ------------------------------------------------------------------
    def _spawn(self, shard):
        shard.path.mkdir(parents=True, exist_ok=True)
        command = [
            sys.executable, "-u", "-m", "repro.server",
            "--host", self.host,
            "--port", str(shard.port),
            "--path", str(shard.path),
            "--dataset", self.dataset,
            "--scale", str(self.scale),
            "--workers", str(self.workers_per_shard),
            "--shard-index", str(shard.index),
            "--shard-count", str(self.num_shards),
        ]
        env = dict(os.environ)
        env.update(self.env)
        # the workers import repro from this checkout even when the
        # package is not installed
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src, env.get("PYTHONPATH")) if part
        )
        shard.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        shard.port = self._await_ready(shard)
        return shard

    def _await_ready(self, shard):
        deadline = time.monotonic() + self.BOOT_TIMEOUT_S
        while time.monotonic() < deadline:
            line = shard.process.stdout.readline()
            if not line:
                raise ShardStartupError(
                    f"shard {shard.index} exited before announcing its "
                    f"port (rc={shard.process.poll()})"
                )
            line = line.strip()
            if line.startswith(READY_PREFIX):
                return int(line.rsplit(":", 1)[1])
        raise ShardStartupError(
            f"shard {shard.index} did not become ready within "
            f"{self.BOOT_TIMEOUT_S}s"
        )

    def _monitor_loop(self):
        while not self._stopping.is_set():
            for shard in self.shards:
                if self._stopping.is_set():
                    return
                if not shard.alive:
                    shard.restarts += 1
                    try:
                        self._spawn(shard)
                    except ShardStartupError:
                        # stay in the loop; the next sweep tries again
                        continue
            self._stopping.wait(self.POLL_INTERVAL_S)
