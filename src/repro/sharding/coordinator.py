"""The coordinator: a wire-compatible server over a sharded cluster.

:class:`CoordinatorServer` is a :class:`~repro.server.server.
SQLGraphServer` whose "store" is a :class:`~repro.sharding.router.
ShardedStore`, so every existing client — ``SQLGraphClient``,
``repro.cli --connect``, the benchmark drivers — talks to a cluster
through the same framed-JSON protocol without changes.  Gremlin reads,
the remote shell and Blueprints CRUD are inherited; the handlers that
only make sense against a single relational engine are overridden with
typed errors:

* ``begin``/``commit``/``rollback`` — there is no distributed
  transaction; multi-statement atomicity is per-shard only;
* ``sql`` and ``analytics`` — shard-local by design: connect to an
  individual worker to run them against one partition;
* ``hop``/``fetch`` — internal shard primitives; the coordinator is the
  caller of those, never the callee.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.relational.errors import TransactionError
from repro.server.server import SQLGraphServer, _BadRequest

SERVER_NAME = "sqlgraph-coordinator/1.0"


class CoordinatorServer(SQLGraphServer):
    """Serve a :class:`~repro.sharding.router.ShardedStore` cluster."""

    def __init__(self, store, **options):
        if not getattr(store, "is_sharded", False):
            raise TypeError("CoordinatorServer requires a ShardedStore")
        super().__init__(store, **options)

    # the coordinator holds no table locks of its own; each worker shard
    # applies the session budget to its local statement
    def _statement_budget(self, session):
        return nullcontext()

    # ------------------------------------------------------------------
    # shard-local ops -> typed errors
    # ------------------------------------------------------------------
    def _op_begin(self, session, message):
        raise TransactionError(
            "the sharded coordinator does not support client "
            "transactions; atomicity is per autocommitted statement, "
            "per shard"
        )

    def _op_commit(self, session, message):
        raise TransactionError("no transaction: the coordinator never "
                               "opened one")

    def _op_rollback(self, session, message):
        raise TransactionError("no transaction: the coordinator never "
                               "opened one")

    def _op_sql(self, session, message):
        raise _BadRequest(
            "raw SQL is shard-local; connect to an individual shard "
            "server to query its partition"
        )

    def _op_analytics(self, session, message):
        raise _BadRequest(
            "bulk analytics is shard-local; connect to an individual "
            "shard server to run it over one partition"
        )

    def _op_hop(self, session, message):
        raise _BadRequest("hop is a shard-internal op; the coordinator "
                          "issues it, workers serve it")

    def _op_fetch(self, session, message):
        raise _BadRequest("fetch is a shard-internal op; the coordinator "
                          "issues it, workers serve it")

    _HANDLERS = dict(SQLGraphServer._HANDLERS)
    _HANDLERS.update({
        "begin": _op_begin,
        "commit": _op_commit,
        "rollback": _op_rollback,
        "sql": _op_sql,
        "analytics": _op_analytics,
        "hop": _op_hop,
        "fetch": _op_fetch,
    })

    # ------------------------------------------------------------------
    def _store_statistics(self):
        return None  # no local relational engine on the coordinator

    def stats(self):
        """Serving counters plus per-shard health."""
        payload = super().stats()
        payload["shards"] = self.store.shard_health()
        return payload
