"""``repro-shard`` / ``python -m repro.sharding`` — boot a sharded cluster.

Usage::

    repro-shard --shards 4 --dataset linkbench --data-dir /var/lib/sqlgraph
    repro-shard --shards 2 --port 0      # ephemeral coordinator port

Launches N worker shard processes (hash-partitioned bulk load, per-shard
WAL), supervises them (dead workers are respawned on their learned
port), and serves the scatter-gather coordinator on ``--port``.  Any
SQLGraph client — ``sqlgraph-shell --connect``, benchmarks — can point
at the coordinator transparently.  Readiness is announced by printing
``listening on HOST:PORT`` once the coordinator is up; ``SIGTERM`` /
``SIGINT`` drains the coordinator then stops the workers.
"""

from __future__ import annotations

import argparse
import signal
import sys
import tempfile
import threading

from repro.sharding.coordinator import CoordinatorServer
from repro.sharding.manager import ShardManager
from repro.sharding.router import ShardedStore


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-shard",
        description="SQLGraph sharded cluster: N workers + coordinator",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="number of hash partitions / worker processes",
    )
    parser.add_argument(
        "--dataset", default="tinker",
        choices=["tinker", "classic", "dbpedia", "linkbench"],
        help="graph to partition and load on first boot",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier for dbpedia/linkbench",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="root directory for per-shard durable storage "
        "(shard-0/, shard-1/, ...); a temp dir when omitted",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7688,
        help="coordinator TCP port (0 = ephemeral, printed on stdout)",
    )
    parser.add_argument(
        "--shard-base-port", type=int, default=0,
        help="first worker port (0 = ephemeral per worker)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="coordinator worker pool size = concurrent session cap",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=4,
        help="worker pool size of each shard server",
    )
    args = parser.parse_args(argv)
    if args.shards <= 0:
        parser.error("--shards must be positive")

    stop = threading.Event()

    def _request_shutdown(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="repro-shard-")
    manager = ShardManager(
        args.shards,
        data_dir,
        dataset=args.dataset,
        scale=args.scale,
        host=args.host,
        base_port=args.shard_base_port,
        workers_per_shard=args.shard_workers,
    )
    print(f"starting {args.shards} shard workers under {data_dir}",
          flush=True)
    manager.start()
    for shard, (host, port) in zip(manager.shards, manager.addresses()):
        print(f"shard {shard.index} on {host}:{port}", flush=True)

    store = ShardedStore.connect(manager.addresses(), manager=manager)
    server = CoordinatorServer(
        store, host=args.host, port=args.port, max_workers=args.workers,
    )
    try:
        server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        stop.wait()
        print("shutting down: draining sessions", flush=True)
        server.shutdown()
    finally:
        manager.stop()
    print("bye", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
