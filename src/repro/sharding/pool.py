"""A small blocking client pool, one per shard.

The coordinator fans a hop out to several shards from parallel threads,
and each thread needs a connection of its own (the wire protocol is one
request in flight per connection).  The pool keeps idle
:class:`~repro.client.SQLGraphClient` connections around between
requests and discards any connection whose socket died — the next
checkout transparently dials a fresh one, which is how the router
reconnects after a shard restart.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager

from repro.client import SQLGraphClient


class ShardClientPool:
    """Reusable client connections to one shard server.

    :param shard_index: position of the shard in the cluster (labels
        errors and health reports).
    :param host/port: shard server address.
    :param max_idle: connections kept warm between requests; checkouts
        beyond this are created on demand and closed on return.
    """

    def __init__(self, shard_index, host, port, max_idle=4,
                 connect_timeout_s=5.0, request_timeout_s=30.0,
                 client_factory=SQLGraphClient):
        self.shard_index = shard_index
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.client_factory = client_factory
        self._idle = deque()
        self._guard = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def set_address(self, host, port):
        """Point the pool at a restarted shard (drops idle connections)."""
        with self._guard:
            self.host = host
            self.port = port
            stale, self._idle = list(self._idle), deque()
        for client in stale:
            client.close()

    @contextmanager
    def client(self):
        """Check a connected client out, return it on success.

        A client whose connection died inside the block (the
        ``SQLGraphClient`` drops its socket on any transport error) is
        discarded instead of returned, so one broken socket never
        poisons later requests.
        """
        with self._guard:
            if self._closed:
                raise RuntimeError(
                    f"client pool for shard {self.shard_index} is closed"
                )
            client = self._idle.popleft() if self._idle else None
            host, port = self.host, self.port
        if client is None:
            client = self.client_factory(
                host, port,
                connect_timeout_s=self.connect_timeout_s,
                request_timeout_s=self.request_timeout_s,
            )
        try:
            yield client
        finally:
            returned = False
            if client.connected:
                with self._guard:
                    if not self._closed and len(self._idle) < self.max_idle \
                            and (client.host, client.port) == (self.host,
                                                               self.port):
                        self._idle.append(client)
                        returned = True
            if not returned:
                client.close()

    def close(self):
        with self._guard:
            self._closed = True
            idle, self._idle = list(self._idle), deque()
        for client in idle:
            client.close()
