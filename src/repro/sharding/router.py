"""The scatter-gather query router over a cluster of shard servers.

Three layers, bottom to top:

* :class:`ShardRouter` — owns one :class:`~repro.sharding.pool.
  ShardClientPool` per shard plus a thread pool, and exposes the batched
  cluster primitives: ``hop`` (frontier adjacency), ``fetch`` (element
  materialization), ``crud`` (routed mutations) and ``scatter`` (the
  generic parallel fan-out).  Out-hops go only to the shards owning the
  frontier (edges live with their source vertex); in-hops broadcast.

* :class:`ShardedGraph` — a per-query Blueprints view implementing the
  :class:`~repro.gremlin.interpreter.GremlinInterpreter` graph hooks
  (``adjacent_vertices``/``incident_edges``/``edge_endpoint``/
  ``lookup_vertices``) against prefetch caches, so the per-element
  interpreter semantics stay byte-for-byte identical to the single-store
  oracle while the actual I/O happens in shard-batched round trips.

* :class:`ShardedStore` — the store facade the coordinator serves:
  ``run``/``query`` route whole pipelines to a single shard when every
  step is provably shard-local (``Pipe.shard_local`` metadata), and
  otherwise evaluate through :class:`ShardedInterpreter`, which resolves
  each frontier per shard, fans the hop out in parallel threads, and
  merges + re-partitions the result frontier for the next step.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.client import CRUD_READ_ACTIONS, ClientError
from repro.graph.blueprints import Direction
from repro.gremlin import GremlinInterpreter, parse_gremlin
from repro.gremlin import pipes as p
from repro.obs.stats import QueryStats
from repro.server.protocol import SHARD_UNAVAILABLE, WireError
from repro.sharding.partition import owner_groups, shard_of
from repro.sharding.pool import ShardClientPool


class ShardUnavailableError(WireError):
    """A worker shard could not be reached (down or mid-restart).

    ``retryable`` is per-request, not per-code: a lost shard during an
    idempotent read fan-out left the cluster unchanged (safe to re-send
    once the shard restarts), while the same loss mid-mutation may have
    landed the write before the ack — the static classification of
    ``SHARD_UNAVAILABLE`` stays non-retryable and reads opt in.
    """

    def __init__(self, shard_index, address, cause, retryable=False):
        super().__init__(
            SHARD_UNAVAILABLE,
            f"shard {shard_index} at {address[0]}:{address[1]} "
            f"unavailable: {cause}",
            retryable=retryable,
        )
        self.shard_index = shard_index


_DIRECTION_TOKENS = {Direction.OUT: "out", Direction.IN: "in"}


class ShardRouter:
    """Connection fan-out and frontier partitioning over N shards."""

    def __init__(self, addresses, max_idle=4, connect_timeout_s=5.0,
                 request_timeout_s=30.0):
        if not addresses:
            raise ValueError("a cluster needs at least one shard")
        self.pools = [
            ShardClientPool(
                index, host, port, max_idle=max_idle,
                connect_timeout_s=connect_timeout_s,
                request_timeout_s=request_timeout_s,
            )
            for index, (host, port) in enumerate(addresses)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.pools)),
            thread_name_prefix="shard-router",
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def num_shards(self):
        return len(self.pools)

    def owner(self, vid):
        return shard_of(vid, self.num_shards)

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False)
        for pool in self.pools:
            pool.close()

    # ------------------------------------------------------------------
    # fan-out primitives
    # ------------------------------------------------------------------
    def call(self, index, fn, retryable=False):
        """Run *fn(client)* against one shard, translating transport
        failures into :class:`ShardUnavailableError`.

        ``retryable`` declares whether *this request* is idempotent, so
        a shard loss surfaces with the right client-retry verdict."""
        pool = self.pools[index]
        try:
            with pool.client() as client:
                return fn(client)
        except (ClientError, OSError) as exc:
            raise ShardUnavailableError(
                index, (pool.host, pool.port), exc, retryable=retryable
            ) from None

    def scatter(self, work, retryable=False):
        """Run ``{shard_index: fn(client)}`` in parallel threads.

        Returns ``{shard_index: result}``.  The first failure is
        re-raised after every branch has finished (no half-running
        leftovers touching the pools).
        """
        if not work:
            return {}
        if len(work) == 1:
            ((index, fn),) = work.items()
            return {index: self.call(index, fn, retryable=retryable)}
        futures = {
            index: self._executor.submit(
                self.call, index, fn, retryable=retryable
            )
            for index, fn in work.items()
        }
        results, first_error = {}, None
        for index, future in futures.items():
            try:
                results[index] = future.result()
            except Exception as exc:  # reprolint: disable=broad-except -- every branch must finish before the first failure re-raises (no half-running leftovers touching the pools)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def broadcast(self, fn, retryable=False):
        return self.scatter(
            {i: fn for i in range(self.num_shards)}, retryable=retryable
        )

    # ------------------------------------------------------------------
    # batched graph primitives
    # ------------------------------------------------------------------
    def hop(self, token, vids, labels=()):
        """One adjacency hop for a frontier of vids.

        ``token`` is ``'out'`` or ``'in'``.  Out-edges live with their
        source vertex, so an out-hop is scattered only to the owning
        shards; in-edges can have been stored anywhere, so an in-hop is
        broadcast.  Returns ``{source_vid: [ea_row, ...]}`` with each
        row list sorted by eid (deterministic merge order).
        """
        vids = list(vids)
        if not vids:
            return {}
        labels = list(labels)
        if token == "out":
            groups = owner_groups(vids, self.num_shards)
            results = self.scatter({
                index: (lambda c, batch=batch:
                        c.hop("out", batch, labels))
                for index, batch in groups.items()
            }, retryable=True)
            key = 1  # outv
        elif token == "in":
            results = self.broadcast(
                lambda c: c.hop("in", vids, labels), retryable=True
            )
            key = 2  # inv
        else:
            raise ValueError(f"unknown hop direction {token!r}")
        merged = {}
        for rows in results.values():
            for row in rows:
                merged.setdefault(row[key], []).append(tuple(row))
        for bucket in merged.values():
            bucket.sort(key=lambda row: row[0])
        return merged

    def fetch_vertices(self, vids):
        """Live ``{vid: attr_dict}`` for the given ids, owner-routed."""
        groups = owner_groups(
            (v for v in vids if isinstance(v, int)), self.num_shards
        )
        results = self.scatter({
            index: (lambda c, batch=batch: c.fetch(vids=batch))
            for index, batch in groups.items()
        }, retryable=True)
        found = {}
        for payload in results.values():
            for vid, attr in payload.get("vertices", ()):
                found[vid] = attr
        return found

    def fetch_edges(self, eids):
        """Live ``{eid: (eid, outv, inv, lbl, attr)}``, broadcast: an
        edge lives on the shard owning its source, which the caller
        generally cannot know from the eid alone."""
        eids = [e for e in set(eids) if isinstance(e, int)]
        if not eids:
            return {}
        results = self.broadcast(lambda c: c.fetch(eids=eids),
                                 retryable=True)
        found = {}
        for payload in results.values():
            for row in payload.get("edges", ()):
                found[row[0]] = tuple(row)
        return found

    def all_vertices(self):
        """Every live VA row, concatenated in shard order."""
        results = self.broadcast(lambda c: c.fetch(all="vertices"),
                                 retryable=True)
        rows = []
        for index in sorted(results):
            rows.extend(tuple(row) for row in results[index]["vertices"])
        return rows

    def all_edges(self):
        results = self.broadcast(lambda c: c.fetch(all="edges"),
                                 retryable=True)
        rows = []
        for index in sorted(results):
            rows.extend(tuple(row) for row in results[index]["edges"])
        return rows

    def counts(self):
        results = self.broadcast(lambda c: c.fetch(all="counts"),
                                 retryable=True)
        vertices = sum(r["counts"]["vertices"] for r in results.values())
        edges = sum(r["counts"]["edges"] for r in results.values())
        return vertices, edges

    def max_ids(self):
        results = self.broadcast(lambda c: c.fetch(all="max_ids"),
                                 retryable=True)
        max_vid = max(r["max_ids"]["vid"] for r in results.values())
        max_eid = max(r["max_ids"]["eid"] for r in results.values())
        return max_vid, max_eid

    def crud(self, index, action, **args):
        return self.call(
            index, lambda c: c.crud(action, **args),
            retryable=action in CRUD_READ_ACTIONS,
        )

    def run_on(self, index, gremlin_text):
        """Forward a whole single-shard pipeline (a read)."""
        return self.call(index, lambda c: c.run(gremlin_text),
                         retryable=True)

    def health(self):
        """Per-shard liveness + serving stats (the ``:shards`` report)."""
        report = []
        for index, pool in enumerate(self.pools):
            entry = {
                "shard": index,
                "address": f"{pool.host}:{pool.port}",
                "ok": False,
            }
            try:
                stats = self.call(index, lambda c: c.stats(),
                                  retryable=True)
                server = stats.get("server", {})
                entry.update(
                    ok=True,
                    requests=server.get("requests"),
                    errors=server.get("errors"),
                    active_sessions=server.get("active_sessions"),
                )
            except WireError as exc:
                entry["error"] = str(exc)
            report.append(entry)
        return report


# ----------------------------------------------------------------------
# remote element handles (mirror SQLVertex / SQLEdge shapes)
# ----------------------------------------------------------------------
class RemoteVertex:
    """A vertex materialized on the coordinator.

    Carries its full attribute dict, so property filters and closures
    evaluate locally — only adjacency leaves the process.  Deliberately
    has no ``label`` attribute: the interpreter distinguishes edges from
    vertices by its presence.
    """

    __slots__ = ("id", "properties")

    def __init__(self, vid, properties):
        self.id = vid
        self.properties = dict(properties or {})

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def property_keys(self):
        return list(self.properties)

    def __repr__(self):
        return f"RemoteVertex({self.id})"


class RemoteEdge:
    """An edge materialized on the coordinator (one EA row)."""

    __slots__ = ("id", "outv", "inv", "label", "properties")

    def __init__(self, eid, outv, inv, label, properties):
        self.id = eid
        self.outv = outv
        self.inv = inv
        self.label = label
        self.properties = dict(properties or {})

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def property_keys(self):
        return list(self.properties)

    def __repr__(self):
        return f"RemoteEdge({self.id}, {self.outv}-[{self.label}]->{self.inv})"


class ShardedGraph:
    """Per-query Blueprints view over the cluster, with prefetch caches.

    The interpreter's per-element hooks resolve against the caches the
    batched prefetch calls populate, so evaluation order and semantics
    match the in-memory :class:`~repro.graph.model.PropertyGraph`
    exactly while I/O stays frontier-batched.  Views are cheap; create
    one per query so mutations between queries are always visible.
    """

    def __init__(self, router):
        self.router = router
        self._vertex_cache = {}  # vid -> RemoteVertex | None
        self._hop_cache = {}  # (token, labels) -> {vid: [ea_row, ...]}
        #: scatter-gather accounting for QueryStats.sharding
        self.hops = 0
        self.requests = 0

    # ------------------------------------------------------------------
    # prefetch (called by ShardedInterpreter with whole frontiers)
    # ------------------------------------------------------------------
    def prefetch_vertices(self, vids):
        missing = [v for v in set(vids)
                   if isinstance(v, int) and v not in self._vertex_cache]
        if not missing:
            return
        found = self.router.fetch_vertices(missing)
        self.requests += 1
        for vid in missing:
            attr = found.get(vid)
            self._vertex_cache[vid] = (
                RemoteVertex(vid, attr) if attr is not None else None
            )

    def _hop_bucket(self, token, labels):
        return self._hop_cache.setdefault((token, tuple(labels)), {})

    def prefetch_hops(self, vids, direction, labels):
        """Resolve the ``direction`` hop for every vid not yet cached."""
        tokens = (
            ("out", "in") if direction == "both" else (direction,)
        )
        for token in tokens:
            bucket = self._hop_bucket(token, labels)
            missing = [v for v in set(vids)
                       if isinstance(v, int) and v not in bucket]
            if not missing:
                continue
            merged = self.router.hop(token, missing, labels)
            self.hops += 1
            self.requests += 1
            for vid in missing:
                bucket[vid] = merged.get(vid, [])

    def prefetch_adjacent(self, vids, direction, labels):
        """Hop + materialize the neighbor frontier in one batch each."""
        self.prefetch_hops(vids, direction, labels)
        neighbors = []
        tokens = (
            ("out", "in") if direction == "both" else (direction,)
        )
        for token in tokens:
            bucket = self._hop_bucket(token, labels)
            position = 2 if token == "out" else 1  # inv / outv
            for vid in vids:
                for row in bucket.get(vid, ()):
                    neighbors.append(row[position])
        self.prefetch_vertices(neighbors)

    # ------------------------------------------------------------------
    # GraphInterface surface + interpreter hooks
    # ------------------------------------------------------------------
    def get_vertex(self, vertex_id):
        if vertex_id not in self._vertex_cache:
            self.prefetch_vertices([vertex_id])
        return self._vertex_cache.get(vertex_id)

    def get_edge(self, edge_id):
        found = self.router.fetch_edges([edge_id])
        self.requests += 1
        row = found.get(edge_id)
        return RemoteEdge(*row) if row else None

    def vertices(self):
        rows = self.router.all_vertices()
        self.requests += 1
        out = []
        for vid, attr in rows:
            vertex = self._vertex_cache.get(vid)
            if vertex is None:
                vertex = RemoteVertex(vid, attr)
                self._vertex_cache[vid] = vertex
            out.append(vertex)
        return out

    def edges(self):
        rows = self.router.all_edges()
        self.requests += 1
        return [RemoteEdge(*row) for row in rows]

    def vertex_count(self):
        return self.router.counts()[0]

    def edge_count(self):
        return self.router.counts()[1]

    # -- interpreter data-access hooks ---------------------------------
    def _rows_for(self, vid, token, labels):
        bucket = self._hop_bucket(token, labels)
        if vid not in bucket:
            self.prefetch_hops([vid], token, labels)
        return bucket.get(vid, [])

    def adjacent_vertices(self, vertex, direction, labels):
        if direction is Direction.BOTH:
            yield from self.adjacent_vertices(vertex, Direction.OUT, labels)
            yield from self.adjacent_vertices(vertex, Direction.IN, labels)
            return
        token = _DIRECTION_TOKENS[direction]
        position = 2 if token == "out" else 1
        rows = self._rows_for(vertex.id, token, labels)
        self.prefetch_vertices([row[position] for row in rows])
        for row in rows:
            neighbor = self._vertex_cache.get(row[position])
            if neighbor is not None:
                yield neighbor

    def incident_edges(self, vertex, direction, labels):
        if direction is Direction.BOTH:
            yield from self.incident_edges(vertex, Direction.OUT, labels)
            yield from self.incident_edges(vertex, Direction.IN, labels)
            return
        token = _DIRECTION_TOKENS[direction]
        for row in self._rows_for(vertex.id, token, labels):
            yield RemoteEdge(*row)

    def edge_endpoint(self, edge, direction):
        if direction is Direction.OUT:
            return self.get_vertex(edge.outv)
        if direction is Direction.IN:
            return self.get_vertex(edge.inv)
        raise ValueError("edge endpoint requires OUT or IN")

    def lookup_vertices(self, key, value):
        return (
            vertex
            for vertex in self.vertices()
            if vertex.get_property(key) == value
        )


class ShardedInterpreter(GremlinInterpreter):
    """GremlinInterpreter with frontier-batched scatter-gather hops.

    Before delegating each pipe to the base per-element evaluation, the
    whole frontier's data is prefetched in one parallel fan-out per
    shard — so semantics are inherited, not re-implemented, and the
    round-trip count scales with pipeline depth instead of result size.
    """

    def _eval_pipe(self, pipe, traversers, env):
        if traversers:
            if isinstance(pipe, (p.Adjacent, p.IncidentEdges)):
                frontier = [
                    t.obj.id for t in traversers
                    if isinstance(t.obj, RemoteVertex)
                ]
                if isinstance(pipe, p.Adjacent):
                    self.graph.prefetch_adjacent(
                        frontier, pipe.direction, pipe.labels
                    )
                else:
                    self.graph.prefetch_hops(
                        frontier, pipe.direction, pipe.labels
                    )
            elif isinstance(pipe, p.EdgeVertex):
                endpoints = []
                for traverser in traversers:
                    if isinstance(traverser.obj, RemoteEdge):
                        if pipe.direction in ("out", "both"):
                            endpoints.append(traverser.obj.outv)
                        if pipe.direction in ("in", "both"):
                            endpoints.append(traverser.obj.inv)
                self.graph.prefetch_vertices(endpoints)
        elif isinstance(pipe, p.StartVertices) and pipe.ids:
            self.graph.prefetch_vertices(pipe.ids)
        return super()._eval_pipe(pipe, traversers, env)


# ----------------------------------------------------------------------
# the store facade
# ----------------------------------------------------------------------
def single_shard_index(query, num_shards):
    """The one shard a pipeline can run on whole, or ``None``.

    Forwardable means: rooted at ``g.v(ids)`` with every seed owned by
    the same shard, and every subsequent pipe marked ``shard_local``
    (see :mod:`repro.gremlin.pipes`).
    """
    pipes = list(query.pipes)
    if not pipes:
        return None
    start = pipes[0]
    if not isinstance(start, p.StartVertices) or not start.ids:
        return None
    owners = {shard_of(vid, num_shards) for vid in start.ids}
    if len(owners) != 1:
        return None
    if not all(pipe.shard_local for pipe in pipes[1:]):
        return None
    return owners.pop()


class ShardedStore:
    """The coordinator's store: one logical graph over N shard servers.

    Implements the slice of the :class:`~repro.core.store.SQLGraphStore`
    surface a serving coordinator needs — Gremlin reads (``run`` /
    ``query``) and Blueprints CRUD — with identical result semantics.
    Raw SQL and bulk analytics stay shard-local by design: connect to an
    individual worker for those.
    """

    #: lets the CLI and server tell a cluster facade from an embedded store
    is_sharded = True

    def __init__(self, router, manager=None):
        self.router = router
        self.manager = manager  # optional ShardManager for supervision info
        self._id_guard = threading.Lock()
        self._next_vid = None  # lazily seeded from the cluster maxima
        self._next_eid = None
        self._stats_local = threading.local()

    @classmethod
    def connect(cls, addresses, manager=None, **router_options):
        return cls(ShardRouter(addresses, **router_options), manager=manager)

    # ------------------------------------------------------------------
    @property
    def num_shards(self):
        return self.router.num_shards

    @property
    def last_query_stats(self):
        return getattr(self._stats_local, "stats", None)

    def close(self):
        self.router.close()

    def shard_health(self):
        report = self.router.health()
        if self.manager is not None:
            for entry, shard in zip(report, self.manager.describe()):
                entry["pid"] = shard["pid"]
                entry["restarts"] = shard["restarts"]
        return report

    # ------------------------------------------------------------------
    # Gremlin reads
    # ------------------------------------------------------------------
    def run(self, gremlin_text):
        """Run a Gremlin query; returns the list of result values.

        Elements come back as bare ids — the same convention as the
        SQL-translated ``SQLGraphStore.run`` — so sharded and embedded
        results are directly comparable.
        """
        started = perf_counter()
        stats = QueryStats(gremlin=gremlin_text)
        query = parse_gremlin(gremlin_text)
        index = single_shard_index(query, self.num_shards)
        if index is not None:
            values = self.router.run_on(index, gremlin_text)
            stats.sharding = {
                "mode": "forward",
                "shards": self.num_shards,
                "target_shard": index,
                "hops": 0,
                "requests": 1,
            }
        else:
            graph = ShardedGraph(self.router)
            values = [
                _plain(value)
                for value in ShardedInterpreter(graph).run(query)
            ]
            stats.sharding = {
                "mode": "scatter",
                "shards": self.num_shards,
                "target_shard": None,
                "hops": graph.hops,
                "requests": graph.requests,
            }
        stats.rows_returned = len(values)
        stats.elapsed_s = perf_counter() - started
        self._stats_local.stats = stats
        return values

    def query(self, gremlin_text):
        """Run a Gremlin query; returns a one-column result set."""
        values = self.run(gremlin_text)
        return _ShardedResultSet(values)

    # ------------------------------------------------------------------
    # Blueprints CRUD (routed to the owning shard)
    # ------------------------------------------------------------------
    def _seed_ids(self):
        if self._next_vid is None:
            max_vid, max_eid = self.router.max_ids()
            self._next_vid = max_vid + 1
            self._next_eid = max_eid + 1

    def _allocate(self, attr, explicit):
        with self._id_guard:
            self._seed_ids()
            if explicit is None:
                explicit = getattr(self, attr)
            setattr(self, attr, max(getattr(self, attr), explicit + 1))
        return explicit

    def add_vertex(self, vertex_id=None, properties=None):
        vid = self._allocate("_next_vid", vertex_id)
        return self.router.crud(
            self.router.owner(vid), "add_vertex",
            vertex_id=vid, properties=properties,
        )

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        eid = self._allocate("_next_eid", edge_id)
        return self.router.crud(
            self.router.owner(out_vertex_id), "add_edge",
            out_vertex_id=out_vertex_id, in_vertex_id=in_vertex_id,
            label=label, edge_id=eid, properties=properties,
        )

    def get_vertex(self, vertex_id):
        found = self.router.fetch_vertices([vertex_id])
        if vertex_id not in found:
            return None
        return RemoteVertex(vertex_id, found[vertex_id])

    def get_edge(self, edge_id):
        row = self.router.fetch_edges([edge_id]).get(edge_id)
        return RemoteEdge(*row) if row else None

    def remove_vertex(self, vertex_id):
        """Delete a vertex and every incident edge, cluster-wide.

        The owner shard's delete covers the vertex row plus all locally
        stored edges (every out-edge, and in-edges from same-shard
        sources).  In-edges from *other* shards live with their sources,
        so they are found by a broadcast in-hop and deleted on their
        owning shards first.
        """
        owner = self.router.owner(vertex_id)
        incoming = self.router.hop("in", [vertex_id]).get(vertex_id, [])
        removed_any = False
        for eid, outv, _inv, _lbl, _attr in incoming:
            source_owner = self.router.owner(outv)
            if source_owner != owner:
                removed_any |= bool(self.router.crud(
                    source_owner, "remove_edge", edge_id=eid
                ))
        removed = self.router.crud(owner, "remove_vertex",
                                   vertex_id=vertex_id)
        return bool(removed) or removed_any

    def remove_edge(self, edge_id):
        row = self.router.fetch_edges([edge_id]).get(edge_id)
        if row is None:
            return False
        return bool(self.router.crud(
            self.router.owner(row[1]), "remove_edge", edge_id=edge_id
        ))

    def set_vertex_property(self, vertex_id, key, value):
        return self.router.crud(
            self.router.owner(vertex_id), "set_vertex_property",
            vertex_id=vertex_id, key=key, value=value,
        )

    def set_edge_property(self, edge_id, key, value):
        row = self.router.fetch_edges([edge_id]).get(edge_id)
        if row is None:
            raise KeyError(f"edge {edge_id} does not exist")
        return self.router.crud(
            self.router.owner(row[1]), "set_edge_property",
            edge_id=edge_id, key=key, value=value,
        )

    def vertices(self):
        return iter(ShardedGraph(self.router).vertices())

    def edges(self):
        return iter(ShardedGraph(self.router).edges())

    def vertex_count(self):
        return self.router.counts()[0]

    def edge_count(self):
        return self.router.counts()[1]


class _ShardedResultSet:
    """Engine-ResultSet shape for sharded Gremlin results."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, values):
        self.columns = ["val"]
        self.rows = [(value,) for value in values]
        self.rowcount = len(values)

    def scalar(self):
        return self.rows[0][0] if self.rows else None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


def _plain(value):
    """Map interpreter objects to wire-able values (elements -> ids)."""
    if isinstance(value, (RemoteVertex, RemoteEdge)):
        return value.id
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        # groupCount/table buckets can be keyed by elements
        return {_plain(key): _plain(item) for key, item in value.items()}
    return value
