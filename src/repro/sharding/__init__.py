"""Scale-out serving: hash-partitioned stores behind a scatter-gather router.

The single-process serving layer (:mod:`repro.server`) is capped by the
GIL and table-level locks.  This package distributes one logical graph
across N independent :class:`~repro.server.SQLGraphServer` worker
processes — each a complete SQLGraph store with its own schema, plan
caches and WAL — and puts a thin coordinator in front:

* :mod:`repro.sharding.partition` — ownership function (``shard_of``)
  and the bulk partitioner used for per-shard dataset loads;
* :mod:`repro.sharding.pool` — a small per-shard client pool over the
  existing framed-JSON wire protocol;
* :mod:`repro.sharding.router` — the scatter-gather query router:
  :class:`ShardedStore` (the store facade), :class:`ShardedGraph`
  (Blueprints adapter) and :class:`ShardedInterpreter` (frontier-batched
  Gremlin evaluation);
* :mod:`repro.sharding.coordinator` — :class:`CoordinatorServer`, a
  wire-compatible server whose "store" is a :class:`ShardedStore`, so
  ``repro.cli --connect`` works against a cluster transparently;
* :mod:`repro.sharding.manager` — :class:`ShardManager`, the process
  supervisor behind the ``repro-shard`` entry point.

See ``docs/SHARDING.md`` for the partitioning scheme, routing rules and
failure semantics.
"""

from repro.sharding.partition import partition_graph, shard_of
from repro.sharding.pool import ShardClientPool
from repro.sharding.router import ShardedStore, ShardRouter
from repro.sharding.coordinator import CoordinatorServer
from repro.sharding.manager import ShardManager

__all__ = [
    "CoordinatorServer",
    "ShardClientPool",
    "ShardManager",
    "ShardRouter",
    "ShardedStore",
    "partition_graph",
    "shard_of",
]
