"""Random property graphs for differential and property-based testing."""

from __future__ import annotations

import random

from repro.graph.model import PropertyGraph

DEFAULT_LABELS = ("knows", "created", "likes", "follows", "rated")
DEFAULT_KEYS = ("name", "age", "lang", "score")


def random_property_graph(seed=0, n_vertices=30, n_edges=60,
                          labels=DEFAULT_LABELS, keys=DEFAULT_KEYS,
                          allow_multi_edges=True):
    """Generate a random property graph with string/int attributes."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    for vertex_id in range(1, n_vertices + 1):
        properties = {}
        if rng.random() < 0.9:
            properties["name"] = f"n{rng.randrange(n_vertices * 2)}"
        if rng.random() < 0.7:
            properties["age"] = rng.randrange(18, 80)
        if rng.random() < 0.3:
            properties["lang"] = rng.choice(["java", "python", "go"])
        if rng.random() < 0.4:
            properties["score"] = round(rng.uniform(0, 10), 2)
        graph.add_vertex(vertex_id, properties)
    edge_id = n_vertices + 1
    seen_pairs = set()
    attempts = 0
    while graph.edge_count() < n_edges and attempts < n_edges * 20:
        attempts += 1
        src = rng.randrange(1, n_vertices + 1)
        dst = rng.randrange(1, n_vertices + 1)
        label = rng.choice(labels)
        if not allow_multi_edges and (src, dst, label) in seen_pairs:
            continue
        seen_pairs.add((src, dst, label))
        properties = {"weight": round(rng.uniform(0, 1), 3)}
        if rng.random() < 0.3:
            properties["since"] = rng.randrange(2000, 2020)
        graph.add_edge(src, dst, label, edge_id, properties)
        edge_id += 1
    return graph


# ----------------------------------------------------------------------
# analytics graph cases (shared by tests/test_analytics_property.py and
# benchmarks/test_analytics.py so both drive the same distribution)
# ----------------------------------------------------------------------
#: hand-picked degenerate structures every analytics algorithm must
#: survive; cases 5+ are seeded random graphs
ANALYTICS_EDGE_CASES = 5


def analytics_case_graph(case, max_vertices=20, max_edges=40):
    """Deterministic graph #*case* for analytics differential testing.

    Cases 0-4 are fixed degenerate shapes (empty graph, single vertex,
    self-loop, parallel edges in both directions, two disconnected
    triangles); higher cases are seeded random graphs with self-loops,
    parallel edges and isolated vertices.  Every edge carries a positive
    ``weight`` float property.
    """
    graph = PropertyGraph()
    if case == 0:
        return graph  # empty
    if case == 1:
        graph.add_vertex(1, {"name": "lonely"})
        return graph  # single vertex, no edges
    if case == 2:
        graph.add_vertex(1, {})
        graph.add_edge(1, 1, "self", 2, {"weight": 0.5})
        return graph  # single vertex with a self-loop
    if case == 3:
        graph.add_vertex(1, {})
        graph.add_vertex(2, {})
        graph.add_edge(1, 2, "a", 3, {"weight": 1.0})
        graph.add_edge(1, 2, "b", 4, {"weight": 2.0})
        graph.add_edge(2, 1, "a", 5, {"weight": 0.25})
        return graph  # parallel edges, both directions
    if case == 4:
        for vid in range(1, 7):
            graph.add_vertex(vid, {})
        eid = 7
        for base in (1, 4):  # two disconnected triangles
            for offset in range(3):
                src = base + offset
                dst = base + (offset + 1) % 3
                graph.add_edge(src, dst, "ring", eid, {"weight": 1.0})
                eid += 1
        return graph
    rng = random.Random(case)
    n_vertices = rng.randrange(1, max_vertices + 1)
    # density varies from near-empty (isolated vertices) to multigraph
    n_edges = rng.randrange(0, max_edges + 1)
    for vid in range(1, n_vertices + 1):
        graph.add_vertex(vid, {})
    eid = n_vertices + 1
    for __ in range(n_edges):
        src = rng.randrange(1, n_vertices + 1)
        dst = src if rng.random() < 0.1 else rng.randrange(1, n_vertices + 1)
        graph.add_edge(
            src, dst, rng.choice(("a", "b")), eid,
            {"weight": round(rng.uniform(0.1, 5.0), 3)},
        )
        eid += 1
    return graph


def analytics_scale_graph(n_vertices, n_edges, seed=0):
    """A LinkBench-flavoured power-law-ish graph for analytics benchmarks.

    Preferential attachment by sampling the endpoint of a random earlier
    edge: cheap, deterministic, and produces the skewed degree
    distribution bulk analytics care about.  Weighted like
    :func:`analytics_case_graph`.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    for vid in range(1, n_vertices + 1):
        graph.add_vertex(vid, {})
    endpoints = []
    eid = n_vertices + 1
    for __ in range(n_edges):
        if endpoints and rng.random() < 0.6:
            src = endpoints[rng.randrange(len(endpoints))]
        else:
            src = rng.randrange(1, n_vertices + 1)
        if endpoints and rng.random() < 0.3:
            dst = endpoints[rng.randrange(len(endpoints))]
        else:
            dst = rng.randrange(1, n_vertices + 1)
        graph.add_edge(
            src, dst, "link", eid,
            {"weight": round(rng.uniform(0.1, 5.0), 3)},
        )
        endpoints.append(src)
        endpoints.append(dst)
        eid += 1
    return graph
