"""Random property graphs for differential and property-based testing."""

from __future__ import annotations

import random

from repro.graph.model import PropertyGraph

DEFAULT_LABELS = ("knows", "created", "likes", "follows", "rated")
DEFAULT_KEYS = ("name", "age", "lang", "score")


def random_property_graph(seed=0, n_vertices=30, n_edges=60,
                          labels=DEFAULT_LABELS, keys=DEFAULT_KEYS,
                          allow_multi_edges=True):
    """Generate a random property graph with string/int attributes."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    for vertex_id in range(1, n_vertices + 1):
        properties = {}
        if rng.random() < 0.9:
            properties["name"] = f"n{rng.randrange(n_vertices * 2)}"
        if rng.random() < 0.7:
            properties["age"] = rng.randrange(18, 80)
        if rng.random() < 0.3:
            properties["lang"] = rng.choice(["java", "python", "go"])
        if rng.random() < 0.4:
            properties["score"] = round(rng.uniform(0, 10), 2)
        graph.add_vertex(vertex_id, properties)
    edge_id = n_vertices + 1
    seen_pairs = set()
    attempts = 0
    while graph.edge_count() < n_edges and attempts < n_edges * 20:
        attempts += 1
        src = rng.randrange(1, n_vertices + 1)
        dst = rng.randrange(1, n_vertices + 1)
        label = rng.choice(labels)
        if not allow_multi_edges and (src, dst, label) in seen_pairs:
            continue
        seen_pairs.add((src, dst, label))
        properties = {"weight": round(rng.uniform(0, 1), 3)}
        if rng.random() < 0.3:
            properties["since"] = rng.randrange(2000, 2020)
        graph.add_edge(src, dst, label, edge_id, properties)
        edge_id += 1
    return graph
