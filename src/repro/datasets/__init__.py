"""Dataset and workload generators.

* :mod:`repro.datasets.tinker` — the 4-vertex sample graph of paper
  Figure 2a and the classic 6-vertex TinkerPop graph;
* :mod:`repro.datasets.dbpedia` — a synthetic DBpedia-like property graph
  (place hierarchy, soccer players/teams, typed literals, provenance edge
  attributes) standing in for the DBpedia 3.8 dump;
* :mod:`repro.datasets.linkbench` — a LinkBench-like social-graph generator
  plus the request mix of paper Table 6;
* :mod:`repro.datasets.random_graphs` — random property graphs for
  differential / property-based testing.
"""

from repro.datasets.tinker import paper_figure_graph, tinkerpop_classic

__all__ = ["paper_figure_graph", "tinkerpop_classic"]
