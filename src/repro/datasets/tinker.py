"""Tiny fixed graphs used in documentation, tests and quickstarts."""

from repro.graph.model import PropertyGraph


def paper_figure_graph():
    """The sample property graph of paper Figure 2a.

    Four vertices (marko, vadas, lop, josh) and five labeled, weighted
    edges (knows/created/likes).
    """
    graph = PropertyGraph()
    graph.add_vertex(1, {"name": "marko", "age": 29})
    graph.add_vertex(2, {"name": "vadas", "age": 27})
    graph.add_vertex(3, {"name": "lop", "lang": "java"})
    graph.add_vertex(4, {"name": "josh", "age": 32})
    graph.add_edge(1, 2, "knows", 7, {"weight": 0.5})
    graph.add_edge(1, 4, "knows", 8, {"weight": 1.0})
    graph.add_edge(1, 3, "created", 9, {"weight": 0.4})
    graph.add_edge(4, 2, "likes", 10, {"weight": 0.2})
    graph.add_edge(4, 3, "created", 11, {"weight": 0.8})
    return graph


def tinkerpop_classic():
    """The classic 6-vertex TinkerPop toy graph."""
    graph = PropertyGraph()
    graph.add_vertex(1, {"name": "marko", "age": 29})
    graph.add_vertex(2, {"name": "vadas", "age": 27})
    graph.add_vertex(3, {"name": "lop", "lang": "java"})
    graph.add_vertex(4, {"name": "josh", "age": 32})
    graph.add_vertex(5, {"name": "ripple", "lang": "java"})
    graph.add_vertex(6, {"name": "peter", "age": 35})
    graph.add_edge(1, 2, "knows", 7, {"weight": 0.5})
    graph.add_edge(1, 4, "knows", 8, {"weight": 1.0})
    graph.add_edge(1, 3, "created", 9, {"weight": 0.4})
    graph.add_edge(4, 5, "created", 10, {"weight": 1.0})
    graph.add_edge(4, 3, "created", 11, {"weight": 0.4})
    graph.add_edge(6, 3, "created", 12, {"weight": 0.2})
    return graph
