"""LinkBench-like social-graph workload (paper §5.2 substitution).

LinkBench generates synthetic data modeled on Facebook's production social
graph: "objects" (nodes with type/version/time/data attributes) and
"associations" (typed, timestamped edges with payloads), plus a request mix
dominated by ``get_link_list``.  The paper maps objects to vertices and
associations to edges; we do the same.

This module provides:

* :func:`build_graph` — a power-law social graph at a given node scale;
* :data:`OPERATION_MIX` — the CRUD distribution of paper Table 6;
* :class:`RequestGenerator` — an infinite stream of operations;
* adapters running those operations against SQLGraph (one request = one
  SQL statement / stored procedure) and against Blueprints stores (one
  request = a pipe-at-a-time interpreter run or primitive calls).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.graph.blueprints import Direction
from repro.graph.model import PropertyGraph

NODE_TYPES = ("user", "post", "comment", "page")
ASSOC_TYPES = ("friend", "like", "comment", "follow", "authored")

# paper Table 6, "Query Disbn" column
OPERATION_MIX = [
    ("add_node", 0.026),
    ("update_node", 0.074),
    ("delete_node", 0.010),
    ("get_node", 0.129),
    ("add_link", 0.090),
    ("delete_link", 0.030),
    ("update_link", 0.080),
    ("count_link", 0.049),
    ("multiget_link", 0.005),
    ("get_link_list", 0.507),
]


@dataclass
class LinkBenchConfig:
    nodes: int = 10_000
    mean_degree: float = 4.0
    payload_bytes: int = 96
    seed: int = 11


@dataclass
class LinkBenchGraph:
    graph: PropertyGraph
    config: LinkBenchConfig
    node_ids: list
    edge_ids: list


def _payload(rng, size):
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for __ in range(size))


def build_graph(config=None):
    """Generate a LinkBench-like social graph."""
    config = config or LinkBenchConfig()
    rng = random.Random(config.seed)
    graph = PropertyGraph()
    node_ids = []
    for i in range(1, config.nodes + 1):
        graph.add_vertex(
            i,
            {
                "type": rng.choices(NODE_TYPES, weights=(4, 3, 2, 1))[0],
                "version": 1,
                "time": 1_300_000_000 + i,
                "data": _payload(rng, config.payload_bytes),
            },
        )
        node_ids.append(i)
    edge_ids = []
    next_edge = config.nodes + 1
    target_edges = int(config.nodes * config.mean_degree)
    # power-law out-degree: a few hubs, a long tail
    weights = [1.0 / (rank + 1) ** 0.6 for rank in range(config.nodes)]
    while len(edge_ids) < target_edges:
        src = rng.choices(node_ids, weights=weights)[0]
        dst = rng.choice(node_ids)
        if src == dst:
            continue
        graph.add_edge(
            src, dst, rng.choice(ASSOC_TYPES), next_edge,
            {
                "visibility": 1,
                "timestamp": 1_300_000_000 + len(edge_ids),
                "data": _payload(rng, config.payload_bytes // 2),
            },
        )
        edge_ids.append(next_edge)
        next_edge += 1
    return LinkBenchGraph(graph, config, node_ids, edge_ids)


class RequestGenerator:
    """Yields LinkBench operations following :data:`OPERATION_MIX`.

    Each requester thread gets its own generator (distinct seed and private
    id range for newly created nodes/edges, so generators never collide on
    allocation while still sharing reads on the common graph).
    """

    def __init__(self, data, seed=0, requester_id=0):
        self._rng = random.Random((seed << 8) | requester_id)
        self._node_ids = list(data.node_ids)
        self._edge_ids = list(data.edge_ids)
        base = 10_000_000 * (requester_id + 1)
        self._next_node = base
        self._next_edge = base + 5_000_000
        names = [name for name, __ in OPERATION_MIX]
        weights = [weight for __, weight in OPERATION_MIX]
        self._names = names
        self._weights = weights

    def __iter__(self):
        return self

    def __next__(self):
        rng = self._rng
        name = rng.choices(self._names, weights=self._weights)[0]
        if name == "add_node":
            self._next_node += 1
            return (name, {
                "id": self._next_node,
                "properties": {
                    "type": rng.choice(NODE_TYPES),
                    "version": 1,
                    "time": 1_400_000_000,
                    "data": _payload(rng, 64),
                },
            })
        if name == "update_node":
            return (name, {
                "id": rng.choice(self._node_ids),
                "key": "data",
                "value": _payload(rng, 64),
            })
        if name == "delete_node":
            self._next_node += 1
            # delete a node this generator created (or a random one rarely)
            return (name, {"id": rng.choice(self._node_ids)})
        if name == "get_node":
            return (name, {"id": rng.choice(self._node_ids)})
        if name == "add_link":
            self._next_edge += 1
            return (name, {
                "id": self._next_edge,
                "src": rng.choice(self._node_ids),
                "dst": rng.choice(self._node_ids),
                "type": rng.choice(ASSOC_TYPES),
                "properties": {
                    "visibility": 1,
                    "timestamp": 1_400_000_000,
                    "data": _payload(rng, 32),
                },
            })
        if name == "delete_link":
            return (name, {"id": rng.choice(self._edge_ids)})
        if name == "update_link":
            return (name, {
                "id": rng.choice(self._edge_ids),
                "key": "data",
                "value": _payload(rng, 32),
            })
        if name == "count_link":
            return (name, {
                "id": rng.choice(self._node_ids),
                "type": rng.choice(ASSOC_TYPES),
            })
        if name == "multiget_link":
            return (name, {
                "ids": [rng.choice(self._edge_ids) for __ in range(3)],
            })
        return ("get_link_list", {
            "id": rng.choice(self._node_ids),
            "type": rng.choice(ASSOC_TYPES),
        })


class SQLGraphLinkBench:
    """LinkBench operations against a SQLGraphStore.

    Reads are single translated SQL statements; writes are the update
    stored procedures.  Every operation is exactly one round trip.
    """

    def __init__(self, store):
        self.store = store

    def execute(self, operation):
        name, args = operation
        store = self.store
        if name == "add_node":
            store.add_vertex(args["id"], args["properties"])
        elif name == "update_node":
            store.set_vertex_property(args["id"], args["key"], args["value"])
        elif name == "delete_node":
            store.remove_vertex(args["id"])
        elif name == "get_node":
            store.get_vertex(args["id"])
        elif name == "add_link":
            store.add_edge(
                args["src"], args["dst"], args["type"], args["id"],
                args["properties"],
            )
        elif name == "delete_link":
            store.remove_edge(args["id"])
        elif name == "update_link":
            store.set_edge_property(args["id"], args["key"], args["value"])
        elif name == "count_link":
            store.run(f"g.v({args['id']}).outE('{args['type']}').count()")
        elif name == "multiget_link":
            rendered = ", ".join(str(i) for i in args["ids"])
            store.run(f"g.e({rendered})")
        elif name == "get_link_list":
            store.run(f"g.v({args['id']}).outE('{args['type']}')")
        else:
            raise ValueError(f"unknown operation {name!r}")


class BlueprintsLinkBench:
    """LinkBench operations against a Blueprints (pipe-at-a-time) store.

    Reads walk the store primitive-by-primitive, each call paying the
    client/server round trip — the architecture of the compared systems.
    """

    def __init__(self, store):
        self.store = store
        self._guard = threading.Lock()

    def execute(self, operation):
        name, args = operation
        store = self.store
        if name == "add_node":
            try:
                store.add_vertex(args["id"], args["properties"])
            except ValueError:
                pass  # duplicate id from a concurrent requester
        elif name == "update_node":
            try:
                store.set_vertex_property(args["id"], args["key"], args["value"])
            except KeyError:
                pass
        elif name == "delete_node":
            store.remove_vertex(args["id"])
        elif name == "get_node":
            store.get_vertex(args["id"])
        elif name == "add_link":
            try:
                store.add_edge(
                    args["src"], args["dst"], args["type"], args["id"],
                    args["properties"],
                )
            except ValueError:
                pass  # endpoint deleted / duplicate id
        elif name == "delete_link":
            store.remove_edge(args["id"])
        elif name == "update_link":
            try:
                store.set_edge_property(args["id"], args["key"], args["value"])
            except KeyError:
                pass  # edge deleted by a concurrent requester
        elif name == "count_link":
            vertex = store.get_vertex(args["id"])
            if vertex is not None:
                edges = self._incident(vertex, (args["type"],))
                len(list(edges))
        elif name == "multiget_link":
            for edge_id in args["ids"]:
                store.get_edge(edge_id)
        elif name == "get_link_list":
            vertex = store.get_vertex(args["id"])
            if vertex is not None:
                list(self._incident(vertex, (args["type"],)))
        else:
            raise ValueError(f"unknown operation {name!r}")

    def _incident(self, vertex, labels):
        hook = getattr(self.store, "incident_edges", None)
        if hook is not None:
            return hook(vertex, Direction.OUT, labels)
        return vertex.edges(Direction.OUT, labels)
