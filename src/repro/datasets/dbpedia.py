"""A synthetic DBpedia-like property graph (paper §3.1 substitution).

The real evaluation uses DBpedia 3.8 converted to a property graph (quads'
provenance becomes edge attributes, datatype properties become vertex
attributes).  The dump is unavailable offline, so this generator produces a
scaled-down graph with the *structural features the paper's queries
exercise*:

* a deep ``isPartOf`` place hierarchy (k-hop traversals up to 9 hops,
  Table 1 / Figure 3 / Figure 6),
* a dense bipartite ``team`` relation between soccer players and teams,
  traversed ignoring direction,
* ``rdf:type`` edges to class vertices with huge in-degree (exercising the
  multi-value OSA/ISA tables),
* skewed typed vertex attributes matching the selectivity axes of Table 2
  (string vs numeric, exists vs value, selective vs not),
* provenance attributes (``oldid``, ``section``, ``relative-line``) on
  every edge, like the n-quad conversion in the paper.

Input-size buckets for the traversal queries are marked with a ``tag``
attribute whose values select fixed fractions of the place population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.model import PropertyGraph

SECTIONS = ("External_link", "Infobox", "Abstract", "Category", "Reference")


@dataclass
class DBpediaConfig:
    """Scale knobs.  Defaults build a ~9k vertex / ~22k edge graph."""

    places: int = 4000
    players: int = 3000
    teams: int = 150
    persons: int = 800
    artists: int = 600
    depth: int = 12
    seed: int = 7


@dataclass
class DBpediaGraph:
    """The generated graph plus the id ranges queries need."""

    graph: PropertyGraph
    config: DBpediaConfig
    type_ids: dict
    place_ids: list
    player_ids: list
    team_ids: list
    person_ids: list
    artist_ids: list


def generate(config=None):
    """Build the synthetic DBpedia-like property graph."""
    config = config or DBpediaConfig()
    rng = random.Random(config.seed)
    graph = PropertyGraph()
    next_vertex = [1]
    next_edge = [1]

    def add_vertex(properties):
        vertex_id = next_vertex[0]
        next_vertex[0] += 1
        graph.add_vertex(vertex_id, properties)
        return vertex_id

    def add_edge(src, dst, label):
        edge_id = next_edge[0]
        next_edge[0] += 1
        graph.add_edge(
            src, dst, label, edge_id,
            {
                "oldid": rng.randrange(10_000_000, 99_999_999),
                "section": rng.choice(SECTIONS),
                "relative-line": rng.randrange(1, 400),
            },
        )
        return edge_id

    # class vertices -----------------------------------------------------
    type_ids = {}
    for class_name in ("Place", "SoccerPlayer", "Team", "Person",
                       "MusicalArtist", "Work"):
        type_ids[class_name] = add_vertex(
            {"uri": f"http://dbpedia.org/ontology/{class_name}"}
        )

    # places: a forest of isPartOf chains up to `depth` levels -----------
    place_ids = []
    levels: list[list[int]] = [[] for __ in range(config.depth)]
    for i in range(config.places):
        level = min(int(rng.expovariate(0.35)), config.depth - 1)
        properties = {
            "uri": f"http://dbpedia.org/resource/Place_{i}",
            "label": f"Place {i}",
            "wikiPageID": 1_000_000 + i,
        }
        # numeric attributes with controlled selectivity
        if rng.random() < 0.6:
            properties["populationDensitySqMi"] = (
                100 if rng.random() < 0.002 else round(rng.uniform(1, 5000), 1)
            )
        if rng.random() < 0.5:
            properties["longm"] = 1 if rng.random() < 0.004 else rng.randrange(
                2, 180
            )
        if rng.random() < 0.06:
            properties["regionAffiliation"] = (
                "1958" if rng.random() < 0.02 else f"region-{rng.randrange(40)}"
            )
        if rng.random() < 0.03:
            properties["national"] = (
                f"anthem {i} en" if rng.random() < 0.9 else f"anthem {i} fr"
            )
        if rng.random() < 0.55:
            suffix = "en" if rng.random() < 0.95 else "de"
            properties["title"] = f"Title of place {i} {suffix}"
        if rng.random() < 0.05:
            # multilingual labels: a multi-valued attribute
            properties["alias"] = [f"Place {i}", f"Lieu {i}", f"Ort {i}"]
        if rng.random() < 0.15:
            # abstracts are long strings (DBpedia's rdfs:comment style)
            properties["abstract"] = (
                f"Place {i} is a settlement known for its long history. "
                * rng.randrange(2, 8)
            )
        # input-size buckets for the traversal queries
        roll = rng.random()
        if roll < 0.40:
            properties["tag"] = "large"
        elif roll < 0.43:
            properties["tag"] = "mid"
        elif roll < 0.433:
            properties["tag"] = "small"
        vertex_id = add_vertex(properties)
        place_ids.append(vertex_id)
        levels[level].append(vertex_id)
        add_edge(vertex_id, type_ids["Place"], "rdf:type")
    # isPartOf edges: every non-root level links to the level above
    for level in range(1, config.depth):
        for vertex_id in levels[level]:
            parent_pool = None
            for upper in range(level - 1, -1, -1):
                if levels[upper]:
                    parent_pool = levels[upper]
                    break
            if parent_pool:
                add_edge(vertex_id, rng.choice(parent_pool), "isPartOf")

    # teams and players ---------------------------------------------------
    team_ids = []
    for i in range(config.teams):
        team_ids.append(
            add_vertex(
                {
                    "uri": f"http://dbpedia.org/resource/Team_{i}",
                    "label": f"Team {i}",
                    "wikiPageID": 2_000_000 + i,
                }
            )
        )
        add_edge(team_ids[-1], type_ids["Team"], "rdf:type")
    player_ids = []
    for i in range(config.players):
        properties = {
            "uri": f"http://dbpedia.org/resource/Player_{i}",
            "label": f"Player {i}",
            "wikiPageID": 3_000_000 + i,
        }
        roll = rng.random()
        if roll < 0.40:
            properties["tag"] = "p_large"
        elif roll < 0.43:
            properties["tag"] = "p_mid"
        elif roll < 0.433:
            properties["tag"] = "p_small"
        vertex_id = add_vertex(properties)
        player_ids.append(vertex_id)
        add_edge(vertex_id, type_ids["SoccerPlayer"], "rdf:type")
        for __ in range(1 + min(int(rng.expovariate(0.8)), 4)):
            add_edge(vertex_id, rng.choice(team_ids), "team")

    # persons -------------------------------------------------------------
    person_ids = []
    for i in range(config.persons):
        properties = {
            "uri": f"http://dbpedia.org/resource/Person_{i}",
            "label": f"Person {i} en",
            "wikiPageID": 4_000_000 + i,
        }
        if rng.random() < 0.7:
            properties["thumbnail"] = f"http://img.example/{i}.png"
        if rng.random() < 0.8:
            properties["pageurl"] = f"http://wiki.example/person_{i}"
        if rng.random() < 0.4:
            properties["homepage"] = f"http://home.example/{i}"
        vertex_id = add_vertex(properties)
        person_ids.append(vertex_id)
        add_edge(vertex_id, type_ids["Person"], "rdf:type")

    # musical artists / works (genre attributes for Table 2) --------------
    artist_ids = []
    for i in range(config.artists):
        properties = {
            "uri": f"http://dbpedia.org/resource/Artist_{i}",
            "label": f"Artist {i}",
            "wikiPageID": 5_000_000 + i,
        }
        if rng.random() < 0.8:
            suffix = "en" if rng.random() < 0.93 else "es"
            properties["genre"] = f"genre-{rng.randrange(25)} {suffix}"
        vertex_id = add_vertex(properties)
        artist_ids.append(vertex_id)
        add_edge(vertex_id, type_ids["MusicalArtist"], "rdf:type")
        if person_ids and rng.random() < 0.5:
            add_edge(vertex_id, rng.choice(person_ids), "associatedAct")

    return DBpediaGraph(
        graph=graph,
        config=config,
        type_ids=type_ids,
        place_ids=place_ids,
        player_ids=player_ids,
        team_ids=team_ids,
        person_ids=person_ids,
        artist_ids=artist_ids,
    )


# ----------------------------------------------------------------------
# query sets
# ----------------------------------------------------------------------
def _khop(filter_step, step, hops, tail="count()"):
    """k-hop reachability with a per-hop dedup (the loop section is
    ``<step>.dedup``), which keeps frontiers set-sized in every engine."""
    if hops <= 1:
        return f"g.V.{filter_step}.{step}.dedup.{tail}"
    return (
        f"g.V.{filter_step}.{step}.dedup"
        f".loop(2){{it.loops < {hops}}}.dedup.{tail}"
    )


def adjacency_queries(data):
    """Paper Table 1: 11 traversal queries varying hops / input / result.

    Returns ``(query_id, gremlin_text, meta)`` triples; the hop counts match
    the paper's, input sizes scale with the generated graph.
    """
    first_player = data.player_ids[0]
    queries = [
        (1, _khop("has('tag','large')", "in('isPartOf')", 3), {"hops": 3}),
        (2, _khop("has('tag','large')", "in('isPartOf')", 6), {"hops": 6}),
        (3, _khop("has('tag','large')", "in('isPartOf')", 9), {"hops": 9}),
        (4, _khop("has('tag','p_small')", "both('team')", 5), {"hops": 5}),
        (5, _khop("has('tag','p_mid')", "both('team')", 5), {"hops": 5}),
        (6, _khop("has('tag','p_large')", "both('team')", 5), {"hops": 5}),
        (7, f"g.v({first_player}).both('team').dedup"
            ".loop(2){it.loops < 4}.dedup.count()", {"hops": 4}),
        (8, f"g.v({first_player}).both('team').dedup"
            ".loop(2){it.loops < 6}.dedup.count()", {"hops": 6}),
        (9, f"g.v({first_player}).both('team').dedup"
            ".loop(2){it.loops < 8}.dedup.count()", {"hops": 8}),
        (10, _khop("has('tag','p_small')", "both('team')", 6), {"hops": 6}),
        (11, _khop("has('tag','p_mid')", "both('team')", 6), {"hops": 6}),
    ]
    return queries


# Table 2: the 16 attribute-lookup queries.  Each spec is
# (query_id, key, kind, argument) where kind is one of
# 'exists' | 'like' | 'eq_string' | 'eq_number'.
ATTRIBUTE_QUERIES = [
    (1, "national", "exists", None),
    (2, "national", "like", "%en"),
    (3, "genre", "exists", None),
    (4, "genre", "like", "%en"),
    (5, "title", "exists", None),
    (6, "title", "like", "%en"),
    (7, "label", "exists", None),
    (8, "label", "like", "%en"),
    (9, "regionAffiliation", "exists", None),
    (10, "regionAffiliation", "eq_string", "1958"),
    (11, "populationDensitySqMi", "exists", None),
    (12, "populationDensitySqMi", "eq_number", 100),
    (13, "longm", "exists", None),
    (14, "longm", "eq_number", 1),
    (15, "wikiPageID", "exists", None),
    (16, "wikiPageID", "eq_number", 3_000_000),
]


def benchmark_queries(data):
    """Figure 8a: 20 DBpedia benchmark queries (SPARQL→Gremlin style).

    Modeled on the Morsey et al. DBpedia SPARQL benchmark mix the paper
    converts in Appendix B: selective URI start points, star lookups,
    1-3 hop traversals, filters and unions.
    """
    person = "http://dbpedia.org/ontology/Person"
    player = "http://dbpedia.org/ontology/SoccerPlayer"
    place = "http://dbpedia.org/ontology/Place"
    team = "http://dbpedia.org/ontology/Team"
    artist = "http://dbpedia.org/ontology/MusicalArtist"
    some_place = data.place_ids[0]
    some_team = data.team_ids[0]
    return [
        (1, f"g.V('uri','{person}').in('rdf:type').count()"),
        (2, f"g.V('uri','{person}').in('rdf:type')"
            ".has('thumbnail').has('pageurl').count()"),
        (3, f"g.V('uri','{person}').in('rdf:type').has('homepage').count()"),
        (4, f"g.V('uri','{place}').in('rdf:type')"
            ".has('populationDensitySqMi', T.gt, 4000).count()"),
        (5, f"g.V('uri','{place}').in('rdf:type')"
            ".filter{it.title.contains('en')}.count()"),
        (6, f"g.V('uri','{player}').in('rdf:type').out('team').dedup().count()"),
        (7, f"g.V('uri','{team}').in('rdf:type').in('team').dedup().count()"),
        (8, f"g.v({some_team}).in('team').has('label').count()"),
        (9, f"g.v({some_place}).out('isPartOf').out('isPartOf').count()"),
        (10, f"g.v({some_place}).in('isPartOf').in('isPartOf').dedup().count()"),
        (11, f"g.V('uri','{artist}').in('rdf:type')"
             ".has('genre').out('associatedAct').dedup().count()"),
        (12, f"g.V('uri','{artist}').in('rdf:type')"
             ".filter{it.genre.contains('en')}.count()"),
        (13, "g.V.has('regionAffiliation','1958').count()"),
        (14, "g.V.has('longm', T.lte, 5).out('rdf:type').dedup().count()"),
        (15, f"g.V('uri','{place}').in('rdf:type').as('x')"
             ".out('isPartOf').has('tag','large').back('x').dedup().count()"),
        (16, f"g.V('uri','{player}').in('rdf:type')"
             ".out('team').in('team').dedup().count()"),
        (17, "g.V.has('wikiPageID', T.lt, 1000100).out('rdf:type').count()"),
        (18, f"g.V('uri','{person}').in('rdf:type')"
             ".or(_().has('homepage'), _().has('thumbnail')).count()"),
        (19, f"g.v({some_place}).both('isPartOf').dedup().count()"),
        (20, f"g.V('uri','{team}').in('rdf:type').as('t').in('team')"
             ".has('label').back('t').dedup().count()"),
    ]


def path_queries(data):
    """Figure 8b / Figure 6: the 11 long-path queries (lq1-lq11)."""
    return [
        (f"lq{qid}", text)
        for qid, text, __meta in adjacency_queries(data)
    ]
