"""Interactive SQLGraph shell.

Usage::

    python -m repro.cli --dataset tinker
    python -m repro.cli --dataset dbpedia --scale 0.5
    python -m repro.cli --dataset linkbench --query "g.V.count()"
    python -m repro.cli --dataset tinker --path /tmp/graphdb
    python -m repro.cli --connect 127.0.0.1:7687

Inside the shell, plain input is a Gremlin query; commands start with a
colon::

    sqlgraph> g.V.has('age', T.gt, 28).name
    sqlgraph> :translate g.v(1).out.out     -- show the generated SQL
    sqlgraph> :explain g.v(1).out.out       -- show the engine's plan
    sqlgraph> :analyze g.v(1).out.out       -- run it: actual rows + timings
    sqlgraph> :sql SELECT COUNT(*) FROM ea  -- raw SQL escape hatch
    sqlgraph> :analyze-tables               -- collect optimizer statistics
                                               (optionally one table name)
    sqlgraph> :stats                        -- table sizes, load report,
                                               last-query stats
    sqlgraph> :pagerank                     -- bulk analytics: top PageRank
    sqlgraph> :components                   -- weakly-connected components
    sqlgraph> :labelprop                    -- label-propagation communities
    sqlgraph> :sssp 1 [weight]              -- shortest paths from vertex 1
                                               (optional weight attribute)
    sqlgraph> :checkpoint                   -- snapshot + truncate the WAL
    sqlgraph> :shards                       -- per-shard health (sharded
                                               coordinator only)
    sqlgraph> :quit

``:explain`` and ``:analyze`` take a Gremlin query, translate it, and ask
the engine for the plan — ``:analyze`` additionally executes it and
annotates every operator with actual row counts and wall time (see
docs/OBSERVABILITY.md).  ``:stats`` appends the most recent query's
translation trace and execution counters when one has run.

``:analyze-tables`` runs the SQL ``ANALYZE`` statement: it samples every
table (or just the named one) and installs per-column statistics the
cost-based planner uses for selectivity and join ordering (see
docs/OPTIMIZER.md); ``:stats`` then lists the analyzed tables.

``:pagerank``, ``:components``, ``:labelprop`` and ``:sssp`` run the bulk
analytics drivers (iterated SQL joins/aggregates over scratch tables, see
docs/ANALYTICS.md) over the live graph and summarize the result plus the
per-run iteration/convergence statistics.

``--path`` opens a durable store: the first run loads the dataset and
every later run recovers the persisted graph (including any CRUD done in
between) from the write-ahead log; ``:checkpoint`` forces a snapshot and
``:stats`` shows the WAL counters (see docs/ARCHITECTURE.md).

``--connect HOST:PORT`` attaches the same shell to a running
``repro-serve`` instance instead of an embedded store: every line is
forwarded over the wire and executed server-side with identical
semantics, ``:stats`` additionally reports the serving-layer counters,
and ``:quit`` just closes the connection (see docs/SERVER.md).

``--connect`` works against a ``repro-shard`` coordinator too: Gremlin
scatters across the cluster transparently, ``:shards`` reports per-shard
health, and the shard-local commands (``:sql``, analytics, ...) direct
you to an individual worker (see docs/SHARDING.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import SQLGraphStore
from repro.datasets import dbpedia, linkbench
from repro.gremlin.errors import GremlinError
from repro.relational.errors import EngineError
from repro.datasets.tinker import paper_figure_graph, tinkerpop_classic


def build_graph(dataset, scale=1.0):
    """Construct the named dataset's property graph."""
    if dataset == "tinker":
        return paper_figure_graph()
    if dataset == "classic":
        return tinkerpop_classic()
    if dataset == "dbpedia":
        config = dbpedia.DBpediaConfig(
            places=max(1, int(2000 * scale)),
            players=max(1, int(1200 * scale)),
            teams=max(1, int(60 * scale)),
            persons=max(1, int(300 * scale)),
            artists=max(1, int(200 * scale)),
        )
        return dbpedia.generate(config).graph
    if dataset == "linkbench":
        config = linkbench.LinkBenchConfig(nodes=max(1, int(5000 * scale)))
        return linkbench.build_graph(config).graph
    raise ValueError(f"unknown dataset {dataset!r}")


def build_store(dataset, scale=1.0, path=None, shard_index=None,
                shard_count=None):
    """Create a SQLGraphStore loaded with the named dataset.

    With *path*, the store is durable: a directory that already holds a
    recovered graph is used as-is (the dataset is only loaded on the very
    first run against that path).

    With *shard_index*/*shard_count*, the store holds only its
    hash-partition of the dataset: the vertices it owns plus the edges
    whose source it owns (see :mod:`repro.sharding.partition`).
    """
    store = SQLGraphStore(path=path)
    if store.schema is None:
        graph = build_graph(dataset, scale)
        if shard_count is not None:
            from repro.sharding.partition import partition_graph

            graph = partition_graph(graph, shard_count)[shard_index]
        store.load_graph(graph)
    return store


def execute_line(store, line):
    """Execute one shell line; returns the output text (no trailing \\n).

    Raises SystemExit on :quit.
    """
    line = line.strip()
    if not line:
        return ""
    if line.startswith(":"):
        return _execute_command(store, line)
    values = store.run(line)
    lines = [repr(value) for value in values[:50]]
    if len(values) > 50:
        lines.append(f"... ({len(values)} results total)")
    elif not values:
        lines.append("(no results)")
    return "\n".join(lines)


#: commands that require a local relational engine and therefore cannot
#: run on the sharded coordinator (each worker shard still serves them)
_SHARD_LOCAL_COMMANDS = frozenset({
    ":translate", ":explain", ":analyze", ":sql", ":analyze-tables",
    ":pagerank", ":components", ":labelprop", ":sssp", ":checkpoint",
})


def _execute_command(store, line):
    command, __, argument = line.partition(" ")
    argument = argument.strip()
    if command in (":quit", ":q", ":exit"):
        raise SystemExit(0)
    if getattr(store, "is_sharded", False):
        return _execute_sharded_command(store, command, argument)
    if command == ":shards":
        return "not a sharded store (connect to a repro-shard coordinator)"
    if command == ":translate":
        if not argument:
            return "usage: :translate <gremlin query>"
        try:
            return store.translate(argument)
        except (GremlinError, EngineError) as exc:
            return f"cannot translate: {type(exc).__name__}: {exc}"
    if command == ":explain":
        return _explain(store, argument, analyze=False)
    if command == ":analyze":
        return _explain(store, argument, analyze=True)
    if command == ":sql":
        result = store.database.execute(argument)
        if result.columns:
            header = " | ".join(result.columns)
            body = "\n".join(
                " | ".join(str(value) for value in row)
                for row in result.rows[:50]
            )
            return f"{header}\n{body}" if body else header
        return f"ok ({result.rowcount} rows affected)"
    if command == ":analyze-tables":
        sql = "ANALYZE" if not argument else f"ANALYZE {argument}"
        try:
            result = store.database.execute(sql)
        except EngineError as exc:
            return f"cannot analyze: {type(exc).__name__}: {exc}"
        return "\n".join(
            f"{name:6} {rows:>10} rows ({sample} sampled)"
            for name, rows, sample in result.rows
        ) or "(no tables)"
    if command == ":stats":
        stats = store.table_stats()
        lines = [f"{name:6} {count:>10} rows" for name, count in
                 sorted(stats["rows"].items())]
        report = stats["load"]
        lines.append(
            f"loaded {report.vertex_count} vertices / "
            f"{report.edge_count} edges; out spill "
            f"{report.out.spill_percentage:.2f}%, in spill "
            f"{report.incoming.spill_percentage:.2f}%"
        )
        analyzed = stats.get("statistics") or {}
        if analyzed:
            lines.append(
                "optimizer statistics: "
                + ", ".join(sorted(analyzed))
                + " (run :analyze-tables to refresh)"
            )
        else:
            lines.append(
                "optimizer statistics: none (run :analyze-tables)"
            )
        lines.extend(_cache_lines(store))
        lines.extend(_wal_lines(store))
        lines.extend(_last_query_lines(store))
        return "\n".join(lines)
    if command == ":pagerank":
        ranks = store.pagerank()
        top = sorted(ranks.items(), key=lambda item: (-item[1], item[0]))
        lines = [f"v[{vid}]  {rank:.6f}" for vid, rank in top[:10]]
        if len(top) > 10:
            lines.append(f"... ({len(top)} vertices total)")
        return "\n".join(lines + _analytics_lines(store)) or "(empty graph)"
    if command == ":components":
        components = store.connected_components()
        sizes = {}
        for label in components.values():
            sizes[label] = sizes.get(label, 0) + 1
        ordered = sorted(sizes.items(), key=lambda item: (-item[1], item[0]))
        lines = [
            f"component {label}: {size} vertices"
            for label, size in ordered[:10]
        ]
        if len(ordered) > 10:
            lines.append(f"... ({len(ordered)} components total)")
        return "\n".join(lines + _analytics_lines(store)) or "(empty graph)"
    if command == ":labelprop":
        labels = store.label_propagation()
        sizes = {}
        for label in labels.values():
            sizes[label] = sizes.get(label, 0) + 1
        ordered = sorted(sizes.items(), key=lambda item: (-item[1], item[0]))
        lines = [
            f"community {label}: {size} vertices"
            for label, size in ordered[:10]
        ]
        if len(ordered) > 10:
            lines.append(f"... ({len(ordered)} communities total)")
        return "\n".join(lines + _analytics_lines(store)) or "(empty graph)"
    if command == ":sssp":
        parts = argument.split()
        if not parts or not parts[0].lstrip("-").isdigit():
            return "usage: :sssp <source vid> [weight attribute]"
        weight_key = parts[1] if len(parts) > 1 else None
        try:
            distances = store.shortest_paths(
                int(parts[0]), weight_key=weight_key
            )
        except EngineError as exc:
            return f"cannot run sssp: {type(exc).__name__}: {exc}"
        ordered = sorted(distances.items(), key=lambda item: (item[1], item[0]))
        lines = [f"v[{vid}]  {dist:g}" for vid, dist in ordered[:10]]
        if len(ordered) > 10:
            lines.append(f"... ({len(ordered)} reachable vertices total)")
        return "\n".join(lines + _analytics_lines(store))
    if command == ":checkpoint":
        if store.database.wal is None:
            return "not a durable store (start with --path)"
        taken = store.checkpoint()
        return "checkpoint written" if taken else \
            "checkpoint skipped (transactions active)"
    if command == ":help":
        return __doc__.strip()
    return f"unknown command {command!r} (try :help)"


def _execute_sharded_command(store, command, argument):
    """Commands against the sharded coordinator's ShardedStore."""
    if command in _SHARD_LOCAL_COMMANDS:
        return (
            f"{command} is shard-local; connect to an individual shard "
            "server to run it against one partition (:shards lists them)"
        )
    if command == ":shards":
        return _shards_report(store)
    if command == ":stats":
        vertices, edges = store.router.counts()
        lines = [
            f"sharded store: {store.num_shards} shards, "
            f"{vertices} vertices / {edges} edges",
        ]
        lines.extend(_shards_report(store).splitlines())
        lines.extend(_last_query_lines_sharded(store))
        return "\n".join(lines)
    if command == ":help":
        return __doc__.strip()
    return f"unknown command {command!r} (try :help)"


def _shards_report(store):
    """Render per-shard health for :shards / :stats."""
    lines = []
    for entry in store.shard_health():
        if entry.get("ok"):
            detail = (
                f"up    {entry['requests']} requests, "
                f"{entry['errors']} errors, "
                f"{entry['active_sessions']} sessions"
            )
            if "restarts" in entry:
                detail += f", {entry['restarts']} restarts"
        else:
            detail = f"DOWN  {entry.get('error', 'unreachable')}"
        lines.append(
            f"shard {entry['shard']} @ {entry['address']:<21} {detail}"
        )
    return "\n".join(lines)


def _last_query_lines_sharded(store):
    """Render the last-query section of sharded :stats."""
    stats = store.last_query_stats
    if stats is None or stats.sharding is None:
        return []
    sharding = stats.sharding
    if sharding["mode"] == "forward":
        route = f"forwarded whole to shard {sharding['target_shard']}"
    else:
        route = (
            f"scatter-gather: {sharding['hops']} hops, "
            f"{sharding['requests']} shard round-trips"
        )
    return [
        "",
        f"last query: {stats.gremlin}",
        f"  {stats.rows_returned} rows in {stats.elapsed_s * 1000:.3f}ms",
        f"  routing: {route}",
    ]


def _analytics_lines(store):
    """Render the per-run summary line after an analytics command."""
    stats = store.last_analytics_stats
    if stats is None:
        return []
    state = "converged" if stats.converged else "iteration cap hit"
    return [
        f"{stats.algorithm}: {stats.iteration_count} iterations ({state}), "
        f"{stats.statements_executed} statements in "
        f"{stats.elapsed_s * 1000:.1f}ms"
    ]


def _explain(store, argument, analyze):
    """Translate Gremlin and show the engine's plan; never raises."""
    name = ":analyze" if analyze else ":explain"
    if not argument:
        return f"usage: {name} <gremlin query>"
    try:
        sql = store.translate(argument)
    except (GremlinError, EngineError) as exc:
        return f"cannot translate: {type(exc).__name__}: {exc}"
    keyword = "EXPLAIN ANALYZE " if analyze else "EXPLAIN "
    try:
        result = store.database.execute(keyword + sql)
    except EngineError as exc:
        return f"cannot explain: {type(exc).__name__}: {exc}"
    return "\n".join(row[0] for row in result.rows)


def _cache_lines(store):
    """Render the compiled-query cache counters for :stats."""
    lines = []
    for label, cache in (
        ("plan cache", store.database.plan_cache),
        ("translation cache", store.translation_cache),
    ):
        counters = cache.stats()
        if not cache.enabled:
            lines.append(f"{label}: disabled")
            continue
        lines.append(
            f"{label}: {counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['invalidations']} invalidations, "
            f"{counters['size']} entries"
        )
    return lines


def _wal_lines(store):
    """Render WAL counters for :stats (empty for in-memory stores)."""
    counters = store.database.wal_stats()
    if counters is None:
        return []
    return [
        f"wal: {counters['records']} records, {counters['fsyncs']} fsyncs "
        f"({counters['fsync_mode']}), {counters['replayed']} replayed, "
        f"{counters['checkpoints']} checkpoints"
    ]


def _last_query_lines(store):
    """Render the last-query section of :stats (empty if none ran)."""
    stats = store.last_query_stats
    if stats is None:
        return []
    lines = [
        "",
        f"last query: {stats.gremlin}",
        f"  {stats.rows_returned} rows in {stats.elapsed_s * 1000:.3f}ms "
        f"(translation {stats.translate_s * 1000:.3f}ms)",
    ]
    if stats.session_id is not None:
        peer = f" ({stats.connection})" if stats.connection else ""
        lines.append(f"  session: #{stats.session_id}{peer}")
    lines += [
        f"  caches: translation "
        f"{'hit' if stats.translation_cache_hit else 'miss'}, "
        f"plan {'hit' if stats.plan_cache_hit else 'miss'}",
    ]
    if stats.trace is not None:
        lines.append("  translation: " + stats.trace.describe().splitlines()[0])
    execution = stats.execution
    if execution is not None:
        lines.append(
            f"  buffer pool: {execution.page_hits} hits, "
            f"{execution.page_misses} misses, "
            f"{execution.page_evictions} evictions"
        )
    if store.slow_query_log:
        lines.append(f"  slow-query log: {len(store.slow_query_log)} entries")
    return lines


def _remote_main(args):
    """``--connect`` mode: the REPL drives a remote store over the wire.

    Lines are forwarded via the server's ``shell`` op, so commands behave
    exactly as they do locally; only ``:quit`` is intercepted client-side
    (it closes the connection rather than stopping the server).
    """
    from repro.client import ClientError, SQLGraphClient
    from repro.server.protocol import WireError

    host, __, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        client = SQLGraphClient(host, int(port_text)).connect()
    except (ClientError, WireError, OSError) as exc:
        print(f"cannot connect to {args.connect}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.query is not None:
            print(client.shell(args.query))
            return 0
        print(f"SQLGraph shell — connected to {args.connect} "
              f"(session #{client.session_id})")
        print("enter Gremlin, or :help for commands")
        while True:
            try:
                line = input("sqlgraph> ")
            except EOFError:
                print()
                return 0
            if line.strip() in (":quit", ":q", ":exit"):
                return 0
            if not line.strip():
                continue
            try:
                output = client.shell(line)
            except WireError as exc:
                output = f"error [{exc.code}]: {exc}"
                if exc.retryable:
                    output += " (retryable)"
            except ClientError as exc:
                print(f"connection lost: {exc}", file=sys.stderr)
                return 1
            if output:
                print(output)
    finally:
        client.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description="SQLGraph interactive shell")
    parser.add_argument(
        "--dataset", default="tinker",
        choices=["tinker", "classic", "dbpedia", "linkbench"],
        help="graph to load at startup",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier for dbpedia/linkbench",
    )
    parser.add_argument(
        "--query", default=None,
        help="run one Gremlin query and exit",
    )
    parser.add_argument(
        "--path", default=None,
        help="directory for durable storage (WAL + checkpoints); "
        "reopening recovers the persisted graph",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="attach to a running repro-serve instance instead of "
        "loading an embedded store",
    )
    args = parser.parse_args(argv)

    if args.connect is not None:
        return _remote_main(args)

    store = build_store(args.dataset, args.scale, path=args.path)
    try:
        if args.query is not None:
            print(execute_line(store, args.query))
            return 0

        print(f"SQLGraph shell — dataset {args.dataset!r} "
              f"({store.vertex_count()} vertices, {store.edge_count()} edges)")
        print("enter Gremlin, or :help for commands")
        while True:
            try:
                line = input("sqlgraph> ")
            except EOFError:
                print()
                return 0
            try:
                output = execute_line(store, line)
            except SystemExit:
                return 0
            except Exception as exc:  # reprolint: disable=broad-except -- REPL top level: surface anything, keep the shell alive
                output = f"error: {type(exc).__name__}: {exc}"
            if output:
                print(output)
    finally:
        store.close()


if __name__ == "__main__":
    sys.exit(main())
