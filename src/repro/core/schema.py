"""The hybrid SQLGraph schema (paper Figure 5).

Six tables:

========  ==========================================================
OPA       outgoing primary adjacency: ``vid, spill, (eid_i, lbl_i,
          val_i) * n_out`` — one row per vertex unless spills occur
OSA       outgoing secondary adjacency: ``valid, eid, val`` for
          multi-valued labels (``valid`` holds the ``lid:<n>`` marker)
IPA/ISA   the incoming mirrors
VA        vertex attributes: ``vid (pk), attr JSON``
EA        edge attributes + a redundant copy of the edge triple:
          ``eid (pk), outv, inv, lbl, attr JSON``
========  ==========================================================

Naming note: we follow the TinkerPop/Blueprints convention — ``outv`` is the
source (the vertex the edge goes *out* of) and ``inv`` the target.  The
paper's Figure 5 sample uses the opposite reading; the semantics here are
differential-tested against the reference interpreter, so the convention is
pinned by tests rather than by the figure.

Multi-valued labels store a ``lid:<n>`` marker string in the VAL column and
a NULL EID; the marker joins to OSA/ISA rows carrying the individual
``(eid, val)`` pairs, which is exactly what the paper's
``LEFT OUTER JOIN ... COALESCE(s.val, p.val)`` template resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SQLGraphSchema:
    """Column layout + DDL for one SQLGraph instance."""

    out_columns: int
    in_columns: int
    prefix: str = ""
    table_names: dict = field(init=False)

    def __post_init__(self):
        prefix = self.prefix
        self.table_names = {
            "opa": f"{prefix}opa",
            "osa": f"{prefix}osa",
            "ipa": f"{prefix}ipa",
            "isa": f"{prefix}isa",
            "va": f"{prefix}va",
            "ea": f"{prefix}ea",
        }

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def ddl_statements(self):
        """All CREATE TABLE / CREATE INDEX statements for the schema."""
        names = self.table_names
        statements = [
            self._adjacency_ddl(names["opa"], self.out_columns),
            f"CREATE TABLE {names['osa']} (valid STRING, eid INTEGER, "
            "val INTEGER)",
            self._adjacency_ddl(names["ipa"], self.in_columns),
            f"CREATE TABLE {names['isa']} (valid STRING, eid INTEGER, "
            "val INTEGER)",
            f"CREATE TABLE {names['va']} (vid INTEGER PRIMARY KEY, attr JSON)",
            f"CREATE TABLE {names['ea']} (eid INTEGER PRIMARY KEY, "
            "outv INTEGER, inv INTEGER, lbl STRING, attr JSON)",
            # id indexes for the join templates
            f"CREATE INDEX {names['opa']}_vid ON {names['opa']} (vid)",
            f"CREATE INDEX {names['ipa']}_vid ON {names['ipa']} (vid)",
            f"CREATE INDEX {names['osa']}_valid ON {names['osa']} (valid)",
            f"CREATE INDEX {names['isa']}_valid ON {names['isa']} (valid)",
            # the SP/OP-style indexes of the paper: OUTV+LBL and INV+LBL are
            # approximated by single-column hash indexes + residual label
            # filters (the engine's planner applies the residual)
            f"CREATE INDEX {names['ea']}_outv ON {names['ea']} (outv)",
            f"CREATE INDEX {names['ea']}_inv ON {names['ea']} (inv)",
            f"CREATE INDEX {names['ea']}_lbl ON {names['ea']} (lbl)",
        ]
        return statements

    def _adjacency_ddl(self, table_name, triads):
        columns = ["vid INTEGER", "spill INTEGER"]
        for i in range(triads):
            columns.append(f"eid{i} INTEGER")
            columns.append(f"lbl{i} STRING")
            columns.append(f"val{i} ANY")
        return f"CREATE TABLE {table_name} ({', '.join(columns)})"

    # ------------------------------------------------------------------
    # helpers used by loader / procedures / translator
    # ------------------------------------------------------------------
    def adjacency_row_width(self, direction):
        triads = self.out_columns if direction == "out" else self.in_columns
        return 2 + 3 * triads

    def triad_positions(self, column):
        """(eid, lbl, val) tuple positions of triad *column* in an
        adjacency row (vid at 0, spill at 1)."""
        base = 2 + 3 * column
        return base, base + 1, base + 2

    def unnest_triples_sql(self, alias, direction):
        """The lateral ``TABLE(VALUES ...)`` fragment enumerating all triads
        of adjacency-table alias *alias* as ``t(eid, lbl, val)`` rows."""
        triads = self.out_columns if direction == "out" else self.in_columns
        rows = ", ".join(
            f"({alias}.eid{i}, {alias}.lbl{i}, {alias}.val{i})"
            for i in range(triads)
        )
        return f"TABLE(VALUES {rows}) AS t(eid, lbl, val)"


def attribute_index_ddl(schema, element, key, sorted_index=False):
    """DDL for a user index over a JSON attribute (paper §3.4: "depending on
    the workloads ... more relational and JSON indexes can be built")."""
    table = schema.table_names["va" if element == "vertex" else "ea"]
    method = "sorted" if sorted_index else "hash"
    safe = "".join(ch if ch.isalnum() else "_" for ch in key)
    return (
        f"CREATE INDEX {table}_attr_{safe} ON {table} "
        f"(JSON_VAL(attr, '{key}')) USING {method}"
    )
