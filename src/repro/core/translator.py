"""Gremlin → single-SQL translation (paper §4, Table 8).

Each pipe is translated by a CTE template; the templates are composed in
pipeline order and the final query is one ``WITH ... SELECT`` statement.
Implemented optimizations from §4.5.1:

* **GraphQuery merge** — attribute filters immediately following ``g.V`` /
  ``g.E`` are folded into the start CTE's WHERE clause;
* **VertexQuery merge** — edge-attribute filters immediately following
  ``outE``/``inE``/``bothE`` are folded into the incident-edge CTE;
* **EA shortcut** — when a query contains exactly one graph-traversal step,
  adjacency is answered from the redundant edge table EA instead of the
  OPA/OSA join (paper §3.5, Table 4);
* **loop unrolling** — fixed-depth loops are expanded into repeated CTEs;
  an unbounded ``it.loops``-only condition falls back to a recursive CTE.

Path tracking (for ``path`` / ``simplePath`` / ``back`` / branch filters)
adds a ``path`` column threaded through every template, stored as a tuple
and manipulated with the ``PATH_INIT`` / ``ELEMENT_AT`` / ``PATH_PREFIX``
SQL functions.

Side-effect pipes are identity functions, and closures outside the
restricted closure language are rejected — the paper's stated limitations
(§4.4).

Paper artifact map: the per-pipe CTE templates implement **Table 8** (start
pipes, out/in/both via OPA/OSA resp. IPA/ISA, outE/inE, outV/inV, property
and filter pipes, path manipulation); the GraphQuery/VertexQuery merges and
the EA shortcut are the **§4.5.1** rewrites measured in **Table 4**; loop
handling is **§4.3**.

Observability: every translation records a
:class:`repro.obs.stats.TranslationTrace` (exposed as
``GremlinTranslator.last_trace``) naming each template applied, the CTE it
produced, which merge rules fired, and whether the EA single-step shortcut
was taken — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.gremlin import closures as cl
from repro.gremlin import pipes as p
from repro.gremlin.errors import UnsupportedPipeError
from repro.obs.stats import TranslationTrace

VERTEX = "vertex"
EDGE = "edge"
VALUE = "value"
PATH = "path"

_TRAVERSAL_PIPES = (p.Adjacent, p.IncidentEdges, p.EdgeVertex, p.LoopPipe)
_MERGEABLE_FILTERS = (p.HasPipe, p.HasNotPipe, p.IntervalPipe)


class ParamLiteral:
    """Placeholder for an extracted query literal (template parameter).

    :func:`parameterize_query` replaces literals in a parsed pipeline with
    these sentinels; the translator renders them as ``{?slot}`` markers,
    which :func:`strip_parameter_markers` later converts to SQL ``?``
    placeholders while recording the binding order.
    """

    __slots__ = ("slot",)

    def __init__(self, slot):
        self.slot = slot

    @property
    def marker(self):
        return "{?%d}" % self.slot

    def __repr__(self):
        return f"<?{self.slot}>"


def sql_literal(value):
    """Render a Python value as a SQL literal."""
    if isinstance(value, ParamLiteral):
        return value.marker
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise UnsupportedPipeError(f"cannot render literal {value!r}")


def _render_id(value):
    """Render a vertex/edge id (coerced to int unless parameterized)."""
    if isinstance(value, ParamLiteral):
        return value.marker
    return str(int(value))


class GremlinTranslator:
    """Translates parsed Gremlin queries against one SQLGraph schema.

    One translator is shared by every session of a server, so the
    most-recent-trace bookkeeping is per thread: a session reading
    :attr:`last_trace` always sees its own translation, never a
    concurrent one.
    """

    def __init__(self, schema):
        self.schema = schema
        self._local = threading.local()

    @property
    def last_trace(self):
        """TranslationTrace of this thread's most recent translate()."""
        return getattr(self._local, "trace", None)

    def translate(self, query):
        """Return the SQL text for *query* (a GremlinQuery)."""
        translation = _Translation(self.schema, list(query.pipes))
        sql = translation.build()
        self._local.trace = translation.trace
        return sql


class _Translation:
    def __init__(self, schema, pipes):
        self.schema = schema
        self.pipes = pipes
        self.names = schema.table_names
        self.ctes = []  # (name, sql)
        self.counter = 0
        self.track_path = self._needs_path(pipes)
        self.elem_type = None
        self.current = None  # name of the CTE holding the current objects
        self.path_len = 0  # static number of path-extending steps so far
        self.path_types = []  # element type at each path position
        self.marks = {}  # as-name -> path index
        self.aggregates = {}  # aggregate-name -> cte name
        self.trace = TranslationTrace()
        self.trace.path_tracking = self.track_path

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def build(self):
        traversal_steps = sum(
            isinstance(pipe, _TRAVERSAL_PIPES) for pipe in self.pipes
        )
        self.single_traversal = traversal_steps <= 1
        i = 0
        while i < len(self.pipes):
            pipe = self.pipes[i]
            if isinstance(pipe, (p.StartVertices, p.StartEdges)):
                i = self._translate_start(i)
            elif isinstance(pipe, p.LoopPipe):
                self._translate_loop(i)
                i += 1
            elif isinstance(pipe, p.CopySplitPipe):
                merge = self.pipes[i + 1] if i + 1 < len(self.pipes) else None
                if not isinstance(merge, p.MergePipe):
                    raise UnsupportedPipeError("copySplit requires a merge pipe")
                self._translate_copysplit(pipe)
                i += 2
            elif isinstance(pipe, p.IncidentEdges):
                i = self._translate_incident(i)
            else:
                self._translate_pipe(pipe, i)
                i += 1
        select_list = "val, path" if self.track_path else "val"
        body = ",\n".join(f"{name} AS ({sql})" for name, sql in self.ctes)
        return f"WITH {body}\nSELECT {select_list} FROM {self.current}"

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _needs_path(pipes):
        def scan(items):
            for pipe in items:
                if isinstance(
                    pipe,
                    (p.PathPipe, p.SimplePathPipe, p.CyclicPathPipe, p.BackPipe,
                     p.SelectPipe),
                ):
                    return True
                for branch_list in getattr(pipe, "branches", []) or []:
                    if scan(branch_list):
                        return True
            return False

        return scan(pipes)

    def _new_cte(self, sql, template="cte"):
        name = f"temp_{self.counter}"
        self.counter += 1
        self.ctes.append((name, sql))
        self.current = name
        self.trace.cte_count += 1
        self.trace.record(f"{name}: {template}")
        return name

    def _extend(self, elem_type):
        """Record a path-extending step producing *elem_type* objects."""
        self.elem_type = elem_type
        self.path_len += 1
        self.path_types.append(elem_type)

    def _path_select(self, new_value_sql, input_alias="v"):
        """SELECT fragment for the path column when tracking paths."""
        return f", ({input_alias}.path || {new_value_sql}) AS path"

    def _label_condition(self, alias_column, labels):
        if not labels:
            return ""
        if len(labels) == 1:
            return f" AND {alias_column} = {sql_literal(labels[0])}"
        rendered = ", ".join(sql_literal(label) for label in labels)
        return f" AND {alias_column} IN ({rendered})"

    # ------------------------------------------------------------------
    # start pipes (with GraphQuery merging)
    # ------------------------------------------------------------------
    def _translate_start(self, position):
        pipe = self.pipes[position]
        merged, next_position = self._collect_mergeable(position + 1)
        if isinstance(pipe, p.StartVertices):
            table = self.names["va"]
            conditions = ["p.vid >= 0"]
            if pipe.ids:
                rendered = ", ".join(_render_id(i) for i in pipe.ids)
                conditions.append(f"p.vid IN ({rendered})")
            if pipe.key is not None:
                conditions.append(
                    self._attribute_condition("p", VERTEX, pipe.key, "==",
                                              pipe.value)
                )
            for filt in merged:
                conditions.append(
                    self._filter_condition("p", VERTEX, filt, "p.vid")
                )
            path = ", PATH_INIT(p.vid) AS path" if self.track_path else ""
            sql = (
                f"SELECT p.vid AS val{path} FROM {table} p WHERE "
                + " AND ".join(conditions)
            )
            if merged:
                self.trace.graphquery_merges += len(merged)
                template = f"g.V start + GraphQuery merge of {len(merged)} filter(s)"
            else:
                template = "g.V start"
            self._new_cte(sql, template)
            self._extend(VERTEX)
            return next_position
        table = self.names["ea"]
        conditions = ["p.eid >= 0"]
        if pipe.ids:
            rendered = ", ".join(_render_id(i) for i in pipe.ids)
            conditions.append(f"p.eid IN ({rendered})")
        if pipe.key is not None:
            conditions.append(
                self._attribute_condition("p", EDGE, pipe.key, "==", pipe.value)
            )
        for filt in merged:
            conditions.append(
                self._filter_condition("p", EDGE, filt, "p.eid")
            )
        path = ", PATH_INIT(p.eid) AS path" if self.track_path else ""
        sql = (
            f"SELECT p.eid AS val{path} FROM {table} p WHERE "
            + " AND ".join(conditions)
        )
        if merged:
            self.trace.graphquery_merges += len(merged)
            template = f"g.E start + GraphQuery merge of {len(merged)} filter(s)"
        else:
            template = "g.E start"
        self._new_cte(sql, template)
        self._extend(EDGE)
        return next_position

    def _collect_mergeable(self, position):
        """GraphQuery/VertexQuery rewrite: gather following filter pipes."""
        merged = []
        while position < len(self.pipes):
            pipe = self.pipes[position]
            if isinstance(pipe, _MERGEABLE_FILTERS):
                merged.append(pipe)
                position += 1
            elif isinstance(pipe, p.FilterClosurePipe) and (
                not cl.references_only_loops(pipe.closure)
            ):
                merged.append(pipe)
                position += 1
            else:
                break
        return merged, position

    # ------------------------------------------------------------------
    # adjacency / incident pipes
    # ------------------------------------------------------------------
    def _translate_pipe(self, pipe, position):
        if isinstance(pipe, p.Adjacent):
            self._translate_adjacent(pipe)
        elif isinstance(pipe, p.EdgeVertex):
            self._translate_edge_vertex(pipe)
        elif isinstance(pipe, p.IdGetter):
            self._translate_id()
        elif isinstance(pipe, p.LabelGetter):
            self._translate_label()
        elif isinstance(pipe, p.PropertyGetter):
            self._translate_property(pipe)
        elif isinstance(pipe, (p.HasPipe, p.HasNotPipe, p.IntervalPipe)):
            self._translate_attribute_filter(pipe)
        elif isinstance(pipe, p.FilterClosurePipe):
            self._translate_attribute_filter(pipe)
        elif isinstance(pipe, p.DedupPipe):
            self._translate_dedup()
        elif isinstance(pipe, p.CountPipe):
            self._translate_count()
        elif isinstance(pipe, p.RangePipe):
            self._translate_range(pipe)
        elif isinstance(pipe, p.OrderPipe):
            self._translate_order(pipe)
        elif isinstance(pipe, p.PathPipe):
            self._translate_path()
        elif isinstance(pipe, (p.SimplePathPipe, p.CyclicPathPipe)):
            self._translate_simple_path(pipe)
        elif isinstance(pipe, p.BackPipe):
            self._translate_back(pipe)
        elif isinstance(pipe, p.SelectPipe):
            self._translate_select(pipe)
        elif isinstance(pipe, p.AsPipe):
            self.marks[pipe.name] = self.path_len - 1
        elif isinstance(pipe, p.AggregatePipe):
            self._translate_aggregate(pipe)
        elif isinstance(pipe, p.StorePipe):
            self._translate_aggregate(pipe)
        elif isinstance(pipe, (p.ExceptPipe, p.RetainPipe)):
            self._translate_except_retain(pipe)
        elif isinstance(pipe, (p.AndPipe, p.OrPipe)):
            self._translate_and_or(pipe)
        elif isinstance(pipe, p.IfThenElsePipe):
            self._translate_if_then_else(pipe)
        elif isinstance(
            pipe,
            (p.TablePipe, p.GroupCountPipe, p.SideEffectClosurePipe,
             p.IteratePipe, p.CapPipe),
        ):
            pass  # side effects are identity functions (paper §4.4)
        else:
            raise UnsupportedPipeError(f"cannot translate pipe {pipe!r}")

    def _translate_adjacent(self, pipe):
        if self.elem_type is not VERTEX:
            raise UnsupportedPipeError(
                f"{pipe.direction} requires vertices, found {self.elem_type}"
            )
        tin = self.current
        if pipe.direction == "both":
            out_cte = self._adjacent_direction(tin, "out", pipe.labels)
            in_cte = self._adjacent_direction(tin, "in", pipe.labels)
            select_list = "val, path" if self.track_path else "val"
            self._new_cte(
                f"SELECT {select_list} FROM {out_cte} UNION ALL "
                f"SELECT {select_list} FROM {in_cte}",
                "both: union of out/in branches",
            )
        else:
            self._adjacent_direction(tin, pipe.direction, pipe.labels)
        self._extend(VERTEX)

    def _adjacent_direction(self, tin, direction, labels):
        if self.single_traversal:
            return self._adjacent_via_ea(tin, direction, labels)
        return self._adjacent_via_hash(tin, direction, labels)

    def _adjacent_via_ea(self, tin, direction, labels):
        """Single-step lookup through the redundant EA table (§3.5)."""
        ea = self.names["ea"]
        if direction == "out":
            source, target = "outv", "inv"
        else:
            source, target = "inv", "outv"
        label_cond = self._label_condition("p.lbl", labels)
        path = self._path_select(f"p.{target}") if self.track_path else ""
        sql = (
            f"SELECT p.{target} AS val{path} FROM {tin} v, {ea} p "
            f"WHERE v.val = p.{source}{label_cond}"
        )
        self.trace.ea_shortcut = True
        return self._new_cte(sql, f"adjacent({direction}) via EA shortcut (§3.5)")

    def _adjacent_via_hash(self, tin, direction, labels):
        """Multi-step traversal through OPA/OSA (or IPA/ISA) — the paper's
        out-pipe template."""
        primary = self.names["opa" if direction == "out" else "ipa"]
        secondary = self.names["osa" if direction == "out" else "isa"]
        unnest = self.schema.unnest_triples_sql("p", direction)
        label_cond = self._label_condition("t.lbl", labels)
        path_a = ", v.path AS path" if self.track_path else ""
        sql_a = (
            f"SELECT t.val AS val{path_a} FROM {tin} v, {primary} p, {unnest} "
            f"WHERE v.val = p.vid AND t.val IS NOT NULL{label_cond}"
        )
        primary_name = "OPA" if direction == "out" else "IPA"
        stage_a = self._new_cte(
            sql_a, f"adjacent({direction}) via {primary_name} unnest (Table 8)"
        )
        resolved = "COALESCE(s.val, p.val)"
        path_b = (
            f", (p.path || {resolved}) AS path" if self.track_path else ""
        )
        sql_b = (
            f"SELECT {resolved} AS val{path_b} FROM {stage_a} p "
            f"LEFT OUTER JOIN {secondary} s ON p.val = s.valid"
        )
        secondary_name = "OSA" if direction == "out" else "ISA"
        return self._new_cte(
            sql_b, f"adjacent({direction}) spill resolution via {secondary_name}"
        )

    def _translate_incident(self, position):
        """outE/inE/bothE with VertexQuery merging of edge filters."""
        pipe = self.pipes[position]
        if self.elem_type is not VERTEX:
            raise UnsupportedPipeError("outE/inE/bothE require vertices")
        merged, next_position = self._collect_mergeable(position + 1)
        extra = "".join(
            " AND " + self._filter_condition("p", EDGE, filt) for filt in merged
        )
        ea = self.names["ea"]
        tin = self.current
        label_cond = self._label_condition("p.lbl", pipe.labels)
        path = self._path_select("p.eid") if self.track_path else ""

        if merged:
            self.trace.vertexquery_merges += len(merged)
            suffix = f" + VertexQuery merge of {len(merged)} filter(s)"
        else:
            suffix = ""

        def one(source):
            return (
                f"SELECT p.eid AS val{path} FROM {tin} v, {ea} p "
                f"WHERE v.val = p.{source}{label_cond}{extra}"
            )

        if pipe.direction == "out":
            self._new_cte(one("outv"), f"outE via EA{suffix}")
        elif pipe.direction == "in":
            self._new_cte(one("inv"), f"inE via EA{suffix}")
        else:
            # both branches read from the same input CTE (tin is captured
            # before either branch CTE is registered)
            first = self._new_cte(one("outv"), f"bothE out-branch{suffix}")
            second = self._new_cte(one("inv"), f"bothE in-branch{suffix}")
            select_list = "val, path" if self.track_path else "val"
            self._new_cte(
                f"SELECT {select_list} FROM {first} UNION ALL "
                f"SELECT {select_list} FROM {second}",
                "bothE: union of branches",
            )
        self._extend(EDGE)
        return next_position

    def _translate_edge_vertex(self, pipe):
        if self.elem_type is not EDGE:
            raise UnsupportedPipeError("outV/inV/bothV require edges")
        ea = self.names["ea"]
        tin = self.current
        if pipe.direction == "both":
            path = self._path_select("t.val") if self.track_path else ""
            sql = (
                f"SELECT t.val AS val{path} FROM {tin} v, {ea} p, "
                f"TABLE(VALUES (p.outv), (p.inv)) AS t(val) "
                f"WHERE v.val = p.eid"
            )
        else:
            column = "outv" if pipe.direction == "out" else "inv"
            path = self._path_select(f"p.{column}") if self.track_path else ""
            sql = (
                f"SELECT p.{column} AS val{path} FROM {tin} v, {ea} p "
                f"WHERE v.val = p.eid"
            )
        self._new_cte(sql, f"{pipe.direction}V edge endpoint via EA")
        self._extend(VERTEX)

    # ------------------------------------------------------------------
    # value transforms
    # ------------------------------------------------------------------
    def _translate_id(self):
        # element ids are already the val column; re-tag the element type
        path = self._path_select("v.val") if self.track_path else ""
        self._new_cte(
            f"SELECT v.val AS val{path} FROM {self.current} v", "id getter"
        )
        self._extend(VALUE)

    def _translate_label(self):
        if self.elem_type is VERTEX:
            # vertices have no element label; like the interpreter, fall
            # back to a 'label' attribute (rdfs:label in the DBpedia graph)
            self._translate_property(p.PropertyGetter("label"))
            return
        if self.elem_type is not EDGE:
            raise UnsupportedPipeError("label requires edges")
        ea = self.names["ea"]
        path = self._path_select("p.lbl") if self.track_path else ""
        sql = (
            f"SELECT p.lbl AS val{path} FROM {self.current} v, {ea} p "
            f"WHERE v.val = p.eid"
        )
        self._new_cte(sql, "label getter via EA")
        self._extend(VALUE)

    def _translate_property(self, pipe):
        table, id_column = self._attribute_table()
        value = f"JSON_VAL(p.attr, {sql_literal(pipe.key)})"
        path = self._path_select(value) if self.track_path else ""
        sql = (
            f"SELECT {value} AS val{path} FROM {self.current} v, {table} p "
            f"WHERE v.val = p.{id_column} AND {value} IS NOT NULL"
        )
        attr_table = "VA" if self.elem_type is VERTEX else "EA"
        self._new_cte(sql, f"property({pipe.key}) via JSON_VAL on {attr_table}")
        self._extend(VALUE)

    def _attribute_table(self):
        if self.elem_type is VERTEX:
            return self.names["va"], "vid"
        if self.elem_type is EDGE:
            return self.names["ea"], "eid"
        raise UnsupportedPipeError(
            f"attribute access requires elements, found {self.elem_type}"
        )

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------
    def _translate_attribute_filter(self, pipe):
        select_list = "v.val AS val" + (", v.path AS path" if self.track_path else "")
        if self.elem_type is VALUE:
            condition = self._filter_condition(None, VALUE, pipe)
            sql = f"SELECT {select_list} FROM {self.current} v WHERE {condition}"
            self._new_cte(sql, "filter on value column")
            return
        if self._filter_touches_attributes(pipe):
            table, id_column = self._attribute_table()
            condition = self._filter_condition("p", self.elem_type, pipe)
            sql = (
                f"SELECT {select_list} FROM {self.current} v, {table} p "
                f"WHERE v.val = p.{id_column} AND {condition}"
            )
            template = "filter with attribute-table join"
        else:
            condition = self._filter_condition(None, self.elem_type, pipe)
            sql = f"SELECT {select_list} FROM {self.current} v WHERE {condition}"
            template = "filter on element id"
        self._new_cte(sql, template)

    def _filter_touches_attributes(self, pipe):
        """Does this filter need the VA/EA attribute table joined in?"""
        if isinstance(pipe, p.HasPipe):
            # id filters work on the val column directly; everything else
            # (attributes, and the edge label column) lives in VA/EA
            return pipe.key != "id"
        if isinstance(pipe, (p.HasNotPipe, p.IntervalPipe)):
            return True
        if isinstance(pipe, p.FilterClosurePipe):
            return any(
                isinstance(node, cl.PropRef) and node.name != "id"
                for node in _walk_closure(pipe.closure)
            )
        return True

    def _filter_condition(self, alias, elem_type, pipe, val_expr="v.val"):
        """SQL condition for a filter pipe.  ``alias`` is the attribute-table
        alias (``None`` when the filter works on the val column alone);
        ``val_expr`` is the SQL expression holding the current object (the
        id column when merging into a start CTE)."""
        if isinstance(pipe, p.HasPipe):
            if pipe.key == "id":
                target = val_expr
                if pipe.exists_only:
                    return f"{target} IS NOT NULL"
                return f"{target} {_sql_op(pipe.op)} {sql_literal(pipe.value)}"
            if pipe.key == "label" and elem_type is EDGE:
                target = f"{alias}.lbl"
                if pipe.exists_only:
                    return f"{target} IS NOT NULL"
                return f"{target} {_sql_op(pipe.op)} {sql_literal(pipe.value)}"
            return self._attribute_condition(
                alias, elem_type, pipe.key, "exists" if pipe.exists_only else pipe.op,
                pipe.value,
            )
        if isinstance(pipe, p.HasNotPipe):
            return f"JSON_VAL({alias}.attr, {sql_literal(pipe.key)}) IS NULL"
        if isinstance(pipe, p.IntervalPipe):
            value = f"JSON_VAL({alias}.attr, {sql_literal(pipe.key)})"
            return (
                f"({value} >= {sql_literal(pipe.low)} AND "
                f"{value} < {sql_literal(pipe.high)})"
            )
        if isinstance(pipe, p.FilterClosurePipe):
            return self._closure_to_sql(pipe.closure, alias, elem_type)
        raise UnsupportedPipeError(f"cannot build condition for {pipe!r}")

    def _attribute_condition(self, alias, elem_type, key, op, value):
        expr = f"JSON_VAL({alias}.attr, {sql_literal(key)})"
        if op == "exists":
            return f"{expr} IS NOT NULL"
        if op == "!=":
            # Gremlin != is satisfied by a missing attribute (null != x),
            # unlike SQL's null-filtering <>
            return f"({expr} <> {sql_literal(value)} OR {expr} IS NULL)"
        return f"{expr} {_sql_op(op)} {sql_literal(value)}"

    # ------------------------------------------------------------------
    # closure compilation
    # ------------------------------------------------------------------
    def _closure_to_sql(self, node, alias, elem_type):
        if isinstance(node, cl.BoolAnd):
            return (
                f"({self._closure_to_sql(node.left, alias, elem_type)} AND "
                f"{self._closure_to_sql(node.right, alias, elem_type)})"
            )
        if isinstance(node, cl.BoolOr):
            return (
                f"({self._closure_to_sql(node.left, alias, elem_type)} OR "
                f"{self._closure_to_sql(node.right, alias, elem_type)})"
            )
        if isinstance(node, cl.BoolNot):
            return f"NOT ({self._closure_to_sql(node.operand, alias, elem_type)})"
        if isinstance(node, cl.Compare):
            left = self._closure_value_sql(node.left, alias, elem_type)
            right = self._closure_value_sql(node.right, alias, elem_type)
            if isinstance(node.right, cl.Const) and node.right.value is None:
                return (
                    f"{left} IS NULL" if node.op == "==" else f"{left} IS NOT NULL"
                )
            if isinstance(node.left, cl.Const) and node.left.value is None:
                return (
                    f"{right} IS NULL" if node.op == "==" else f"{right} IS NOT NULL"
                )
            if node.op == "!=":
                # Groovy != is null-friendly: null != x is true
                return (
                    f"({left} <> {right} OR {left} IS NULL OR "
                    f"{right} IS NULL)"
                )
            return f"{left} {_sql_op(node.op)} {right}"
        if isinstance(node, cl.StringMethod):
            target = self._closure_value_sql(node.target, alias, elem_type)
            if not isinstance(node.argument, cl.Const):
                raise UnsupportedPipeError(
                    "string methods require a constant argument"
                )
            text = str(node.argument.value).replace("'", "''")
            if node.method == "contains":
                return f"{target} LIKE '%{text}%'"
            if node.method == "startsWith":
                return f"{target} LIKE '{text}%'"
            if node.method == "endsWith":
                return f"{target} LIKE '%{text}'"
        raise UnsupportedPipeError(f"cannot translate closure node {node!r}")

    def _closure_value_sql(self, node, alias, elem_type):
        if isinstance(node, cl.Const):
            return sql_literal(node.value)
        if isinstance(node, cl.ItRef):
            return "v.val"
        if isinstance(node, cl.PropRef):
            if node.name == "id":
                return "v.val"
            if node.name == "label" and elem_type is EDGE:
                return f"{alias}.lbl"
            if alias is None:
                raise UnsupportedPipeError(
                    "property reference requires an element context"
                )
            return f"JSON_VAL({alias}.attr, {sql_literal(node.name)})"
        if isinstance(node, cl.Arith):
            left = self._closure_value_sql(node.left, alias, elem_type)
            right = self._closure_value_sql(node.right, alias, elem_type)
            return f"({left} {node.op} {right})"
        raise UnsupportedPipeError(f"cannot translate closure value {node!r}")

    # ------------------------------------------------------------------
    # stream pipes
    # ------------------------------------------------------------------
    def _translate_dedup(self):
        if self.track_path:
            sql = (
                f"SELECT val, MIN(path) AS path FROM {self.current} "
                "GROUP BY val"
            )
        else:
            sql = f"SELECT DISTINCT val FROM {self.current}"
        self._new_cte(sql, "dedup")

    def _translate_count(self):
        if self.track_path:
            sql = (
                "SELECT COUNT(*) AS val, PATH_INIT(COUNT(*)) AS path "
                f"FROM {self.current}"
            )
        else:
            sql = f"SELECT COUNT(*) AS val FROM {self.current}"
        self._new_cte(sql, "count aggregate")
        self.elem_type = VALUE

    def _translate_range(self, pipe):
        select_list = "val, path" if self.track_path else "val"
        if pipe.high >= 0:
            limit = pipe.high - pipe.low + 1
            sql = (
                f"SELECT {select_list} FROM {self.current} "
                f"LIMIT {limit} OFFSET {pipe.low}"
            )
        else:
            sql = f"SELECT {select_list} FROM {self.current} OFFSET {pipe.low}"
        self._new_cte(sql, "range via LIMIT/OFFSET")

    def _translate_order(self, pipe):
        select_list = "val, path" if self.track_path else "val"
        direction = " DESC" if pipe.descending else ""
        sql = f"SELECT {select_list} FROM {self.current} ORDER BY val{direction}"
        self._new_cte(sql, "order")

    def _translate_path(self):
        if not self.track_path:
            raise UnsupportedPipeError("path pipe requires path tracking")
        sql = f"SELECT path AS val, path FROM {self.current}"
        self._new_cte(sql, "path projection")
        self.elem_type = PATH

    def _translate_simple_path(self, pipe):
        predicate = "= 1" if isinstance(pipe, p.SimplePathPipe) else "= 0"
        sql = (
            f"SELECT val, path FROM {self.current} "
            f"WHERE ISSIMPLEPATH(path) {predicate}"
        )
        kind = "simplePath" if isinstance(pipe, p.SimplePathPipe) else "cyclicPath"
        self._new_cte(sql, f"{kind} filter")

    def _translate_back(self, pipe):
        if isinstance(pipe.target, int):
            index = self.path_len - 1 - pipe.target
        else:
            if pipe.target not in self.marks:
                raise UnsupportedPipeError(
                    f"back target {pipe.target!r} was never marked with as()"
                )
            index = self.marks[pipe.target]
        if index < 0 or index >= self.path_len:
            raise UnsupportedPipeError("back target out of range")
        sql = (
            f"SELECT ELEMENT_AT(path, {index}) AS val, "
            f"PATH_PREFIX(path, {index}) AS path FROM {self.current}"
        )
        self._new_cte(sql, f"back to path[{index}]")
        self.elem_type = self.path_types[index]
        self.path_len = index + 1
        self.path_types = self.path_types[: index + 1]

    def _translate_select(self, pipe):
        """select('a','b') projects the marked path positions as a tuple."""
        parts = []
        for name in pipe.names:
            if name not in self.marks:
                parts.append("NULL")
            else:
                parts.append(f"ELEMENT_AT(path, {self.marks[name]})")
        value = f"MAKE_LIST({', '.join(parts)})"
        path = ", path" if self.track_path else ""
        sql = f"SELECT {value} AS val{path} FROM {self.current}"
        self._new_cte(sql, "select marked positions")
        self.elem_type = VALUE

    def _translate_aggregate(self, pipe):
        snapshot = f"agg_{pipe.name}_{self.counter}"
        self.counter += 1
        self.ctes.append((snapshot, f"SELECT val FROM {self.current}"))
        self.trace.cte_count += 1
        self.trace.record(f"{snapshot}: aggregate snapshot ({pipe.name})")
        self.aggregates[pipe.name] = snapshot

    def _translate_except_retain(self, pipe):
        select_list = "v.val AS val" + (
            ", v.path AS path" if self.track_path else ""
        )
        negated = "NOT " if isinstance(pipe, p.ExceptPipe) else ""
        if pipe.name is not None:
            source = self.aggregates.get(pipe.name)
            if source is None:
                raise UnsupportedPipeError(
                    f"except/retain target {pipe.name!r} was never aggregated"
                )
            condition = f"v.val {negated}IN (SELECT val FROM {source})"
        else:
            rendered = ", ".join(sql_literal(value) for value in pipe.values)
            condition = f"v.val {negated}IN ({rendered})"
        sql = f"SELECT {select_list} FROM {self.current} v WHERE {condition}"
        if isinstance(pipe, p.ExceptPipe):
            self._new_cte(sql, "except anti-join")
        else:
            self._new_cte(sql, "retain semi-join")

    def _translate_and_or(self, pipe):
        """Paper's and/or templates: run each branch with path tracking and
        keep inputs whose seed (path[0]) survives the branch."""
        branch_outputs = []
        for branch in pipe.branches:
            branch_outputs.append(self._translate_branch(branch))
        select_list = "v.val AS val" + (
            ", v.path AS path" if self.track_path else ""
        )
        if isinstance(pipe, p.AndPipe):
            conditions = " AND ".join(
                f"v.val IN (SELECT ELEMENT_AT(path, 0) FROM {out})"
                for out in branch_outputs
            )
        else:
            union = " UNION ".join(
                f"SELECT ELEMENT_AT(path, 0) AS val FROM {out}"
                for out in branch_outputs
            )
            conditions = f"v.val IN ({union})"
        sql = f"SELECT {select_list} FROM {self.current} v WHERE {conditions}"
        kind = "and" if isinstance(pipe, p.AndPipe) else "or"
        self._new_cte(sql, f"{kind}() combinator over {len(branch_outputs)} branches")

    def _translate_branch(self, branch_pipes):
        """Translate an anonymous pipeline seeded from the current CTE."""
        saved = (
            self.elem_type, self.path_len, self.path_types[:], self.track_path,
            self.current, dict(self.marks),
        )
        seed_sql = f"SELECT val, PATH_INIT(val) AS path FROM {self.current}"
        self.track_path = True
        self._new_cte(seed_sql, "branch seed (path re-rooted)")
        self.path_len = 1
        self.path_types = [self.elem_type]
        i = 0
        pipes_backup = self.pipes
        self.pipes = list(branch_pipes)
        self.single_traversal = False
        while i < len(self.pipes):
            pipe = self.pipes[i]
            if isinstance(pipe, p.LoopPipe):
                self._translate_loop(i)
                i += 1
            elif isinstance(pipe, p.IncidentEdges):
                i = self._translate_incident(i)
            else:
                self._translate_pipe(pipe, i)
                i += 1
        output = self.current
        self.pipes = pipes_backup
        (self.elem_type, self.path_len, self.path_types, self.track_path,
         self.current, self.marks) = saved
        return output

    def _translate_copysplit(self, pipe):
        """copySplit(...).exhaustMerge → UNION ALL of branch outputs."""
        entry = (
            self.elem_type, self.path_len, self.path_types[:], self.current,
            dict(self.marks),
        )
        outputs = []
        exit_state = None
        for branch in pipe.branches:
            (self.elem_type, self.path_len, self.path_types, self.current,
             self.marks) = (
                entry[0], entry[1], entry[2][:], entry[3], dict(entry[4]),
            )
            pipes_backup = self.pipes
            self.pipes = list(branch)
            self.single_traversal = False
            i = 0
            while i < len(self.pipes):
                inner = self.pipes[i]
                if isinstance(inner, p.LoopPipe):
                    self._translate_loop(i)
                    i += 1
                elif isinstance(inner, p.IncidentEdges):
                    i = self._translate_incident(i)
                else:
                    self._translate_pipe(inner, i)
                    i += 1
            self.pipes = pipes_backup
            outputs.append(self.current)
            exit_state = (
                self.elem_type, self.path_len, self.path_types[:],
                dict(self.marks),
            )
        select_list = "val, path" if self.track_path else "val"
        union = " UNION ALL ".join(
            f"SELECT {select_list} FROM {out}" for out in outputs
        )
        self._new_cte(union, f"copySplit merge of {len(outputs)} branches")
        (self.elem_type, self.path_len, self.path_types, self.marks) = exit_state

    def _translate_if_then_else(self, pipe):
        """Value-closure ifThenElse compiles to a CASE expression (the
        paper's CTE-union form is only needed for pipeline branches)."""
        needs_attrs = any(
            isinstance(node, cl.PropRef) and node.name != "id"
            for closure in (pipe.condition, pipe.then_closure, pipe.else_closure)
            for node in _walk_closure(closure)
        )
        alias = None
        join = ""
        if needs_attrs:
            table, id_column = self._attribute_table()
            alias = "p"
            join = f", {table} p"
        condition = self._closure_to_sql(pipe.condition, alias, self.elem_type)
        then_sql = self._closure_value_sql(pipe.then_closure, alias, self.elem_type)
        else_sql = self._closure_value_sql(pipe.else_closure, alias, self.elem_type)
        case = f"CASE WHEN {condition} THEN {then_sql} ELSE {else_sql} END"
        where = f" WHERE v.val = p.{id_column}" if needs_attrs else ""
        path = self._path_select(case) if self.track_path else ""
        sql = f"SELECT {case} AS val{path} FROM {self.current} v{join}{where}"
        self._new_cte(sql, "ifThenElse as CASE expression")
        self._extend(VALUE)

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _translate_loop(self, position):
        pipe = self.pipes[position]
        if not cl.references_only_loops(pipe.condition):
            raise UnsupportedPipeError(
                "loop conditions may only reference it.loops"
            )
        bound = cl.max_loops_bound(pipe.condition)
        start = position - pipe.back_steps
        if start < 0:
            raise UnsupportedPipeError("loop rewinds past the pipeline start")
        segment = self.pipes[start:position]
        if bound is not None:
            # unroll: the segment already ran once before reaching the loop
            self.trace.loop_unrolls += 1
            self.trace.record(
                f"loop unrolled {bound - 1} extra iteration(s) of "
                f"{len(segment)} pipe(s) (§4.3)"
            )
            for __ in range(bound - 1):
                for inner in segment:
                    if isinstance(inner, p.LoopPipe):
                        raise UnsupportedPipeError("nested loops unsupported")
                    self._translate_pipe(inner, position)
            return
        self._translate_recursive_loop(pipe, segment)

    def _translate_recursive_loop(self, pipe, segment):
        """Recursive-SQL fallback (paper §4.3): supported for a single
        adjacency step with an ``it.loops``-only condition."""
        if len(segment) != 1 or not isinstance(segment[0], p.Adjacent):
            raise UnsupportedPipeError(
                "recursive loops support exactly one adjacency step"
            )
        raise UnsupportedPipeError(
            "loop condition has no static bound; use it.loops < N"
        )


def _sql_op(op):
    return {"==": "=", "!=": "<>"}.get(op, op)


def _walk_closure(node):
    yield node
    for attr in ("left", "right", "operand", "target", "argument"):
        child = getattr(node, attr, None)
        if isinstance(child, cl.ClosureNode):
            yield from _walk_closure(child)


# ----------------------------------------------------------------------
# template parameterization (compiled-query cache front end)
# ----------------------------------------------------------------------
# Literal *data* values in a pipeline (vertex ids, has() values, interval
# bounds, closure constants ...) are extracted into a parameter vector so
# queries that differ only in those values share one translation.  Values
# that shape the generated SQL stay literal: labels (adjacency predicates),
# range() positions (LIMIT arithmetic), loop() conditions (unroll bounds),
# string-method arguments (embedded in LIKE patterns), None (IS NULL
# branches) and booleans.

_PARAM_TYPES = (int, float, str)


def _parameterizable(value):
    return isinstance(value, _PARAM_TYPES) and not isinstance(value, bool)


def parameterize_query(query):
    """Split a parsed GremlinQuery into a template and a parameter vector.

    Returns ``(template, values, key)`` where *template* is a copy of the
    query with extracted literals replaced by :class:`ParamLiteral`
    sentinels, *values* is the extracted literal vector (indexed by
    sentinel slot), and *key* is a deterministic cache key identifying the
    template shape.  The input query is never mutated.
    """
    values = []

    def slot(value):
        values.append(value)
        return ParamLiteral(len(values) - 1)

    pipes = [_parameterize_pipe(pipe, slot) for pipe in query.pipes]
    return p.GremlinQuery(pipes), values, repr(pipes)


def _parameterize_pipe(pipe, slot):
    if isinstance(pipe, (p.StartVertices, p.StartEdges)):
        changes = {}
        if pipe.ids:
            changes["ids"] = [slot(int(i)) for i in pipe.ids]
        if pipe.key is not None and _parameterizable(pipe.value):
            changes["value"] = slot(pipe.value)
        return dataclasses.replace(pipe, **changes) if changes else pipe
    if isinstance(pipe, p.HasPipe):
        if not pipe.exists_only and _parameterizable(pipe.value):
            return dataclasses.replace(pipe, value=slot(pipe.value))
        return pipe
    if isinstance(pipe, p.IntervalPipe):
        changes = {}
        if _parameterizable(pipe.low):
            changes["low"] = slot(pipe.low)
        if _parameterizable(pipe.high):
            changes["high"] = slot(pipe.high)
        return dataclasses.replace(pipe, **changes) if changes else pipe
    if isinstance(pipe, (p.ExceptPipe, p.RetainPipe)):
        if pipe.values and all(_parameterizable(v) for v in pipe.values):
            return dataclasses.replace(
                pipe, values=tuple(slot(v) for v in pipe.values)
            )
        return pipe
    if isinstance(pipe, p.FilterClosurePipe):
        return dataclasses.replace(
            pipe, closure=_parameterize_bool(pipe.closure, slot)
        )
    if isinstance(pipe, p.IfThenElsePipe):
        return dataclasses.replace(
            pipe,
            condition=_parameterize_bool(pipe.condition, slot),
            then_closure=_parameterize_value(pipe.then_closure, slot),
            else_closure=_parameterize_value(pipe.else_closure, slot),
        )
    if isinstance(pipe, (p.AndPipe, p.OrPipe, p.CopySplitPipe)):
        return dataclasses.replace(
            pipe,
            branches=[
                [_parameterize_pipe(inner, slot) for inner in branch]
                for branch in pipe.branches
            ],
        )
    return pipe


def _parameterize_bool(node, slot):
    """Parameterize constants in a boolean-context closure."""
    if isinstance(node, cl.BoolAnd):
        return cl.BoolAnd(
            _parameterize_bool(node.left, slot),
            _parameterize_bool(node.right, slot),
        )
    if isinstance(node, cl.BoolOr):
        return cl.BoolOr(
            _parameterize_bool(node.left, slot),
            _parameterize_bool(node.right, slot),
        )
    if isinstance(node, cl.BoolNot):
        return cl.BoolNot(_parameterize_bool(node.operand, slot))
    if isinstance(node, cl.Compare):
        return cl.Compare(
            node.op,
            _parameterize_value(node.left, slot),
            _parameterize_value(node.right, slot),
        )
    # StringMethod arguments are embedded into LIKE patterns; leave literal
    return node


def _parameterize_value(node, slot):
    """Parameterize constants in a value-context closure."""
    if isinstance(node, cl.Const) and _parameterizable(node.value):
        return cl.Const(slot(node.value))
    if isinstance(node, cl.Arith):
        return cl.Arith(
            node.op,
            _parameterize_value(node.left, slot),
            _parameterize_value(node.right, slot),
        )
    return node


def strip_parameter_markers(sql):
    """Convert ``{?slot}`` markers in *sql* to ``?`` placeholders.

    Returns ``(clean_sql, recipe)`` where *recipe* lists the parameter-
    vector slot feeding each ``?`` in textual order.  The same slot may
    appear more than once (e.g. ``bothE`` renders a filter condition twice)
    and slots may appear out of extraction order, so the recipe — not the
    vector itself — defines the binding.  Single-quoted strings are skipped:
    non-parameterized string literals could contain marker-like text.
    """
    out = []
    recipe = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            out.append(sql[i:j + 1])
            i = j + 1
            continue
        if ch == "{" and sql.startswith("{?", i):
            end = sql.index("}", i)
            recipe.append(int(sql[i + 2:end]))
            out.append("?")
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), recipe


def bind_parameters(values, recipe):
    """Expand a parameter vector into positional SQL parameters."""
    return [values[slot] for slot in recipe]
