"""SQLGraph: the paper's contribution.

* :mod:`repro.core.coloring` — the label co-occurrence graph coloring that
  hashes edge labels to column triads (paper §3.2, after Bornea et al.);
* :mod:`repro.core.schema` — the hybrid relational/JSON schema of Figure 5
  (OPA/OSA/IPA/ISA adjacency + VA/EA JSON attribute tables);
* :mod:`repro.core.loader` — bulk loading a property graph into the schema;
* :mod:`repro.core.translator` — Gremlin → single-SQL translation (§4,
  Table 8 templates, GraphQuery/VertexQuery merging, loop unrolling);
* :mod:`repro.core.procedures` — CRUD stored procedures with the
  negative-id lazy-delete optimization (§4.5.2);
* :mod:`repro.core.store` — the :class:`SQLGraphStore` facade.
"""

from repro.core.store import SQLGraphStore

__all__ = ["SQLGraphStore"]
