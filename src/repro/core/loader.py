"""Bulk loader: property graph → SQLGraph schema.

Fits the coloring hash functions on the (full) graph, creates the schema,
and shreds adjacency lists into OPA/IPA rows with OSA/ISA overflow for
multi-valued labels and spill rows for hash conflicts — the exact layout of
paper Figure 5.  Also collects the statistics reported in paper Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coloring import ColoringHash, adjacency_label_sets
from repro.core.schema import SQLGraphSchema


@dataclass
class AdjacencyStats:
    """Per-direction load statistics (paper Table 3 rows)."""

    hashed_labels: int = 0
    columns: int = 0
    vertices: int = 0
    rows: int = 0
    spill_rows: int = 0
    multi_value_rows: int = 0

    @property
    def bucket_size(self):
        """Average labels hashed per column."""
        if not self.columns:
            return 0.0
        return self.hashed_labels / self.columns

    @property
    def spill_percentage(self):
        if not self.vertices:
            return 0.0
        return 100.0 * self.spill_rows / self.vertices


@dataclass
class LoadReport:
    """Everything the loader learned while shredding the graph."""

    out: AdjacencyStats = field(default_factory=AdjacencyStats)
    incoming: AdjacencyStats = field(default_factory=AdjacencyStats)
    vertex_count: int = 0
    edge_count: int = 0


class SQLGraphLoader:
    """Loads one property graph into a database using the hybrid schema."""

    def __init__(self, database, max_columns=None, sample_limit=None,
                 prefix=""):
        self.database = database
        self.max_columns = max_columns
        self.sample_limit = sample_limit
        self.prefix = prefix
        self.schema = None
        self.out_coloring = None
        self.in_coloring = None
        self.report = LoadReport()
        self._next_lid = 0

    # ------------------------------------------------------------------
    def load(self, graph):
        """Fit colorings, create tables and bulk-insert *graph*."""
        self.out_coloring = ColoringHash(self.max_columns).fit(
            adjacency_label_sets(graph, "out", self.sample_limit)
        )
        self.in_coloring = ColoringHash(self.max_columns).fit(
            adjacency_label_sets(graph, "in", self.sample_limit)
        )
        self.schema = SQLGraphSchema(
            self.out_coloring.num_columns, self.in_coloring.num_columns,
            self.prefix,
        )
        for ddl in self.schema.ddl_statements():
            self.database.execute(ddl)
        self._load_vertices(graph)
        self._load_edges(graph)
        return self.schema

    # ------------------------------------------------------------------
    def _load_vertices(self, graph):
        names = self.schema.table_names
        va = self.database.table(names["va"])
        opa = self.database.table(names["opa"])
        osa = self.database.table(names["osa"])
        ipa = self.database.table(names["ipa"])
        isa = self.database.table(names["isa"])
        out_stats = self.report.out
        in_stats = self.report.incoming
        out_stats.hashed_labels = len(self.out_coloring)
        out_stats.columns = self.out_coloring.num_columns
        in_stats.hashed_labels = len(self.in_coloring)
        in_stats.columns = self.in_coloring.num_columns
        for vertex in graph.vertices():
            self.report.vertex_count += 1
            va.insert((vertex.id, dict(vertex.properties)), coerce=False)
            self._shred_adjacency(
                vertex.id, vertex.out_edges, "out", opa, osa,
                self.out_coloring, out_stats,
            )
            self._shred_adjacency(
                vertex.id, vertex.in_edges, "in", ipa, isa,
                self.in_coloring, in_stats,
            )

    def _shred_adjacency(self, vid, edges_by_label, direction, primary,
                         secondary, coloring, stats):
        if not any(edges_by_label.values()):
            return
        stats.vertices += 1
        width = self.schema.adjacency_row_width(direction)
        rows = [self._fresh_row(vid, width)]
        for label in sorted(edges_by_label):
            bucket = edges_by_label[label]
            if not bucket:
                continue
            column = coloring.column_for(label)
            eid_pos, lbl_pos, val_pos = self.schema.triad_positions(column)
            if len(bucket) == 1:
                edge = bucket[0]
                value = (
                    edge.in_vertex.id if direction == "out" else edge.out_vertex.id
                )
                row = self._row_with_free_slot(rows, lbl_pos, vid, width)
                row[eid_pos] = edge.id
                row[lbl_pos] = label
                row[val_pos] = value
            else:
                lid = self._allocate_lid()
                row = self._row_with_free_slot(rows, lbl_pos, vid, width)
                row[eid_pos] = None
                row[lbl_pos] = label
                row[val_pos] = lid
                for edge in bucket:
                    value = (
                        edge.in_vertex.id
                        if direction == "out"
                        else edge.out_vertex.id
                    )
                    secondary.insert((lid, edge.id, value), coerce=False)
                    stats.multi_value_rows += 1
        if len(rows) > 1:
            stats.spill_rows += len(rows) - 1
            for row in rows:
                row[1] = 1
        for row in rows:
            primary.insert(tuple(row), coerce=False)
            stats.rows += 1

    @staticmethod
    def _fresh_row(vid, width):
        row = [None] * width
        row[0] = vid
        row[1] = 0
        return row

    def _row_with_free_slot(self, rows, lbl_pos, vid, width):
        for row in rows:
            if row[lbl_pos] is None:
                return row
        row = self._fresh_row(vid, width)
        rows.append(row)
        return row

    def _allocate_lid(self):
        self._next_lid += 1
        return f"lid:{self._next_lid}"

    # ------------------------------------------------------------------
    def _load_edges(self, graph):
        ea = self.database.table(self.schema.table_names["ea"])
        for edge in graph.edges():
            self.report.edge_count += 1
            ea.insert(
                (
                    edge.id,
                    edge.out_vertex.id,
                    edge.in_vertex.id,
                    edge.label,
                    dict(edge.properties),
                ),
                coerce=False,
            )
