"""Coloring-based hash functions for column assignment.

Following Bornea et al. (and paper §3.2): build a graph whose nodes are edge
labels and whose edges connect labels that co-occur in some vertex's
adjacency list, then color it greedily so co-occurring labels never share a
column.  The color *is* the column triad index, which minimizes hashing
conflicts (and therefore spill rows) for the sampled dataset.

Labels unseen at fit time fall back to ``hash(label) % num_columns``, which
may conflict — exactly the situation the paper says requires reorganization
when updates change dataset characteristics.
"""

from __future__ import annotations

from collections import Counter


class ColoringHash:
    """Assigns labels (or attribute keys) to a small set of columns.

    :param max_columns: optional cap on the number of columns.  When the
        co-occurrence graph needs more colors than the cap, excess labels are
        assigned the least-loaded legal-ish column and conflicts become
        spill rows (handled by the loader).
    """

    def __init__(self, max_columns=None):
        self.max_columns = max_columns
        self.assignment: dict[str, int] = {}
        self.num_columns = 0
        self.conflict_labels: set[str] = set()

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, label_sets):
        """Fit from an iterable of co-occurring label collections.

        Each element is the set of labels appearing together in one
        adjacency list (or one vertex's attribute keys).
        """
        frequency = Counter()
        neighbors: dict[str, set[str]] = {}
        for label_set in label_sets:
            labels = list(dict.fromkeys(label_set))
            for label in labels:
                frequency[label] += 1
                neighbors.setdefault(label, set())
            for i, first in enumerate(labels):
                for second in labels[i + 1 :]:
                    neighbors[first].add(second)
                    neighbors[second].add(first)

        # greedy coloring, most frequent labels first (they are the most
        # expensive to spill)
        ordered = sorted(frequency, key=lambda label: (-frequency[label], label))
        self.assignment = {}
        self.conflict_labels = set()
        for label in ordered:
            used = {
                self.assignment[other]
                for other in neighbors[label]
                if other in self.assignment
            }
            color = 0
            while color in used:
                color += 1
            if self.max_columns is not None and color >= self.max_columns:
                # over the cap: pick the least-used column; conflicts will
                # materialize as spill rows
                loads = Counter(self.assignment.values())
                color = min(
                    range(self.max_columns),
                    key=lambda candidate: loads.get(candidate, 0),
                )
                self.conflict_labels.add(label)
            self.assignment[label] = color
        self.num_columns = (
            max(self.assignment.values()) + 1 if self.assignment else 1
        )
        return self

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def column_for(self, label):
        """Column index for *label* (fallback hash for unseen labels)."""
        column = self.assignment.get(label)
        if column is not None:
            return column
        return _stable_hash(label) % self.num_columns

    def known(self, label):
        return label in self.assignment

    def labels(self):
        return list(self.assignment)

    def __len__(self):
        return len(self.assignment)


def _stable_hash(text):
    """Deterministic string hash (Python's hash() is salted per process)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0x7FFFFFFF
    return value


def adjacency_label_sets(graph, direction="out", sample_limit=None):
    """Yield the label set of each vertex's adjacency list.

    :param direction: ``'out'`` or ``'in'``.
    :param sample_limit: analyze only the first N vertices (the paper notes
        a representative sample suffices).
    """
    for count, vertex in enumerate(graph.vertices()):
        if sample_limit is not None and count >= sample_limit:
            return
        table = vertex.out_edges if direction == "out" else vertex.in_edges
        labels = [label for label, bucket in table.items() if bucket]
        if labels:
            yield labels


def attribute_key_sets(graph, element="vertex", sample_limit=None):
    """Yield the attribute-key set of each vertex (or edge)."""
    elements = graph.vertices() if element == "vertex" else graph.edges()
    for count, item in enumerate(elements):
        if sample_limit is not None and count >= sample_limit:
            return
        if item.properties:
            yield list(item.properties)
