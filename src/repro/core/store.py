"""The SQLGraph store facade.

:class:`SQLGraphStore` glues the pieces together:

* load a property graph with :class:`~repro.core.loader.SQLGraphLoader`;
* answer whole Gremlin queries by translating them to one SQL statement
  (``query`` / ``run`` / ``translate``);
* expose Blueprints-style CRUD through the update stored procedures;
* optionally charge a simulated client/server round trip per *request*
  (one per query / CRUD call — the architectural contrast with the
  pipe-at-a-time baselines, which pay one round trip per traversal step
  per element).
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.core.loader import SQLGraphLoader
from repro.core.procedures import GraphProcedures
from repro.core.schema import SQLGraphSchema, attribute_index_ddl
from repro.core.translator import (
    GremlinTranslator,
    bind_parameters,
    parameterize_query,
    strip_parameter_markers,
)
from repro.graph.analytics import GraphAnalytics
from repro.graph.blueprints import Direction, GraphInterface
from repro.gremlin.errors import GremlinError
from repro.gremlin.parser import parse_gremlin
from repro.obs import context as obs_context
from repro.obs.stats import ExecutionStats, QueryStats
from repro.relational.cache import LRUCache, resolve_capacity
from repro.relational.database import Database


class _CompiledTemplate:
    """Translation-cache entry: parameterized SQL + binding recipe."""

    __slots__ = ("sql", "recipe", "trace")

    def __init__(self, sql, recipe, trace):
        self.sql = sql
        self.recipe = recipe
        self.trace = trace


class SQLGraphStore(GraphInterface):
    """A property-graph store over the relational engine.

    :param buffer_pool_pages: buffer pool size (``None`` = unbounded).
    :param max_columns: cap on adjacency column triads.
    :param client: optional latency model charged once per request
        (:class:`repro.baselines.latency.ClientServerLink`).
    :param slow_query_threshold: seconds; Gremlin queries whose total
        (translate + execute) time meets the threshold are appended to
        :attr:`slow_query_log` as structured dicts.  ``None`` disables.
    :param plan_cache_size: prepared-statement cache capacity for the
        underlying database (0 disables; ``None`` = environment default).
    :param translation_cache_size: Gremlin template cache capacity
        (0 disables; ``None`` = environment default).
    :param path: directory for durable storage (``None`` = in-memory).
        Reopening a path restores the loaded graph, colorings, attribute
        indexes and id counters from the recovered database.
    :param wal_fsync / wal_group_window_ms / wal_checkpoint_every:
        durability knobs forwarded to :class:`~repro.relational.database.
        Database` (see its docstring and ``REPRO_WAL_*`` env variables).
    """

    #: slow_query_log keeps at most this many entries (oldest dropped).
    SLOW_QUERY_LOG_LIMIT = 100

    #: meta key the store's persistent state lives under in Database.meta
    META_KEY = "sqlgraph"

    def __init__(self, buffer_pool_pages=None, max_columns=None, client=None,
                 planner_options=None, slow_query_threshold=None,
                 plan_cache_size=None, translation_cache_size=None,
                 path=None, wal_fsync=None, wal_group_window_ms=None,
                 wal_checkpoint_every=None):
        self.database = Database(
            buffer_pool_pages, planner_options=planner_options,
            plan_cache_size=plan_cache_size, path=path,
            wal_fsync=wal_fsync, wal_group_window_ms=wal_group_window_ms,
            wal_checkpoint_every=wal_checkpoint_every,
        )
        #: Gremlin template -> translated SQL + parameter binding recipe
        self.translation_cache = LRUCache(
            resolve_capacity(translation_cache_size),
            metrics_prefix="translation_cache",
        )
        self.max_columns = max_columns
        self.client = client
        self.schema = None
        self.loader = None
        self.translator = None
        self.procedures = None
        self.out_coloring = None
        self.in_coloring = None
        #: :class:`~repro.core.loader.LoadReport` of the last load — kept
        #: on the store (and persisted) because a reopened store has no
        #: loader instance
        self.load_report = None
        # id allocation, translated-query counter and the slow-query log
        # are shared by every server session; one small guard covers them
        self._mutation_lock = threading.Lock()
        self._next_vertex_id = 1  # guarded-by: _mutation_lock
        self._next_edge_id = 1  # guarded-by: _mutation_lock
        self._local = threading.local()
        self._attribute_indexes = []  # (element, key, sorted_index)
        self.queries_translated = 0  # guarded-by: _mutation_lock
        self.slow_query_threshold = slow_query_threshold
        self.slow_query_log = []  # guarded-by: _mutation_lock
        if path is not None and self.database.get_meta(self.META_KEY):
            self._restore_from_meta()

    # Concurrent sessions each run on their own worker thread (see
    # repro.server); keeping the most-recent-query stats per thread means a
    # session's :stats / last_query_stats never shows another client's query.
    @property
    def last_query_stats(self):
        """:class:`repro.obs.stats.QueryStats` for this thread's most
        recent ``query``/``run`` call (translation trace + counters)."""
        return getattr(self._local, "query_stats", None)

    @last_query_stats.setter
    def last_query_stats(self, value):
        self._local.query_stats = value

    @property
    def last_analytics_stats(self):
        """:class:`repro.obs.stats.AnalyticsStats` for this thread's most
        recent analytics run (per-iteration rows/deltas/timings)."""
        return getattr(self._local, "analytics_stats", None)

    @last_analytics_stats.setter
    def last_analytics_stats(self, value):
        self._local.analytics_stats = value

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_graph(self, graph, sample_limit=None):
        """Bulk-load *graph*; returns the loader's
        :class:`~repro.core.loader.LoadReport`."""
        self.loader = SQLGraphLoader(
            self.database, self.max_columns, sample_limit
        )
        self.schema = self.loader.load(graph)
        self.translator = GremlinTranslator(self.schema)
        # cached templates reference the previous schema's table layout
        self.translation_cache.invalidate_all()
        self.out_coloring = self.loader.out_coloring
        self.in_coloring = self.loader.in_coloring
        self.load_report = self.loader.report
        self.procedures = GraphProcedures(
            self.database,
            self.schema,
            self.out_coloring,
            self.in_coloring,
            lid_start=self.loader._next_lid,
        )
        vertex_ids = [vertex.id for vertex in graph.vertices()]
        edge_ids = [edge.id for edge in graph.edges()]
        with self._mutation_lock:
            self._next_vertex_id = max(vertex_ids, default=0) + 1
            self._next_edge_id = max(edge_ids, default=0) + 1
        self._persist_meta()
        # the bulk loader writes rows below the SQL layer, so the
        # per-statement auto-ANALYZE hook never sees the load; check here
        self.database.maybe_auto_analyze()
        return self.loader.report

    def create_attribute_index(self, element, key, sorted_index=False):
        """Add a user index over a JSON attribute (paper §3.4)."""
        self.database.execute(
            attribute_index_ddl(self.schema, element, key, sorted_index)
        )
        self._attribute_indexes.append((element, key, sorted_index))
        self._persist_meta()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _persist_meta(self):
        """Record store-level state in the database's durable meta store.

        Row data recovers through the WAL; this carries the pieces that
        live outside tables: schema dimensions, the fitted colorings, the
        load report and the attribute-index list.  Id counters are *not*
        persisted — they are recomputed from MAX(vid)/MAX(eid) and the
        highest ``lid:<n>`` marker on reopen, which also covers CRUD
        performed since the last call."""
        if self.database.wal is None or self.schema is None:
            return
        self.database.put_meta(
            self.META_KEY,
            {
                "out_columns": self.schema.out_columns,
                "in_columns": self.schema.in_columns,
                "prefix": self.schema.prefix,
                "max_columns": self.max_columns,
                "out_coloring": self.out_coloring,
                "in_coloring": self.in_coloring,
                "report": self.load_report,
                "attribute_indexes": list(self._attribute_indexes),
            },
        )

    def _restore_from_meta(self):
        """Rebuild translator/procedures over a recovered database."""
        state = self.database.get_meta(self.META_KEY)
        self.max_columns = state["max_columns"]
        self.schema = SQLGraphSchema(
            state["out_columns"], state["in_columns"], state["prefix"]
        )
        self.out_coloring = state["out_coloring"]
        self.in_coloring = state["in_coloring"]
        self.load_report = state["report"]
        self._attribute_indexes = list(state["attribute_indexes"])
        self.translator = GremlinTranslator(self.schema)
        self.procedures = GraphProcedures(
            self.database,
            self.schema,
            self.out_coloring,
            self.in_coloring,
            lid_start=self._recover_lid_start(),
        )
        names = self.schema.table_names
        max_vid = self.database.execute(
            f"SELECT MAX(vid) FROM {names['va']}"
        ).scalar()
        max_eid = self.database.execute(
            f"SELECT MAX(eid) FROM {names['ea']}"
        ).scalar()
        with self._mutation_lock:
            self._next_vertex_id = max(max_vid or 0, 0) + 1
            self._next_edge_id = max(max_eid or 0, 0) + 1

    def _recover_lid_start(self):
        """Highest multi-value list id in use (from OSA/ISA markers)."""
        highest = 0
        names = self.schema.table_names
        for key in ("osa", "isa"):
            rows = self.database.execute(
                f"SELECT valid FROM {names[key]}"
            ).rows
            for (valid,) in rows:
                if isinstance(valid, str) and valid.startswith("lid:"):
                    try:
                        highest = max(highest, int(valid[4:]))
                    except ValueError:
                        pass
        return highest

    def checkpoint(self):
        """Force a checkpoint of the underlying database (durable mode)."""
        return self.database.checkpoint()

    def close(self):
        """Checkpoint and close the underlying database.  Idempotent."""
        self.database.close()

    def export_graph(self):
        """Materialize the stored graph back into a PropertyGraph.

        VA + EA together hold the full graph state (EA is the redundant
        triple copy), so the export never touches the hash tables.  Edges
        dangling from lazily-deleted vertices are skipped — this doubles as
        the paper's "off-line cleanup process".
        """
        from repro.graph.model import PropertyGraph

        names = self.schema.table_names
        graph = PropertyGraph()
        for vid, attrs in self.database.execute(
            f"SELECT vid, attr FROM {names['va']} WHERE vid >= 0"
        ).rows:
            graph.add_vertex(vid, attrs)
        for eid, outv, inv, lbl, attrs in self.database.execute(
            f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
            "WHERE eid >= 0"
        ).rows:
            if graph.get_vertex(outv) is None or graph.get_vertex(inv) is None:
                continue  # dangling edge to a lazily-deleted vertex
            graph.add_edge(outv, inv, lbl, eid, attrs)
        return graph

    def reorganize(self):
        """Re-fit the coloring hashes and rebuild the adjacency tables.

        Paper §3.4: "if updates change substantially the basic
        characteristics of the dataset on which the hashing functions were
        derived, reorganization is required for efficient performance."
        This extracts the current graph state, recolors, reloads, and
        re-creates the user's attribute indexes.  Returns the fresh load
        report.
        """
        graph = self.export_graph()
        for table_name in self.schema.table_names.values():
            self.database.execute(f"DROP TABLE IF EXISTS {table_name}")
        attribute_indexes = list(self._attribute_indexes)
        self._attribute_indexes = []
        report = self.load_graph(graph)
        for element, key, sorted_index in attribute_indexes:
            self.create_attribute_index(element, key, sorted_index)
        return report

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def translate(self, gremlin_text):
        """Gremlin text → the single SQL statement that answers it."""
        query = parse_gremlin(gremlin_text)
        self._count_translation()
        return self.translator.translate(query)

    def _count_translation(self):
        with self._mutation_lock:
            self.queries_translated += 1

    def query(self, gremlin_text):
        """Run a Gremlin query; returns the engine ResultSet.

        Each call refreshes :attr:`last_query_stats` with the translation
        trace, wall times, and buffer-pool deltas.  Per-operator actuals
        are included when ``self.database.collect_stats`` is on (the same
        switch EXPLAIN ANALYZE uses).  Queries at or above
        :attr:`slow_query_threshold` seconds land in :attr:`slow_query_log`.
        """
        started = perf_counter()
        sql, params, trace, translation_hit = self._compile(gremlin_text)
        translated = perf_counter()
        stats = QueryStats(gremlin_text, sql, trace=trace)
        stats.session_id = obs_context.current_session_id()
        stats.connection = obs_context.current_connection()
        stats.translate_s = translated - started
        stats.translation_cache_hit = translation_hit
        self._charge_round_trip()
        pool = self.database.buffer_pool
        hits0, misses0, evictions0 = pool.hits, pool.misses, pool.evictions
        result = self.database.execute(sql, params)
        stats.plan_cache_hit = self.database.last_statement_cache_hit
        stats.cache_stats = {
            "plan_cache": self.database.plan_cache.stats(),
            "translation_cache": self.translation_cache.stats(),
        }
        stats.wal = self.database.wal_stats()
        stats.elapsed_s = perf_counter() - started
        stats.rows_returned = len(result.rows)
        if self.database.collect_stats and self.database.last_statement_stats:
            stats.execution = self.database.last_statement_stats
        else:
            execution = ExecutionStats(sql)
            execution.elapsed_s = stats.elapsed_s - stats.translate_s
            execution.rows_returned = stats.rows_returned
            execution.page_hits = pool.hits - hits0
            execution.page_misses = pool.misses - misses0
            execution.page_evictions = pool.evictions - evictions0
            stats.execution = execution
        self.last_query_stats = stats
        threshold = self.slow_query_threshold
        if threshold is not None and stats.elapsed_s >= threshold:
            self._log_slow_query(stats)
        return result

    def _log_slow_query(self, stats):
        entry = stats.as_dict()
        entry["threshold_s"] = self.slow_query_threshold
        with self._mutation_lock:
            self.slow_query_log.append(entry)
            if len(self.slow_query_log) > self.SLOW_QUERY_LOG_LIMIT:
                del self.slow_query_log[: -self.SLOW_QUERY_LOG_LIMIT]

    def _compile(self, gremlin_text):
        """Gremlin text → ``(sql, params, trace, translation_cache_hit)``.

        Warm path: parse the pipeline, extract its literals into a
        parameter vector, and look up the translated SQL by template shape
        — only a miss pays for translation.  With the cache disabled the
        legacy literal translation runs unchanged.
        """
        query = parse_gremlin(gremlin_text)
        if not self.translation_cache.enabled:
            sql = self.translator.translate(query)
            self._count_translation()
            return sql, None, self.translator.last_trace, False
        template, values, key = parameterize_query(query)
        epoch = self.database.schema_epoch
        entry = self.translation_cache.get(key, epoch=epoch)
        if entry is None:
            marked_sql = self.translator.translate(template)
            sql, recipe = strip_parameter_markers(marked_sql)
            entry = _CompiledTemplate(sql, recipe, self.translator.last_trace)
            self.translation_cache.put(key, entry, epoch=epoch)
            self._count_translation()
            return entry.sql, bind_parameters(values, entry.recipe), entry.trace, False
        return entry.sql, bind_parameters(values, entry.recipe), entry.trace, True

    def run(self, gremlin_text):
        """Run a Gremlin query; returns the list of result values."""
        result = self.query(gremlin_text)
        if "val" not in result.columns:
            available = ", ".join(result.columns) or "no columns"
            raise GremlinError(
                f"query produced no 'val' column to unwrap "
                f"(result columns: {available}); use query() for raw rows"
            )
        position = result.columns.index("val")
        return [row[position] for row in result.rows]

    def execute_sql(self, sql, params=None):
        """Escape hatch: raw SQL against the underlying engine."""
        self._charge_round_trip()
        return self.database.execute(sql, params)

    def _charge_round_trip(self):
        if self.client is not None:
            self.client.round_trip()

    # ------------------------------------------------------------------
    # Blueprints-style CRUD (one round trip per call)
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id=None, properties=None):
        with self._mutation_lock:
            if vertex_id is None:
                vertex_id = self._next_vertex_id
            self._next_vertex_id = max(self._next_vertex_id, vertex_id + 1)
        self._charge_round_trip()
        self.procedures.add_vertex(vertex_id, properties)
        return vertex_id

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        with self._mutation_lock:
            if edge_id is None:
                edge_id = self._next_edge_id
            self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        self._charge_round_trip()
        self.procedures.add_edge(
            edge_id, out_vertex_id, in_vertex_id, label, properties
        )
        return edge_id

    def get_vertex(self, vertex_id):
        self._charge_round_trip()
        properties = self.procedures.get_vertex_properties(vertex_id)
        if properties is None:
            return None
        return SQLVertex(self, vertex_id, properties)

    def get_edge(self, edge_id):
        self._charge_round_trip()
        row = self.procedures.get_edge_row(edge_id)
        if row is None:
            return None
        return SQLEdge(self, *row)

    def remove_vertex(self, vertex_id):
        self._charge_round_trip()
        return self.procedures.delete_vertex(vertex_id)

    def remove_edge(self, edge_id):
        self._charge_round_trip()
        return self.procedures.delete_edge(edge_id)

    def set_vertex_property(self, vertex_id, key, value):
        self._charge_round_trip()
        return self.procedures.update_vertex(vertex_id, {key: value})

    def set_edge_property(self, edge_id, key, value):
        self._charge_round_trip()
        return self.procedures.update_edge(edge_id, {key: value})

    def vertices(self):
        self._charge_round_trip()
        names = self.schema.table_names
        result = self.database.execute(
            f"SELECT vid, attr FROM {names['va']} WHERE vid >= 0"
        )
        return (SQLVertex(self, vid, attr) for vid, attr in result.rows)

    def edges(self):
        self._charge_round_trip()
        names = self.schema.table_names
        result = self.database.execute(
            f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
            "WHERE eid >= 0"
        )
        return (SQLEdge(self, *row) for row in result.rows)

    def vertex_count(self):
        names = self.schema.table_names
        return self.database.execute(
            f"SELECT COUNT(*) FROM {names['va']} WHERE vid >= 0"
        ).scalar()

    def edge_count(self):
        names = self.schema.table_names
        return self.database.execute(
            f"SELECT COUNT(*) FROM {names['ea']} WHERE eid >= 0"
        ).scalar()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def table_stats(self):
        """Row counts + loader statistics (paper Table 3 inputs)."""
        stats = {}
        for key, table_name in self.schema.table_names.items():
            stats[key] = self.database.table(table_name).live_rows
        return {
            "rows": stats,
            "load": self.load_report,
            "statistics": self.database.statistics.snapshot(),
        }

    def analyze_tables(self, table=None):
        """Collect optimizer statistics (the SQL ``ANALYZE`` statement).

        Returns ``[(table_name, row_count, sample_size), ...]`` for the
        analyzed tables.  See docs/OPTIMIZER.md.
        """
        sql = "ANALYZE" if table is None else f"ANALYZE {table}"
        return list(self.database.execute(sql).rows)

    def storage_bytes(self):
        return self.database.storage_bytes()

    # ------------------------------------------------------------------
    # bulk analytics (one logical round trip per run; see
    # repro.graph.analytics and docs/ANALYTICS.md)
    # ------------------------------------------------------------------
    def _analytics(self):
        self._charge_round_trip()
        return GraphAnalytics(self.database, self.schema.table_names)

    def pagerank(self, damping=0.85, tolerance=1e-6, max_iterations=50,
                 time_budget_s=None, cancel=None):
        """PageRank over the live graph; returns ``{vid: rank}``."""
        analytics = self._analytics()
        try:
            return analytics.pagerank(
                damping=damping, tolerance=tolerance,
                max_iterations=max_iterations,
                time_budget_s=time_budget_s, cancel=cancel,
            )
        finally:
            self.last_analytics_stats = analytics.last_stats

    def connected_components(self, max_iterations=None, time_budget_s=None,
                             cancel=None):
        """Weakly-connected components; returns ``{vid: component_id}``
        where the id is the smallest vid in the component."""
        analytics = self._analytics()
        try:
            return analytics.connected_components(
                max_iterations=max_iterations,
                time_budget_s=time_budget_s, cancel=cancel,
            )
        finally:
            self.last_analytics_stats = analytics.last_stats

    def label_propagation(self, max_iterations=20, time_budget_s=None,
                          cancel=None):
        """Deterministic synchronous label propagation; returns
        ``{vid: label}``."""
        analytics = self._analytics()
        try:
            return analytics.label_propagation(
                max_iterations=max_iterations,
                time_budget_s=time_budget_s, cancel=cancel,
            )
        finally:
            self.last_analytics_stats = analytics.last_stats

    def shortest_paths(self, source, weight_key=None, max_iterations=None,
                       time_budget_s=None, cancel=None):
        """Single-source shortest paths (directed); returns
        ``{vid: distance}`` for reachable vertices only."""
        analytics = self._analytics()
        try:
            return analytics.shortest_paths(
                source, weight_key=weight_key,
                max_iterations=max_iterations,
                time_budget_s=time_budget_s, cancel=cancel,
            )
        finally:
            self.last_analytics_stats = analytics.last_stats


class SQLVertex:
    """Lazy vertex handle: every accessor is a round trip to the store.

    Used by the pipe-at-a-time ablation (running the reference interpreter
    directly against SQLGraph's Blueprints methods, the architecture the
    paper argues against in §4.2).
    """

    __slots__ = ("_store", "id", "properties")

    def __init__(self, store, vertex_id, properties):
        self._store = store
        self.id = vertex_id
        self.properties = properties or {}

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def vertices(self, direction, labels=()):
        store = self._store
        store._charge_round_trip()
        names = store.schema.table_names
        rows = []
        label_list = list(labels)
        label_cond = ""
        params = []
        if label_list:
            placeholders = ", ".join("?" for __ in label_list)
            label_cond = f" AND lbl IN ({placeholders})"
        if direction in (Direction.OUT, Direction.BOTH):
            rows += store.database.execute(
                f"SELECT inv FROM {names['ea']} WHERE outv = ?{label_cond}",
                [self.id] + label_list,
            ).rows
        if direction in (Direction.IN, Direction.BOTH):
            rows += store.database.execute(
                f"SELECT outv FROM {names['ea']} WHERE inv = ?{label_cond}",
                [self.id] + label_list,
            ).rows
        del params
        return [store.get_vertex(row[0]) for row in rows]

    def edges(self, direction, labels=()):
        store = self._store
        store._charge_round_trip()
        names = store.schema.table_names
        label_list = list(labels)
        label_cond = ""
        if label_list:
            placeholders = ", ".join("?" for __ in label_list)
            label_cond = f" AND lbl IN ({placeholders})"
        rows = []
        if direction in (Direction.OUT, Direction.BOTH):
            rows += store.database.execute(
                f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
                f"WHERE outv = ?{label_cond}",
                [self.id] + label_list,
            ).rows
        if direction in (Direction.IN, Direction.BOTH):
            rows += store.database.execute(
                f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
                f"WHERE inv = ?{label_cond}",
                [self.id] + label_list,
            ).rows
        return [SQLEdge(store, *row) for row in rows]

    def __repr__(self):
        return f"SQLVertex({self.id})"


class SQLEdge:
    """Lazy edge handle mirroring :class:`SQLVertex`."""

    __slots__ = ("_store", "id", "outv", "inv", "label", "properties")

    def __init__(self, store, edge_id, outv, inv, label, properties):
        self._store = store
        self.id = edge_id
        self.outv = outv
        self.inv = inv
        self.label = label
        self.properties = properties or {}

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def vertex(self, direction):
        if direction is Direction.OUT:
            return self._store.get_vertex(self.outv)
        if direction is Direction.IN:
            return self._store.get_vertex(self.inv)
        raise ValueError("edge endpoint requires OUT or IN")

    def __repr__(self):
        return f"SQLEdge({self.id}, {self.outv}-[{self.label}]->{self.inv})"
