"""Graph update "stored procedures" (paper §4.5.2).

Basic CRUD spans multiple tables of the hybrid schema, so each operation is
implemented as one procedure that takes the table write locks it needs and
mutates OPA/OSA/IPA/ISA/VA/EA consistently:

* ``add_edge`` locates (or spills) the label's column triad in the primary
  adjacency rows and migrates single values to the secondary tables when a
  label becomes multi-valued;
* ``delete_vertex`` uses the paper's negative-id optimization: the vertex's
  VA and adjacency rows get ``vid := -vid - 1`` (queries filter
  ``vid >= 0``), its EA rows are deleted, and dangling references in other
  vertices' adjacency lists are left for an offline cleanup.
"""

from __future__ import annotations

import threading

from repro.relational.locks import LockManager


class GraphProcedures:
    """CRUD over one loaded SQLGraph schema."""

    def __init__(self, database, schema, out_coloring, in_coloring,
                 lid_start=0):
        self.database = database
        self.schema = schema
        self.out_coloring = out_coloring
        self.in_coloring = in_coloring
        self._next_lid = lid_start
        self._lid_lock = threading.Lock()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tables(self):
        names = self.schema.table_names
        return {key: self.database.table(name) for key, name in names.items()}

    def _locked(self, write_names):
        return self.database.locks.acquire((), write_names)

    def _vid_index(self, table):
        return table.indexes[f"{table.name}_vid"]

    def _valid_index(self, table):
        return table.indexes[f"{table.name}_valid"]

    def _allocate_lid(self):
        # concurrent sessions must never mint the same multi-value list id
        with self._lid_lock:
            self._next_lid += 1
            return f"lid:{self._next_lid}"

    def _commit(self):
        """Autocommit boundary: one mutating procedure = one transaction.

        Inside an explicit transaction the records carry its txid and the
        transaction's own commit reaches the commit point; otherwise the
        procedure IS the transaction, so its WAL records must hit the
        commit point before the caller sees the acknowledgement — the
        same kill -9 durability contract autocommitted SQL DML has.
        Called after the table locks are released (group commit may
        fsync, and a checkpoint may want those same locks).
        """
        database = self.database
        wal = database.wal
        if wal is None or wal.closed:
            return
        if database.current_transaction() is not None:
            return
        wal.commit_point()
        database._maybe_auto_checkpoint()

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id, properties=None):
        tables = self._tables()
        token = self._locked([tables["va"].name])
        try:
            tables["va"].insert((vertex_id, dict(properties or {})), coerce=False)
        finally:
            LockManager.release(token)
        self._commit()
        return vertex_id

    def get_vertex_properties(self, vertex_id):
        tables = self._tables()
        token = self.database.locks.acquire([tables["va"].name], ())
        try:
            index = tables["va"].indexes[f"{tables['va'].name}_pk"]
            for rid in index.lookup(vertex_id):
                row = tables["va"].get(rid)
                if row is not None:
                    return row[1]
            return None
        finally:
            LockManager.release(token)

    def update_vertex(self, vertex_id, properties):
        """Merge *properties* into the vertex's JSON attributes."""
        tables = self._tables()
        token = self._locked([tables["va"].name])
        updated = False
        try:
            table = tables["va"]
            index = table.indexes[f"{table.name}_pk"]
            for rid in index.lookup(vertex_id):
                row = table.get(rid)
                if row is None:
                    continue
                attrs = dict(row[1] or {})
                attrs.update(properties)
                table.update(rid, (vertex_id, attrs), coerce=False)
                updated = True
                break
        finally:
            LockManager.release(token)
        # unconditional: a commit point with nothing pending is a no-op,
        # and every path that did log a record must reach one before the
        # caller is acked (wal-commit-reachability)
        self._commit()
        return updated

    def delete_vertex(self, vertex_id):
        """Negative-id lazy delete (paper §4.5.2)."""
        tables = self._tables()
        names = [
            tables[key].name for key in ("va", "opa", "ipa", "ea", "osa", "isa")
        ]
        token = self._locked(names)
        try:
            tombstone = -vertex_id - 1
            va = tables["va"]
            found = False
            index = va.indexes[f"{va.name}_pk"]
            for rid in list(index.lookup(vertex_id)):
                row = va.get(rid)
                if row is not None:
                    va.update(rid, (tombstone,) + row[1:], coerce=False)
                    found = True
            for key in ("opa", "ipa"):
                table = tables[key]
                vid_index = self._vid_index(table)
                for rid in list(vid_index.lookup(vertex_id)):
                    row = table.get(rid)
                    if row is not None:
                        table.update(rid, (tombstone,) + row[1:], coerce=False)
            # delete the vertex's EA rows (both directions)
            ea = tables["ea"]
            for column in ("outv", "inv"):
                ea_index = ea.indexes[f"{ea.name}_{column}"]
                for rid in list(ea_index.lookup(vertex_id)):
                    ea.delete(rid)
        finally:
            LockManager.release(token)
        self._commit()
        return found

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, edge_id, out_vertex_id, in_vertex_id, label,
                 properties=None):
        tables = self._tables()
        names = [
            tables[key].name for key in ("ea", "opa", "osa", "ipa", "isa")
        ]
        token = self._locked(names)
        try:
            tables["ea"].insert(
                (edge_id, out_vertex_id, in_vertex_id, label,
                 dict(properties or {})),
                coerce=False,
            )
            self._adjacency_insert(
                tables["opa"], tables["osa"], self.out_coloring, "out",
                out_vertex_id, edge_id, label, in_vertex_id,
            )
            self._adjacency_insert(
                tables["ipa"], tables["isa"], self.in_coloring, "in",
                in_vertex_id, edge_id, label, out_vertex_id,
            )
        finally:
            LockManager.release(token)
        self._commit()
        return edge_id

    def _adjacency_insert(self, primary, secondary, coloring, direction, vid,
                          eid, label, value):
        column = coloring.column_for(label)
        eid_pos, lbl_pos, val_pos = self.schema.triad_positions(column)
        width = self.schema.adjacency_row_width(direction)
        vid_index = self._vid_index(primary)
        rids = list(vid_index.lookup(vid))
        rows = [(rid, primary.get(rid)) for rid in rids]
        rows = [(rid, row) for rid, row in rows if row is not None]

        # 1. a row already holding this label in the triad?
        for rid, row in rows:
            if row[lbl_pos] == label:
                existing = row[val_pos]
                if isinstance(existing, str) and existing.startswith("lid:"):
                    secondary.insert((existing, eid, value), coerce=False)
                else:
                    lid = self._allocate_lid()
                    secondary.insert((lid, row[eid_pos], existing), coerce=False)
                    secondary.insert((lid, eid, value), coerce=False)
                    new_row = list(row)
                    new_row[eid_pos] = None
                    new_row[val_pos] = lid
                    primary.update(rid, new_row, coerce=False)
                return
        # 2. a row with a free slot for this column?
        for rid, row in rows:
            if row[lbl_pos] is None:
                new_row = list(row)
                new_row[eid_pos] = eid
                new_row[lbl_pos] = label
                new_row[val_pos] = value
                primary.update(rid, new_row, coerce=False)
                return
        # 3. spill: a fresh row for this vertex
        fresh = [None] * width
        fresh[0] = vid
        fresh[1] = 1 if rows else 0
        fresh[eid_pos] = eid
        fresh[lbl_pos] = label
        fresh[val_pos] = value
        primary.insert(tuple(fresh), coerce=False)
        if rows:
            for rid, row in rows:
                if row[1] != 1:
                    new_row = list(row)
                    new_row[1] = 1
                    primary.update(rid, new_row, coerce=False)

    def get_edge_row(self, edge_id):
        tables = self._tables()
        ea = tables["ea"]
        token = self.database.locks.acquire([ea.name], ())
        try:
            index = ea.indexes[f"{ea.name}_pk"]
            for rid in index.lookup(edge_id):
                row = ea.get(rid)
                if row is not None:
                    return row
            return None
        finally:
            LockManager.release(token)

    def update_edge(self, edge_id, properties):
        tables = self._tables()
        ea = tables["ea"]
        token = self._locked([ea.name])
        updated = False
        try:
            index = ea.indexes[f"{ea.name}_pk"]
            for rid in index.lookup(edge_id):
                row = ea.get(rid)
                if row is None:
                    continue
                attrs = dict(row[4] or {})
                attrs.update(properties)
                ea.update(rid, row[:4] + (attrs,), coerce=False)
                updated = True
                break
        finally:
            LockManager.release(token)
        self._commit()
        return updated

    def delete_edge(self, edge_id):
        tables = self._tables()
        names = [
            tables[key].name for key in ("ea", "opa", "osa", "ipa", "isa")
        ]
        token = self._locked(names)
        try:
            ea = tables["ea"]
            index = ea.indexes[f"{ea.name}_pk"]
            row = None
            for rid in list(index.lookup(edge_id)):
                candidate = ea.get(rid)
                if candidate is not None:
                    row = candidate
                    ea.delete(rid)
                    break
            if row is not None:
                __, out_vertex, in_vertex, label, __attrs = row
                self._adjacency_delete(
                    tables["opa"], tables["osa"], self.out_coloring,
                    out_vertex, edge_id, label,
                )
                self._adjacency_delete(
                    tables["ipa"], tables["isa"], self.in_coloring,
                    in_vertex, edge_id, label,
                )
        finally:
            LockManager.release(token)
        self._commit()
        return row is not None

    def _adjacency_delete(self, primary, secondary, coloring, vid, eid, label):
        column = coloring.column_for(label)
        eid_pos, lbl_pos, val_pos = self.schema.triad_positions(column)
        vid_index = self._vid_index(primary)
        for rid in list(vid_index.lookup(vid)):
            row = primary.get(rid)
            if row is None or row[lbl_pos] != label:
                continue
            value = row[val_pos]
            if isinstance(value, str) and value.startswith("lid:"):
                valid_index = self._valid_index(secondary)
                for srid in list(valid_index.lookup(value)):
                    srow = secondary.get(srid)
                    if srow is not None and srow[1] == eid:
                        secondary.delete(srid)
                        return
            elif row[eid_pos] == eid:
                new_row = list(row)
                new_row[eid_pos] = None
                new_row[lbl_pos] = None
                new_row[val_pos] = None
                primary.update(rid, new_row, coerce=False)
                return
