"""The Database facade: catalog, statement execution, transactions.

``Database.execute(sql, params)`` is the single entry point.  SELECT
statements return a :class:`ResultSet`; DML returns a ResultSet whose
``rowcount`` is set.  Statements run under table-level two-phase locking;
``Database.transaction()`` groups statements with undo-based rollback.

Passing ``path=...`` makes the database *durable*: every mutation is
written ahead to ``<path>/wal.log``, checkpoints snapshot the catalog to
``<path>/snapshot.pkl``, and reopening the same path recovers exactly the
committed state (see :mod:`repro.relational.wal` and
:mod:`repro.relational.recovery`).
"""

from __future__ import annotations

import os
import threading
from time import perf_counter

from repro.obs import context as obs_context
from repro.obs.metrics import ENGINE_METRICS
from repro.obs.stats import ExecutionStats, instrument_plan, render_analyzed_plan
from repro.relational import expressions as ex
from repro.relational import operators as op
from repro.relational.cache import LRUCache, resolve_capacity
from repro.relational.errors import BindError, CatalogError, TransactionError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.locks import LockManager
from repro.relational.pages import BufferPool
from repro.relational.planner import Planner, Runtime
from repro.relational.schema import (
    Column,
    ColumnType,
    SCRATCH_TABLE_PREFIX,
    TableSchema,
)
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.parser import parse_statement
from repro.relational.stats import META_STATS_KEY, StatisticsRegistry
from repro.relational.table import HeapTable

#: recognized planner options and their validators.  Options are read
#: through :meth:`Database.planner_option`, never via raw dict access —
#: a typo'd name or a non-numeric value fails loudly at construction
#: instead of silently planning with a default mid-join-ordering.
PLANNER_OPTION_SPECS = {
    "index_probe_cost": "positive number",
}


def _env_flag(name, default=False):
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip() not in ("", "0", "false", "off")


def resolve_auto_analyze(flag=None):
    """``REPRO_AUTO_ANALYZE``: re-ANALYZE drifted tables automatically
    (off by default; see :meth:`Database.maybe_auto_analyze`)."""
    if flag is not None:
        return bool(flag)
    return _env_flag("REPRO_AUTO_ANALYZE")


def resolve_auto_analyze_drift(threshold=None):
    """``REPRO_AUTO_ANALYZE_DRIFT``: mutation-drift fraction that triggers
    a re-ANALYZE (default 0.5 — half the table churned since ANALYZE)."""
    if threshold is not None:
        return float(threshold)
    return float(os.environ.get("REPRO_AUTO_ANALYZE_DRIFT", "0.5"))


#: auto-ANALYZE ignores tables smaller than this when they have no
#: statistics yet (tiny tables plan fine on the no-stats fallback)
AUTO_ANALYZE_MIN_ROWS = 64


def validate_planner_options(options):
    """Type-check a ``planner_options`` mapping; returns a clean dict."""
    validated = {}
    for name, value in (options or {}).items():
        if name not in PLANNER_OPTION_SPECS:
            known = ", ".join(sorted(PLANNER_OPTION_SPECS))
            raise ValueError(
                f"unknown planner option {name!r} (known: {known})"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"planner option {name!r} must be a "
                f"{PLANNER_OPTION_SPECS[name]}, got {value!r}"
            )
        if value <= 0:
            raise ValueError(
                f"planner option {name!r} must be a "
                f"{PLANNER_OPTION_SPECS[name]}, got {value!r}"
            )
        validated[name] = float(value)
    return validated


class ResultSet:
    """Materialized result of one statement."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns=(), rows=(), rowcount=0):
        self.columns = list(columns)
        self.rows = list(rows)
        self.rowcount = rowcount

    def scalar(self):
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, position=0):
        return [row[position] for row in self.rows]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


def _materialize_rows(plan):
    """Collect a plan's output as a list of row tuples.

    When the root operator runs vectorized, consume its blocks and
    transpose each one wholesale (``zip`` at C speed) instead of paying
    the per-row generator hop through the row-compat shim.  Reads the
    ``batches``/``rows`` instance attributes, so EXPLAIN ANALYZE
    instrumentation still counts the traffic.
    """
    uses_batches = getattr(plan, "uses_batches", None)
    if uses_batches is not None and uses_batches():
        rows = []
        extend = rows.extend
        for block in plan.batches():
            extend(block.iter_rows())
        return rows
    return list(plan.rows())


class Catalog:
    """All tables of a database."""

    def __init__(self, buffer_pool):
        self._tables: dict[str, HeapTable] = {}
        self._pool = buffer_pool
        #: WAL new tables report their mutations to (durable mode only)
        self.wal = None
        #: callable resolving the active transaction (undo capture)
        self.txn_source = None
        buffer_pool.bind_catalog(self._tables.get)

    def create_table(self, schema):
        name = schema.name
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = HeapTable(schema, self._pool)
        table.wal = self.wal
        table.txn_source = self.txn_source
        self._tables[name] = table
        return table

    def get_table(self, name):
        table = self._tables.get(name.lower())
        if table is None:
            raise BindError(f"unknown table {name!r}")
        return table

    def has_table(self, name):
        return name.lower() in self._tables

    def drop_table(self, name):
        table = self._tables.pop(name.lower(), None)
        if table is not None:
            self._pool.drop_table(table.name)
        return table is not None

    def table_names(self):
        return sorted(self._tables)


class Transaction:
    """Undo log + held locks for an explicit transaction."""

    def __init__(self, database, txid=0):
        self.database = database
        #: nonzero for durable databases; ops logged under this txid are
        #: redone at recovery only if the matching COMMIT record survives
        self.txid = txid
        self.undo = []  # (kind, table, rid, old_row)
        self.lock_tokens = []
        self.held = {}  # table name -> 'r' | 'w'
        self.active = True

    def release_read(self, name):
        """Drop a held read lock (lock-upgrade path)."""
        for token in self.lock_tokens:
            for i, (lock, mode) in enumerate(token):
                if lock.name == name and mode == "r":
                    lock.release_read()
                    del token[i]
                    self.held.pop(name, None)
                    return True
        return False

    def record_insert(self, table, rid):
        self.undo.append(("insert", table, rid, None))

    def record_delete(self, table, rid, old_row):
        self.undo.append(("delete", table, rid, old_row))

    def record_update(self, table, rid, old_row):
        self.undo.append(("update", table, rid, old_row))

    def commit(self):
        self._finish("commit")

    def rollback(self):
        # Lock release must not depend on the undo loop succeeding: a
        # failing compensation step would otherwise leave the table locks
        # held forever (and the session wedged).  The undo runs with WAL
        # logging paused — recovery simply skips loser transactions, so
        # compensation writes must not reach the log.
        if getattr(self.database._local, "txn", None) is self:
            self.database._local.txn = None  # undo must not re-record
        try:
            wal = self.database.wal
            if wal is not None:
                with wal.pause():
                    self._undo_all()
            else:
                self._undo_all()
        finally:
            self._finish("abort")

    def _undo_all(self):
        for kind, table, rid, old_row in reversed(self.undo):
            if kind == "insert":
                table.delete(rid)
            elif kind == "delete":
                table.restore(rid, old_row)
            elif kind == "update":
                table.update(rid, old_row, coerce=False)

    def _finish(self, outcome):
        if not self.active:
            raise TransactionError("transaction already finished")
        self.active = False
        database = self.database
        wal = database.wal
        try:
            if wal is not None and self.txid:
                wal.set_txid(0)
                if not wal.closed:
                    wal.append(outcome, txid=self.txid)
                    wal.commit_point()
        finally:
            for token in reversed(self.lock_tokens):
                LockManager.release(token)
            self.undo.clear()
            self.lock_tokens.clear()
            self.held.clear()
            database._transaction_finished(self.txid)


class PreparedStatement:
    """A compiled statement ready for repeated execution.

    CTEs in this engine are materialized during planning, so "the plan" for
    a fresh execution is data as much as structure — what can be shared
    across executions is the parsed AST (immutable once cached; the planner
    is copy-on-write) plus the precomputed lock sets.  :meth:`plan` is the
    operator-tree factory: it re-binds the current parameter vector and
    produces a fresh tree without re-lexing, re-parsing or re-analyzing.
    """

    __slots__ = ("statement", "read_tables", "write_tables")

    def __init__(self, statement, read_tables, write_tables):
        self.statement = statement
        self.read_tables = read_tables
        self.write_tables = write_tables

    def plan(self, database, params=None):
        """Build an executable operator tree for one parameter binding."""
        return database._planner(params).plan_select_statement(self.statement)


class Database:
    """An in-process relational database.

    :param buffer_pool_pages: LRU buffer pool capacity in pages
        (``None`` = unbounded).
    :param lock_timeout: seconds to wait for a table lock (``None`` =
        ``REPRO_LOCK_TIMEOUT_MS`` env, default 30s).
    :param plan_cache_size: prepared-statement cache capacity (0 disables;
        ``None`` = ``REPRO_PLAN_CACHE``/``REPRO_PLAN_CACHE_SIZE`` env).
    :param path: directory for durable storage.  ``None`` (the default)
        keeps the database purely in memory; a path enables write-ahead
        logging, checkpoints and crash recovery on open.
    :param wal_fsync: ``"always"`` | ``"group"`` | ``"off"``
        (``None`` = ``REPRO_WAL_FSYNC`` env, default ``group``).
    :param wal_group_window_ms: group-commit fsync window in milliseconds
        (``None`` = ``REPRO_WAL_GROUP_WINDOW_MS`` env, default 5).
    :param wal_checkpoint_every: auto-checkpoint after this many log
        records (0 disables; ``None`` = ``REPRO_WAL_CHECKPOINT_EVERY``
        env, default 10000).
    """

    def __init__(self, buffer_pool_pages=None, lock_timeout=None,
                 planner_options=None, plan_cache_size=None, path=None,
                 wal_fsync=None, wal_group_window_ms=None,
                 wal_checkpoint_every=None, auto_analyze=None,
                 auto_analyze_drift=None):
        self.buffer_pool = BufferPool(buffer_pool_pages)
        self.catalog = Catalog(self.buffer_pool)
        self.catalog.txn_source = self.current_transaction
        self.functions = ex.default_functions()
        self.locks = LockManager(lock_timeout)
        self.planner_options = validate_planner_options(planner_options)
        #: ANALYZE statistics (see repro.relational.stats); consulted by
        #: every planner when REPRO_COSTED is on
        self.statistics = StatisticsRegistry()
        #: auto-ANALYZE knobs (REPRO_AUTO_ANALYZE / _DRIFT; off by default)
        self.auto_analyze = resolve_auto_analyze(auto_analyze)
        self.auto_analyze_drift = resolve_auto_analyze_drift(
            auto_analyze_drift
        )
        self.auto_analyzed = 0  # guarded-by: _txn_guard
        self._local = threading.local()
        self.statements_executed = 0  # guarded-by: _txn_guard
        #: monotonic counter bumped by every DDL statement; prepared plans
        #: cached under an older epoch are invalid.
        self.schema_epoch = 0
        self.plan_cache = LRUCache(
            resolve_capacity(plan_cache_size), metrics_prefix="plan_cache"
        )
        #: when True, every SELECT is executed with operator instrumentation
        #: and the resulting :class:`~repro.obs.stats.ExecutionStats` lands in
        #: :attr:`last_statement_stats` (EXPLAIN ANALYZE sets this per call).
        self.collect_stats = False
        #: durable key/value side-store (see :meth:`put_meta`); snapshotted
        #: at checkpoints and carried through recovery
        self.meta = {}
        self.path = path
        self.wal = None
        self._txn_guard = threading.Lock()
        self._next_txid = 1  # guarded-by: _txn_guard
        self._active_txns = set()  # guarded-by: _txn_guard
        self._wal_checkpoint_every = 0
        if path is not None:
            self._open_durable(
                path, wal_fsync, wal_group_window_ms, wal_checkpoint_every
            )

    def _open_durable(self, path, wal_fsync, wal_group_window_ms,
                      wal_checkpoint_every):
        from repro.relational import recovery
        from repro.relational.wal import WriteAheadLog, resolve_checkpoint_every

        os.makedirs(path, exist_ok=True)
        self._wal_checkpoint_every = resolve_checkpoint_every(
            wal_checkpoint_every
        )
        # The WAL object exists (closed) during recovery so replay counters
        # have somewhere to land; logging only starts once it is opened.
        self.wal = WriteAheadLog(
            recovery.wal_path(path), wal_fsync, wal_group_window_ms
        )
        valid_end, next_lsn = recovery.recover(self, path)
        self.wal.open(append_at=valid_end, next_lsn=next_lsn)
        self.catalog.wal = self.wal
        for table in self.catalog._tables.values():
            table.wal = self.wal
            table.txn_source = self.catalog.txn_source
        # ANALYZE statistics ride the meta channel: reload them (validated
        # against the recovered catalog) so the cost model survives restarts
        payload = self.meta.get(META_STATS_KEY)
        if payload:
            self.statistics.load_meta(self, payload)
        # Belt and braces: a crash mid-analytics can leave scratch CREATEs
        # in the replayed log even though snapshots exclude them.  Drop any
        # survivors — scratch state is per-run and never meaningful after
        # recovery.  (The checkpoint below truncates the log, so the drops
        # need no WAL records of their own.)
        for name in list(self.catalog.table_names()):
            if name.startswith(SCRATCH_TABLE_PREFIX):
                with self.wal.pause():
                    self.execute(f"DROP TABLE IF EXISTS {name}")
        # Checkpoint immediately: the recovered state becomes the snapshot
        # and the (possibly long, possibly torn) log is truncated, so txids
        # from the previous incarnation can never collide with ours.
        self.checkpoint()

    # Per-thread observability fields: concurrent sessions (one worker
    # thread each, see repro.server) must not read each other's results.
    @property
    def last_statement_cache_hit(self):
        """Did this thread's most recent execute() reuse a prepared
        statement?  (observability; see QueryStats.plan_cache_hit)"""
        return getattr(self._local, "cache_hit", False)

    @last_statement_cache_hit.setter
    def last_statement_cache_hit(self, value):
        self._local.cache_hit = value

    @property
    def last_statement_stats(self):
        """This thread's most recent instrumented ExecutionStats."""
        return getattr(self._local, "statement_stats", None)

    @last_statement_stats.setter
    def last_statement_stats(self, value):
        self._local.statement_stats = value

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register_function(self, name, fn):
        """Register a scalar SQL function (UDF)."""
        self.functions[name.lower()] = fn

    def execute(self, sql, params=None):
        """Parse (or reuse a prepared statement), lock and run one SQL
        statement.  ``params`` binds positional ``?`` placeholders for this
        execution only; the cached AST is never mutated."""
        prepared = self._prepare(sql)
        statement = prepared.statement
        with self._txn_guard:
            self.statements_executed += 1
        self._local.sql = sql.strip()
        read_tables = prepared.read_tables
        write_tables = prepared.write_tables
        transaction = self.current_transaction()
        if transaction is not None:
            # skip locks the transaction already holds; upgrade read -> write
            # by releasing the read first (brief window, documented)
            held = transaction.held
            writes = {name for name in write_tables if held.get(name) != "w"}
            for name in writes:
                if held.get(name) == "r":
                    transaction.release_read(name)
            reads = {name for name in read_tables if name not in held} - writes
            token = self.locks.acquire(reads, writes)
            transaction.lock_tokens.append(token)
            held.update({name: "w" for name in writes})
            held.update({name: "r" for name in reads})
            return self._dispatch(statement, transaction, params)
        token = self.locks.acquire(read_tables, write_tables)
        try:
            # the commit point below covers every statement kind that
            # appends; the only dispatches skipping it (SELECT/EXPLAIN)
            # log nothing
            result = self._dispatch(statement, transaction, params)  # reprolint: disable=wal-commit-reachability -- commit point below
        finally:
            LockManager.release(token)
        # Autocommit: the statement is the transaction, so its WAL records
        # reach the commit point here (after the locks are gone — group
        # commit may fsync, and a checkpoint may want those same locks).
        wal = self.wal
        if (
            wal is not None
            and not wal.closed
            and not isinstance(
                statement, (ast.SelectStatement, ast.ExplainStatement)
            )
        ):
            wal.commit_point()
            self._maybe_auto_checkpoint()
        if (
            self.auto_analyze
            and write_tables
            and not getattr(self._local, "auto_analyzing", False)
        ):
            self.maybe_auto_analyze(write_tables)
        return result

    def _prepare(self, sql):
        """Parse + lock-analyze *sql*, going through the plan cache.

        Entries are keyed by the normalized statement text and validated
        against the current schema epoch, so any DDL since insertion forces
        a re-parse (and re-derivation of lock sets against the new catalog).
        """
        key = sql.strip()
        epoch = self.schema_epoch
        prepared = self.plan_cache.get(key, epoch=epoch)
        if prepared is not None:
            self.last_statement_cache_hit = True
            return prepared
        self.last_statement_cache_hit = False
        statement = parse_statement(sql)
        read_tables, write_tables = self._lock_sets(statement)
        prepared = PreparedStatement(statement, read_tables, write_tables)
        self.plan_cache.put(key, prepared, epoch=epoch)
        return prepared

    def _planner(self, params=None):
        """The one place planners are built (plan-cache re-bind hook)."""
        return Planner(self, Runtime(self), params=params)

    def planner_option(self, name, default=None):
        """Validated read of one planner option (see PLANNER_OPTION_SPECS)."""
        if name not in PLANNER_OPTION_SPECS:
            known = ", ".join(sorted(PLANNER_OPTION_SPECS))
            raise ValueError(
                f"unknown planner option {name!r} (known: {known})"
            )
        return self.planner_options.get(name, default)

    def _bump_schema_epoch(self):
        """Invalidate every compiled plan after a schema change."""
        self.schema_epoch += 1
        self.plan_cache.invalidate_all()

    def _ddl_epoch(self, table_name):
        """Bump the schema epoch unless the DDL touched a scratch table.

        Scratch tables (analytics temporaries under
        ``SCRATCH_TABLE_PREFIX``) use process-unique names and are
        created strictly before any statement references them, so their
        appearance or disappearance cannot poison a cached plan for any
        other statement.  Skipping the bump keeps one pagerank run (a
        dozen scratch CREATE/DROPs) from invalidating every compiled
        plan and every ANALYZE statistic in the store.
        """
        if not table_name.lower().startswith(SCRATCH_TABLE_PREFIX):
            self._bump_schema_epoch()

    def transaction(self):
        """Context manager: commit on clean exit, rollback on exception."""
        database = self

        class _TransactionContext:
            def __enter__(self):
                if database.current_transaction() is not None:
                    raise TransactionError("nested transactions are not supported")
                self.txn = Transaction(database, database._begin_txid())
                database._local.txn = self.txn
                if database.wal is not None:
                    database.wal.set_txid(self.txn.txid)
                return self.txn

            def __exit__(self, exc_type, exc, tb):
                database._local.txn = None
                if exc_type is None:
                    self.txn.commit()
                else:
                    self.txn.rollback()
                return False

        return _TransactionContext()

    def current_transaction(self):
        return getattr(self._local, "txn", None)

    # ------------------------------------------------------------------
    # durability (no-ops for in-memory databases)
    # ------------------------------------------------------------------
    def _begin_txid(self):
        if self.wal is None:
            return 0
        with self._txn_guard:
            txid = self._next_txid
            self._next_txid += 1
            self._active_txns.add(txid)
        return txid

    def _transaction_finished(self, txid):
        if not txid:
            return
        with self._txn_guard:
            self._active_txns.discard(txid)
        self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self):
        wal = self.wal
        if (
            wal is not None
            and not wal.closed
            and self._wal_checkpoint_every
            and wal.records_since_checkpoint >= self._wal_checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self):
        """Snapshot the catalog and truncate the log (durable mode only).

        Checkpoints are quiescent: the call is skipped (returns ``False``)
        while any explicit transaction is active, since the snapshot must
        not contain uncommitted rows.  Otherwise every table is
        write-locked, dirty pages are flushed, the snapshot is atomically
        replaced and the WAL resets.  Returns ``True`` when taken.
        """
        if self.wal is None or self.wal.closed:
            return False
        with self._txn_guard:
            if self._active_txns:
                return False
        from repro.relational import recovery

        token = self.locks.acquire((), self.catalog.table_names())
        try:
            self.wal.sync()
            recovery.write_snapshot(self, self.path)
            self.wal.reset(self.wal.last_lsn)
        finally:
            LockManager.release(token)
        return True

    def put_meta(self, key, value):
        """Durably store a key/value pair (non-transactional).

        *value* must be picklable.  Meta writes are logged under txid 0,
        so they survive a crash regardless of transaction outcomes.
        """
        wal = self.wal
        if wal is not None and not wal.closed:
            wal.append("meta", (key, value), txid=0)
            wal.commit_point()
        self.meta[key] = value

    def get_meta(self, key, default=None):
        return self.meta.get(key, default)

    def wal_stats(self):
        """WAL counters, or ``None`` for an in-memory database."""
        return self.wal.stats() if self.wal is not None else None

    def close(self):
        """Checkpoint (if quiescent) and close the WAL.  Idempotent; a
        no-op for in-memory databases."""
        if self.wal is None or self.wal.closed:
            return
        self.checkpoint()
        self.wal.close()

    def table(self, name):
        """Direct access to a heap table (bulk loaders bypass SQL)."""
        return self.catalog.get_table(name)

    def storage_bytes(self):
        """Approximate total serialized size of all tables."""
        self.buffer_pool.clear()
        return sum(
            self.catalog.get_table(name).storage_bytes()
            for name in self.catalog.table_names()
        )

    # ------------------------------------------------------------------
    # lock analysis
    # ------------------------------------------------------------------
    def _lock_sets(self, statement):
        reads = set()
        writes = set()
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.statement
        if isinstance(statement, ast.SelectStatement):
            self._collect_tables(statement, reads)
        elif isinstance(statement, ast.InsertStatement):
            writes.add(statement.table.lower())
            if statement.query is not None:
                self._collect_tables(statement.query, reads)
        elif isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
            writes.add(statement.table.lower())
        elif isinstance(statement, ast.AnalyzeStatement):
            if statement.table is not None:
                reads.add(statement.table.lower())
            else:
                reads.update(self.catalog.table_names())
        elif isinstance(
            statement,
            (ast.CreateTableStatement, ast.CreateIndexStatement,
             ast.DropTableStatement),
        ):
            if isinstance(statement, ast.CreateIndexStatement):
                writes.add(statement.table.lower())
        # only lock existing base tables (CTE names are statement-local)
        reads = {name for name in reads if self.catalog.has_table(name)}
        writes = {name for name in writes if self.catalog.has_table(name)}
        return reads, writes

    def _collect_tables(self, statement, out):
        cte_names = set()

        def visit_query(node):
            if isinstance(node, ast.SetOp):
                visit_query(node.left)
                visit_query(node.right)
                return
            if not isinstance(node, ast.Select):
                return
            for from_item in node.from_items:
                visit_from(from_item)
            for expression in self._statement_expressions(node):
                visit_expression(expression)

        def visit_from(item):
            if isinstance(item, ast.TableRef):
                if item.name.lower() not in cte_names:
                    out.add(item.name.lower())
            elif isinstance(item, ast.Join):
                visit_from(item.left)
                visit_from(item.right)
            elif isinstance(item, ast.SubquerySource):
                visit_query(item.query)

        def visit_expression(expression):
            if expression is None:
                return
            for node in expression.walk():
                plan = getattr(node, "plan", None)
                if isinstance(plan, ast.SelectStatement):
                    visit_statement(plan)

        def visit_statement(stmt):
            for cte in stmt.ctes:
                cte_names.add(cte.name.lower())
                visit_query(cte.query)
            visit_query(stmt.body)

        visit_statement(statement)

    @staticmethod
    def _statement_expressions(select):
        for item in select.items:
            if item.expr is not None:
                yield item.expr
        if select.where is not None:
            yield select.where
        if select.having is not None:
            yield select.having
        yield from select.group_by

    # ------------------------------------------------------------------
    # statement dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, statement, transaction, params=None):
        if isinstance(statement, ast.ExplainStatement):
            return self._run_explain(statement, params)
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement, params)
        if isinstance(statement, ast.InsertStatement):
            return self._run_insert(statement, transaction, params)
        if isinstance(statement, ast.UpdateStatement):
            return self._run_update(statement, transaction, params)
        if isinstance(statement, ast.DeleteStatement):
            return self._run_delete(statement, transaction, params)
        if isinstance(statement, ast.CreateTableStatement):
            return self._run_create_table(statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._run_create_index(statement)
        if isinstance(statement, ast.DropTableStatement):
            return self._run_drop_table(statement)
        if isinstance(statement, ast.AnalyzeStatement):
            return self._run_analyze(statement)
        raise BindError(f"cannot execute {type(statement).__name__}")

    def _run_analyze(self, statement):
        """``ANALYZE [table]``: collect statistics, persist via WAL meta."""
        if statement.table is not None:
            name = statement.table.lower()
            if not self.catalog.has_table(name):
                raise BindError(f"unknown table {statement.table!r}")
            names = [name]
        else:
            names = sorted(
                name for name in self.catalog.table_names()
                if not name.startswith(SCRATCH_TABLE_PREFIX)
            )
        rows = []
        for name in names:
            entry = self.statistics.analyze(
                self.catalog.get_table(name), self.schema_epoch
            )
            rows.append((name, entry.row_count, entry.sample_size))
        self.put_meta(META_STATS_KEY, self.statistics.to_meta())
        return ResultSet(
            ["table_name", "row_count", "sample_size"], rows,
            rowcount=len(rows),
        )

    def maybe_auto_analyze(self, tables=None):
        """Re-ANALYZE tables whose statistics drifted past the threshold.

        Auto-ANALYZE is off by default; it is enabled per database
        (``auto_analyze=True``) or globally (``REPRO_AUTO_ANALYZE=1``).
        When on, every autocommit write statement checks the tables it
        touched: a table is re-analyzed when its recorded statistics have
        seen ``mutation_drift`` of at least ``auto_analyze_drift``
        (``REPRO_AUTO_ANALYZE_DRIFT``, default 0.5) — or when it has no
        valid statistics yet and has grown past ``AUTO_ANALYZE_MIN_ROWS``
        live rows.  Scratch tables and statements inside an explicit
        transaction never trigger it.  Returns the list of table names
        analyzed.
        """
        if not self.auto_analyze:
            return []
        if getattr(self._local, "auto_analyzing", False):
            return []
        if self.current_transaction() is not None:
            return []
        names = tables if tables is not None else self.catalog.table_names()
        analyzed = []
        self._local.auto_analyzing = True
        try:
            for name in sorted(names):
                name = name.lower()
                if name.startswith(SCRATCH_TABLE_PREFIX):
                    continue
                if not self.catalog.has_table(name):
                    continue
                table = self.catalog.get_table(name)
                entry = self.statistics.get(name, self.schema_epoch)
                if entry is None:
                    if table.live_rows < AUTO_ANALYZE_MIN_ROWS:
                        continue
                elif entry.mutation_drift(table) < self.auto_analyze_drift:
                    continue
                self.execute(f"ANALYZE {name}")
                analyzed.append(name)
        finally:
            self._local.auto_analyzing = False
        if analyzed:
            with self._txn_guard:
                self.auto_analyzed += len(analyzed)
        return analyzed

    def _run_select(self, statement, params=None):
        if self.collect_stats:
            __, rows, columns, __stats = self._run_instrumented(
                statement, params
            )
            return ResultSet(columns, rows)
        plan = self._planner(params).plan_select_statement(statement)
        columns = [name for __, name in plan.columns]
        return ResultSet(columns, _materialize_rows(plan))

    def _run_instrumented(self, statement, params=None, sql_text=None):
        """Plan and execute a SELECT with full observability.

        Returns ``(plan, rows, columns, stats)``.  CTE materialization
        happens during planning in this engine, so the planner is handed
        the stats object *before* planning — each CTE's sub-plan is
        instrumented and recorded in ``stats.cte_plans`` as it runs.
        Engine metrics are force-enabled for the duration so index-probe
        and lock-wait counters are populated even when the global registry
        is off.
        """
        stats = ExecutionStats(sql_text)
        pool = self.buffer_pool
        was_enabled = ENGINE_METRICS.enabled
        ENGINE_METRICS.enabled = True
        hits0, misses0, evictions0 = pool.hits, pool.misses, pool.evictions
        probes0 = ENGINE_METRICS.value("index.probes")
        ranges0 = ENGINE_METRICS.value("index.range_scans")
        waits0 = ENGINE_METRICS.value("lock.wait_seconds")
        start = perf_counter()
        try:
            planner = self._planner(params)
            planner.stats = stats
            plan = planner.plan_select_statement(statement)
            instrument_plan(plan, stats)
            rows = _materialize_rows(plan)
        finally:
            ENGINE_METRICS.enabled = was_enabled
        stats.elapsed_s = perf_counter() - start
        stats.rows_returned = len(rows)
        stats.page_hits = pool.hits - hits0
        stats.page_misses = pool.misses - misses0
        stats.page_evictions = pool.evictions - evictions0
        stats.index_probes = ENGINE_METRICS.value("index.probes") - probes0
        stats.index_range_scans = (
            ENGINE_METRICS.value("index.range_scans") - ranges0
        )
        stats.lock_wait_s = ENGINE_METRICS.value("lock.wait_seconds") - waits0
        stats.session_id = obs_context.current_session_id()
        stats.connection = obs_context.current_connection()
        self.last_statement_stats = stats
        columns = [name for __, name in plan.columns]
        return plan, rows, columns, stats

    def _run_explain(self, statement, params=None):
        inner = statement.statement
        if not isinstance(inner, ast.SelectStatement):
            raise BindError(
                "EXPLAIN ANALYZE supports SELECT statements only"
                if statement.analyze
                else "EXPLAIN supports SELECT statements only"
            )
        if not statement.analyze:
            plan = self._planner(params).plan_select_statement(inner)
            text = op.explain_plan(plan)
            return ResultSet(["plan"], [(line,) for line in text.splitlines()])
        plan, __rows, __columns, stats = self._run_instrumented(inner, params)
        lines = []
        for cte_name, cte_plan in stats.cte_plans:
            lines.append(f"CTE {cte_name}:")
            lines.extend(
                render_analyzed_plan(cte_plan, stats, 1).splitlines()
            )
        lines.extend(render_analyzed_plan(plan, stats).splitlines())
        lines.append(
            f"Execution: {stats.rows_returned} rows in "
            f"{stats.elapsed_s * 1000:.3f}ms"
        )
        lines.append(
            f"Buffer pool: {stats.page_hits} hits, {stats.page_misses} "
            f"misses, {stats.page_evictions} evictions"
        )
        lines.append(
            f"Indexes: {stats.index_probes} probes, "
            f"{stats.index_range_scans} range scans"
        )
        lines.append(f"Locks: {stats.lock_wait_s * 1000:.3f}ms wait")
        median = stats.median_q_error()
        if median is not None:
            lines.append(
                f"Estimates: median q_err {median:.2f} over "
                f"{len(stats.operator_q_errors())} operators"
            )
        if stats.session_id is not None:
            peer = f" ({stats.connection})" if stats.connection else ""
            lines.append(f"Session: {stats.session_id}{peer}")
        cache = self.plan_cache.stats()
        lines.append(
            f"Plan cache: "
            f"{'hit' if self.last_statement_cache_hit else 'miss'} "
            f"({cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['invalidations']} invalidations, "
            f"{cache['size']} entries)"
        )
        return ResultSet(["plan"], [(line,) for line in lines])

    def _run_insert(self, statement, transaction, params=None):
        table = self.catalog.get_table(statement.table)
        planner = self._planner(params)
        rows_to_insert = []
        if statement.rows is not None:
            for row_exprs in statement.rows:
                rows_to_insert.append(
                    [planner.const_value(expression) for expression in row_exprs]
                )
        else:
            result = self._run_select(statement.query, params)
            rows_to_insert.extend(list(row) for row in result.rows)
        count = 0
        for values in rows_to_insert:
            full = self._arrange_insert_values(table, statement.columns, values)
            # undo is recorded by the table itself (see HeapTable.insert)
            table.insert(full)
            count += 1
        return ResultSet(rowcount=count)

    @staticmethod
    def _arrange_insert_values(table, columns, values):
        if columns is None:
            return values
        positions = {name.lower(): i for i, name in enumerate(columns)}
        full = []
        for column in table.schema.columns:
            if column.name in positions:
                full.append(values[positions[column.name]])
            else:
                full.append(None)
        if len(positions) != len(values):
            raise BindError(
                f"INSERT lists {len(positions)} columns but {len(values)} values"
            )
        return full

    def _where_matches(self, table, where, params=None):
        """RIDs of rows matching *where* (index-assisted when possible)."""
        planner = self._planner(params)
        columns = [(table.name, name) for name in table.schema.column_names]
        if where is None:
            return [(rid, row) for rid, row in table.scan()]
        # try a single-conjunct index probe for the common point lookup
        ctx = planner._ctx(columns)
        predicate = where.compile(ctx)
        from repro.relational.planner import split_conjuncts

        for conjunct in split_conjuncts(where):
            if isinstance(conjunct, ex.Comparison) and conjunct.op == "=":
                for key_side, value_side in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if value_side.references() or not key_side.references():
                        continue
                    try:
                        index = table.find_index(key_side.fingerprint())
                    except NotImplementedError:
                        continue
                    if index is None:
                        continue
                    key = planner.const_value(value_side)
                    matches = []
                    for rid in index.lookup(key):
                        row = table.get(rid)
                        if row is not None and predicate(row):
                            matches.append((rid, row))
                    return matches
        return [(rid, row) for rid, row in table.scan() if predicate(row)]

    def _run_update(self, statement, transaction, params=None):
        table = self.catalog.get_table(statement.table)
        matches = self._where_matches(table, statement.where, params)
        planner = self._planner(params)
        columns = [(table.name, name) for name in table.schema.column_names]
        ctx = planner._ctx(columns)
        assignment_fns = [
            (table.schema.position(column), expression.compile(ctx))
            for column, expression in statement.assignments
        ]
        count = 0
        for rid, row in matches:
            new_row = list(row)
            for position, fn in assignment_fns:
                new_row[position] = fn(row)
            if table.update(rid, new_row) is not None:
                count += 1
        return ResultSet(rowcount=count)

    def _run_delete(self, statement, transaction, params=None):
        table = self.catalog.get_table(statement.table)
        matches = self._where_matches(table, statement.where, params)
        count = 0
        for rid, __row in matches:
            if table.delete(rid) is not None:
                count += 1
        return ResultSet(rowcount=count)

    def _run_create_table(self, statement):
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return ResultSet()
        columns = [
            Column(definition.name, ColumnType.from_name(definition.type_name))
            for definition in statement.columns
        ]
        schema = TableSchema(statement.name, columns, statement.primary_key)
        table = self.catalog.create_table(schema)
        if schema.primary_key is not None:
            self._create_pk_index(table, schema.primary_key)
        self._ddl_epoch(schema.name)
        self._log_ddl()
        return ResultSet()

    def _create_pk_index(self, table, column_name, populate=False):
        position = table.schema.position(column_name)
        fingerprint = ex.ColumnRef(None, column_name).fingerprint()
        index = HashIndex(
            f"{table.name}_pk",
            table.name,
            lambda row, _p=position: row[_p],
            fingerprint,
            unique=True,
        )
        table.attach_index(index, populate=populate)

    def _log_ddl(self):
        """Append the statement text of a successful DDL to the WAL."""
        wal = self.wal
        if wal is not None and wal.active:
            sql = getattr(self._local, "sql", None)
            if sql:
                wal.append("ddl", sql, txid=0)

    def _run_create_index(self, statement):
        table = self.catalog.get_table(statement.table)
        columns = [(None, name) for name in table.schema.column_names]
        resolver = op.make_resolver(columns)
        ctx = ex.CompileContext(resolver, self.functions)
        if len(statement.expressions) == 1:
            expression = statement.expressions[0]
            key_function = expression.compile(ctx)
            fingerprint = expression.fingerprint()
        else:
            fns = [expression.compile(ctx) for expression in statement.expressions]
            key_function = lambda row, _fns=tuple(fns): tuple(fn(row) for fn in _fns)
            fingerprint = ",".join(
                expression.fingerprint() for expression in statement.expressions
            )
        if statement.using == "sorted":
            index = SortedIndex(
                statement.name, table.name, key_function, fingerprint,
                statement.unique,
            )
        else:
            index = HashIndex(
                statement.name, table.name, key_function, fingerprint,
                statement.unique,
            )
        table.attach_index(index)
        # remember the statement so checkpoint snapshots can rebuild the
        # index (its key function is a compiled closure, never serialized)
        index.ddl = getattr(self._local, "sql", None)
        self._ddl_epoch(table.name)
        self._log_ddl()
        return ResultSet()

    def _run_drop_table(self, statement):
        dropped = self.catalog.drop_table(statement.name)
        if not dropped and not statement.if_exists:
            raise BindError(f"unknown table {statement.name!r}")
        if dropped:
            self.statistics.forget(statement.name.lower())
            self._ddl_epoch(statement.name)
            self._log_ddl()
        return ResultSet()
