"""Crash recovery: catalog snapshots plus two-pass log replay.

A durable database directory holds two files::

    <path>/snapshot.pkl   last checkpoint: catalog + all table pages
    <path>/wal.log        records appended since that checkpoint

**Checkpoint protocol** (see :meth:`repro.relational.database.Database.
checkpoint`): quiesce (no active transactions, write locks on every
table), write back dirty pages, serialize the catalog state to
``snapshot.pkl.tmp``, fsync, atomically rename over the old snapshot,
fsync the directory, then truncate the log and stamp a ``checkpoint``
record.  A crash between the rename and the truncate is harmless: the
stale log records carry LSNs at or below the snapshot's ``last_lsn`` and
are skipped on replay.

**Recovery phases** (:func:`recover`, run by ``Database(path=...)``):

1. *Snapshot load* — rebuild every table from its pickled schema and page
   blobs, re-attach the primary-key index, and re-execute the stored
   ``CREATE INDEX`` DDL (index structures are rebuilt, never serialized).
2. *Log analysis* — scan the log, stopping at the first torn or corrupt
   frame (the discarded tail can only be the unsynced suffix of the
   crash); collect the set of transaction ids with a ``commit`` record.
3. *Redo* — replay, in log order, every record above the snapshot LSN
   whose transaction committed (autocommit records — txid 0 — always
   qualify).  Ops of loser transactions are skipped wholesale, so no undo
   pass is needed; their row slots stay tombstoned exactly as RID-stable
   heap tables require.

Replay applies physical images at their original RIDs
(:meth:`~repro.relational.table.HeapTable.apply_insert` and friends) so
RIDs embedded in later records stay valid even when loser slots are
skipped.
"""

from __future__ import annotations

import os
import pickle

from repro.relational.schema import SCRATCH_TABLE_PREFIX, TableSchema
from repro.relational.table import HeapTable
from repro.relational.wal import scan_log

SNAPSHOT_NAME = "snapshot.pkl"
WAL_NAME = "wal.log"
SNAPSHOT_FORMAT = 1


def snapshot_path(directory):
    return os.path.join(directory, SNAPSHOT_NAME)


def wal_path(directory):
    return os.path.join(directory, WAL_NAME)


# ----------------------------------------------------------------------
# checkpoint snapshot
# ----------------------------------------------------------------------
def write_snapshot(database, directory):
    """Serialize the full catalog state atomically to ``snapshot.pkl``."""
    database.buffer_pool.flush_all()
    tables = []
    for table in database.catalog._tables.values():
        if table.schema.name.startswith(SCRATCH_TABLE_PREFIX):
            continue  # analytics scratch state never reaches a snapshot
        tables.append(
            {
                "schema": table.schema.describe(),
                "blobs": list(table._blobs),
                "page_count": table._page_count,
                "last_page_size": table._last_page_size,
                "live_rows": table.live_rows,
                "index_ddl": [
                    index.ddl
                    for index in table.indexes.values()
                    if index.ddl is not None
                ],
            }
        )
    state = {
        "format": SNAPSHOT_FORMAT,
        "last_lsn": database.wal.last_lsn,
        "schema_epoch": database.schema_epoch,
        "meta": dict(database.meta),
        "tables": tables,
    }
    final = snapshot_path(directory)
    tmp = final + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(state, fh, protocol=5)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    directory_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def load_snapshot(database, directory):
    """Rebuild the catalog from the snapshot; returns its ``last_lsn``
    (0 when no snapshot exists)."""
    path = snapshot_path(directory)
    if not os.path.exists(path):
        return 0
    with open(path, "rb") as fh:
        state = pickle.load(fh)
    pool = database.buffer_pool
    secondary_ddl = []
    for entry in state["tables"]:
        schema = TableSchema.from_description(entry["schema"])
        table = HeapTable(schema, pool)
        table._blobs = list(entry["blobs"])
        table._page_count = entry["page_count"]
        table._last_page_size = entry["last_page_size"]
        table.live_rows = entry["live_rows"]
        database.catalog._tables[schema.name] = table
        if schema.primary_key is not None:
            database._create_pk_index(table, schema.primary_key, populate=True)
        secondary_ddl.extend(entry["index_ddl"])
    # index *structures* are never serialized; re-run their DDL (the WAL is
    # closed at this point, so nothing is re-logged)
    for ddl in secondary_ddl:
        database.execute(ddl)
    database.meta.update(state["meta"])
    database.schema_epoch = max(database.schema_epoch, state["schema_epoch"])
    return state["last_lsn"]


# ----------------------------------------------------------------------
# log replay
# ----------------------------------------------------------------------
def replay_records(database, records, start_lsn):
    """Redo every surviving record above *start_lsn*; returns the count
    applied.  Pass 1 collects committed txids; pass 2 applies in order."""
    committed = {
        txid for __, kind, txid, __data, __end in records if kind == "commit"
    }
    applied = 0
    for lsn, kind, txid, data, __end in records:
        if lsn <= start_lsn:
            continue
        if kind in ("commit", "abort", "checkpoint"):
            continue
        if kind in ("insert", "update", "delete") and txid != 0 \
                and txid not in committed:
            continue  # loser: never applied, slot stays tombstoned
        if kind == "ddl":
            database.execute(data)
        elif kind == "meta":
            key, value = data
            database.meta[key] = value
        elif kind == "insert":
            table_name, rid, row = data
            database.catalog.get_table(table_name).apply_insert(rid, row)
        elif kind == "update":
            table_name, rid, new_row, __old_row = data
            database.catalog.get_table(table_name).apply_update(rid, new_row)
        elif kind == "delete":
            table_name, rid, __old_row = data
            database.catalog.get_table(table_name).apply_delete(rid)
        else:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        applied += 1
    return applied


def recover(database, directory):
    """Run full recovery for *directory* against an empty *database*.

    Returns ``(valid_end, next_lsn)``: the byte offset the (possibly torn)
    log should be truncated to before appending resumes, and the next LSN
    to allocate.  Counters land on ``database.wal``.
    """
    start_lsn = load_snapshot(database, directory)
    records, valid_end, torn = scan_log(wal_path(directory))
    applied = replay_records(database, records, start_lsn)
    wal = database.wal
    wal.note_replayed(applied)
    if torn is not None:
        wal.torn_dropped += 1
    max_lsn = max(
        [start_lsn] + [lsn for lsn, *__ in records]
    )
    return valid_end, max_lsn + 1
