"""Exception hierarchy for the relational engine."""


class EngineError(Exception):
    """Base class for all errors raised by the relational engine."""


class SqlSyntaxError(EngineError):
    """Raised when SQL text cannot be tokenized or parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(EngineError):
    """Raised when a parsed statement references unknown tables or columns."""


class TypeMismatchError(EngineError):
    """Raised when an expression is applied to values of an unusable type."""


class ConstraintError(EngineError):
    """Raised when a uniqueness or primary-key constraint is violated."""


class CatalogError(EngineError):
    """Raised for duplicate/missing table or index definitions."""


class LockTimeoutError(EngineError):
    """Raised when a lock cannot be acquired within the configured timeout."""


class TransactionError(EngineError):
    """Raised for invalid transaction state transitions."""
