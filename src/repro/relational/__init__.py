"""A small, self-contained relational database engine.

This package is the substrate the SQLGraph store runs on.  It provides:

* paged row storage behind an LRU buffer pool (:mod:`repro.relational.pages`),
* heap tables with hash / sorted / expression indexes
  (:mod:`repro.relational.table`, :mod:`repro.relational.index`),
* an expression language with SQL three-valued logic and JSON support
  (:mod:`repro.relational.expressions`),
* a SQL dialect with CTEs (including ``WITH RECURSIVE``), joins, lateral
  ``TABLE(VALUES ...)`` unnesting, set operations, aggregates and DML
  (:mod:`repro.relational.sql`),
* a statistics-driven planner with predicate pushdown, index selection and
  greedy join ordering (:mod:`repro.relational.planner`),
* a :class:`~repro.relational.database.Database` facade with table-level
  reader/writer locking and undo-based transactions.

The public entry point is :class:`repro.relational.Database`::

    from repro.relational import Database

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b STRING)")
    db.execute("INSERT INTO t VALUES (?, ?)", [1, "x"])
    rows = db.execute("SELECT a, b FROM t WHERE a = ?", [1]).rows
"""

from repro.relational.database import Database, ResultSet
from repro.relational.errors import (
    BindError,
    ConstraintError,
    EngineError,
    LockTimeoutError,
    SqlSyntaxError,
)
from repro.relational.schema import ColumnType

__all__ = [
    "BindError",
    "ColumnType",
    "ConstraintError",
    "Database",
    "EngineError",
    "LockTimeoutError",
    "ResultSet",
    "SqlSyntaxError",
]
