"""Hand-written SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.errors import SqlSyntaxError

KEYWORDS = {
    "ALL", "ANALYZE", "AND", "ANY", "AS", "ASC", "BETWEEN", "BOOLEAN", "BY", "CASE",
    "CAST", "COUNT", "CREATE", "CROSS", "DELETE", "DESC", "DISTINCT", "DOUBLE",
    "DROP", "ELSE", "END", "ESCAPE", "EXCEPT", "EXISTS", "EXPLAIN", "FALSE", "FROM",
    "FULL", "GROUP", "HAVING", "IF", "IN", "INDEX", "INNER", "INSERT", "INT",
    "INTEGER", "INTERSECT", "INTO", "IS", "JOIN", "JSON", "KEY", "LEFT",
    "LIKE", "LIMIT", "NOT", "NULL", "OFFSET", "ON", "OR", "ORDER", "OUTER",
    "PRIMARY", "RECURSIVE", "RIGHT", "SELECT", "SET", "STRING", "TABLE",
    "TABLES", "THEN", "TRUE", "UNION", "UNIQUE", "UPDATE", "USING", "VALUES",
    "VARCHAR", "WHEN", "WHERE", "WITH",
}

# multi-char operators first so they win over single-char prefixes
OPERATORS = ["||", "<>", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*", "/",
             "%", "(", ")", ",", ".", ";", "?"]


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, STRING, NUMBER, OP, EOF
    value: str
    position: int


def tokenize(text):
    """Tokenize *text* into a list of tokens ending with an EOF token."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        if char == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if char == '"':
            end = text.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token("IDENT", text[i + 1 : end], end))
            i = end + 1
            continue
        if char.isdigit() or (char == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if char.isalpha() or char == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {char!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text, start):
    """Read a single-quoted string literal; '' is an escaped quote."""
    parts = []
    i = start + 1
    n = len(text)
    while i < n:
        char = text[i]
        if char == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(text, start):
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        char = text[i]
        if char.isdigit():
            i += 1
        elif char == "." and not seen_dot and not seen_exp:
            # do not swallow a trailing `.` that belongs to a qualified name
            if i + 1 < n and text[i + 1].isdigit():
                seen_dot = True
                i += 1
            else:
                break
        elif char in "eE" and not seen_exp and i + 1 < n and (
            text[i + 1].isdigit() or text[i + 1] in "+-"
        ):
            seen_exp = True
            i += 2
        else:
            break
    return text[start:i], i
