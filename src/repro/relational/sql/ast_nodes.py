"""Statement-level AST produced by the SQL parser.

Expression nodes come from :mod:`repro.relational.expressions`; this module
only defines the statement / query-block shapes the binder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SelectItem:
    """One entry of a SELECT list.

    ``star`` is True for ``*`` / ``alias.*`` (``qualifier`` set for the
    latter); otherwise ``expr`` holds the expression and ``alias`` its
    optional output name.
    """

    expr: object = None
    alias: str | None = None
    star: bool = False
    qualifier: str | None = None


@dataclass
class TableRef:
    name: str
    alias: str | None = None


@dataclass
class SubquerySource:
    query: object  # QueryExpr
    alias: str


@dataclass
class UnnestValues:
    """Lateral ``TABLE(VALUES (e1), (e2), ...) AS alias(col, ...)``.

    Each element of ``rows`` is a list of expressions; the expressions may
    reference columns of FROM items to the left (lateral semantics).
    """

    rows: list
    alias: str
    columns: list


@dataclass
class Join:
    left: object
    right: object
    kind: str  # 'inner' | 'left' | 'cross'
    condition: object | None = None


@dataclass
class Select:
    items: list
    from_items: list = field(default_factory=list)
    where: object | None = None
    group_by: list = field(default_factory=list)
    having: object | None = None
    distinct: bool = False


@dataclass
class SetOp:
    op: str  # 'union_all' | 'union' | 'intersect' | 'except'
    left: object
    right: object


@dataclass
class OrderItem:
    expr: object
    descending: bool = False


@dataclass
class CommonTableExpr:
    name: str
    columns: list | None
    query: object  # QueryExpr


@dataclass
class SelectStatement:
    ctes: list
    recursive: bool
    body: object  # Select or SetOp
    order_by: list = field(default_factory=list)
    limit: object | None = None
    offset: object | None = None


@dataclass
class InsertStatement:
    table: str
    columns: list | None
    rows: list | None  # list of expression lists
    query: object | None = None  # INSERT ... SELECT


@dataclass
class UpdateStatement:
    table: str
    assignments: list  # list of (column, expression)
    where: object | None = None


@dataclass
class DeleteStatement:
    table: str
    where: object | None = None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False


@dataclass
class CreateTableStatement:
    name: str
    columns: list
    primary_key: str | None = None
    if_not_exists: bool = False


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    expressions: list  # indexed expressions (ColumnRef or general)
    unique: bool = False
    using: str = "hash"  # 'hash' | 'sorted'


@dataclass
class DropTableStatement:
    name: str
    if_exists: bool = False


@dataclass
class AnalyzeStatement:
    """``ANALYZE [table]`` — collect optimizer statistics.

    ``table`` is ``None`` for the bare form, which analyzes every table.
    """

    table: str | None = None


@dataclass
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <statement>``.

    ``analyze`` executes the inner statement (discarding its result rows)
    and annotates the plan with actual row counts and timings.
    """

    statement: object
    analyze: bool = False
