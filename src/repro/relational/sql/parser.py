"""Recursive-descent parser for the engine's SQL dialect."""

from __future__ import annotations

from repro.relational import expressions as ex
from repro.relational.errors import SqlSyntaxError
from repro.relational.schema import ColumnType
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.lexer import tokenize


def parse_statement(text):
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_op(";")
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def current(self):
        return self._tokens[self._pos]

    def advance(self):
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def check_keyword(self, *words):
        token = self.current
        return token.kind == "KEYWORD" and token.value in words

    def accept_keyword(self, *words):
        if self.check_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word):
        token = self.accept_keyword(word)
        if token is None:
            raise SqlSyntaxError(
                f"expected {word}, found {self.current.value!r}", self.current.position
            )
        return token

    def check_op(self, op):
        token = self.current
        return token.kind == "OP" and token.value == op

    def accept_op(self, op):
        if self.check_op(op):
            return self.advance()
        return None

    def expect_op(self, op):
        token = self.accept_op(op)
        if token is None:
            raise SqlSyntaxError(
                f"expected {op!r}, found {self.current.value!r}", self.current.position
            )
        return token

    def expect_ident(self):
        token = self.current
        if token.kind == "IDENT":
            return self.advance().value
        # be permissive: non-reserved-sounding keywords may name columns
        if token.kind == "KEYWORD" and token.value in (
            "KEY", "INDEX", "COUNT", "TABLE", "TABLES", "USING",
        ):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected identifier, found {token.value!r}", token.position
        )

    def expect_eof(self):
        if self.current.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self):
        if self.accept_keyword("EXPLAIN"):
            analyze = self.accept_keyword("ANALYZE") is not None
            return ast.ExplainStatement(self.parse_statement(), analyze=analyze)
        if self.check_keyword("SELECT", "WITH") or self.check_op("("):
            return self.parse_select_statement()
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("CREATE"):
            return self.parse_create()
        if self.check_keyword("DROP"):
            return self.parse_drop()
        if self.accept_keyword("ANALYZE"):
            table = None
            if self.current.kind != "EOF" and not self.check_op(";"):
                table = self.expect_ident()
            return ast.AnalyzeStatement(table=table)
        raise SqlSyntaxError(
            f"cannot parse statement starting with {self.current.value!r}",
            self.current.position,
        )

    def parse_select_statement(self):
        ctes = []
        recursive = False
        if self.accept_keyword("WITH"):
            recursive = self.accept_keyword("RECURSIVE") is not None
            ctes.append(self.parse_cte())
            while self.accept_op(","):
                ctes.append(self.parse_cte())
        body = self.parse_query_expr()
        order_by = self.parse_order_by()
        limit = offset = None
        while True:
            if self.accept_keyword("LIMIT"):
                limit = self.parse_expression()
            elif self.accept_keyword("OFFSET"):
                offset = self.parse_expression()
            else:
                break
        return ast.SelectStatement(ctes, recursive, body, order_by, limit, offset)

    def parse_cte(self):
        name = self.expect_ident()
        columns = None
        if self.accept_op("("):
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("AS")
        self.expect_op("(")
        # a CTE body may carry its own ORDER BY / LIMIT / OFFSET (needed by
        # the Gremlin range pipe); parse a full statement when present
        query = self.parse_query_expr()
        if self.check_keyword("ORDER", "LIMIT", "OFFSET"):
            order_by = self.parse_order_by()
            limit = offset = None
            while True:
                if self.accept_keyword("LIMIT"):
                    limit = self.parse_expression()
                elif self.accept_keyword("OFFSET"):
                    offset = self.parse_expression()
                else:
                    break
            query = ast.SelectStatement([], False, query, order_by, limit, offset)
        self.expect_op(")")
        return ast.CommonTableExpr(name, columns, query)

    def parse_query_expr(self):
        left = self.parse_query_term()
        while True:
            if self.accept_keyword("UNION"):
                if self.accept_keyword("ALL"):
                    op = "union_all"
                else:
                    op = "union"
            elif self.accept_keyword("INTERSECT"):
                op = "intersect"
            elif self.accept_keyword("EXCEPT"):
                op = "except"
            else:
                return left
            right = self.parse_query_term()
            left = ast.SetOp(op, left, right)

    def parse_query_term(self):
        if self.accept_op("("):
            inner = self.parse_query_expr()
            self.expect_op(")")
            return inner
        return self.parse_select_core()

    def parse_select_core(self):
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        from_items = []
        if self.accept_keyword("FROM"):
            from_items.append(self.parse_from_item())
            while self.accept_op(","):
                from_items.append(self.parse_from_item())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_op(","):
                group_by.append(self.parse_expression())
            if self.accept_keyword("HAVING"):
                having = self.parse_expression()
        return ast.Select(items, from_items, where, group_by, having, distinct)

    def parse_select_item(self):
        if self.accept_op("*"):
            return ast.SelectItem(star=True)
        # alias.* — lookahead for IDENT . *
        token = self.current
        if (
            token.kind == "IDENT"
            and self._tokens[self._pos + 1].kind == "OP"
            and self._tokens[self._pos + 1].value == "."
            and self._tokens[self._pos + 2].kind == "OP"
            and self._tokens[self._pos + 2].value == "*"
        ):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(star=True, qualifier=qualifier)
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_from_item(self):
        left = self.parse_from_primary()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self.parse_from_primary()
                left = ast.Join(left, right, "cross")
            elif self.check_keyword("JOIN", "INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self.parse_from_primary()
                self.expect_keyword("ON")
                condition = self.parse_expression()
                left = ast.Join(left, right, "inner", condition)
            elif self.check_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                right = self.parse_from_primary()
                self.expect_keyword("ON")
                condition = self.parse_expression()
                left = ast.Join(left, right, "left", condition)
            else:
                return left

    def parse_from_primary(self):
        if self.check_keyword("TABLE", "TABLES"):
            return self.parse_unnest_values()
        if self.accept_op("("):
            query = self.parse_query_expr()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.SubquerySource(query, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def parse_unnest_values(self):
        self.advance()  # TABLE or TABLES
        self.expect_op("(")
        self.expect_keyword("VALUES")
        rows = [self.parse_values_row()]
        while self.accept_op(","):
            rows.append(self.parse_values_row())
        self.expect_op(")")
        self.accept_keyword("AS")
        alias = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        return ast.UnnestValues(rows, alias, columns)

    def parse_values_row(self):
        self.expect_op("(")
        exprs = [self.parse_expression()]
        while self.accept_op(","):
            exprs.append(self.parse_expression())
        self.expect_op(")")
        return exprs

    def parse_order_by(self):
        order_by = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expression()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr, descending))
                if not self.accept_op(","):
                    break
        return order_by

    # ------------------------------------------------------------------
    # DML / DDL
    # ------------------------------------------------------------------
    def parse_insert(self):
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns = None
        if self.accept_op("("):
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        if self.accept_keyword("VALUES"):
            rows = [self.parse_values_row()]
            while self.accept_op(","):
                rows.append(self.parse_values_row())
            return ast.InsertStatement(table, columns, rows, None)
        query = self.parse_select_statement()
        return ast.InsertStatement(table, columns, None, query)

    def parse_update(self):
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.UpdateStatement(table, assignments, where)

    def parse_delete(self):
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(table, where)

    def parse_create(self):
        self.expect_keyword("CREATE")
        unique = self.accept_keyword("UNIQUE") is not None
        if self.accept_keyword("TABLE"):
            if unique:
                raise SqlSyntaxError("UNIQUE applies to indexes, not tables")
            return self.parse_create_table()
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        raise SqlSyntaxError(
            f"expected TABLE or INDEX after CREATE, found {self.current.value!r}",
            self.current.position,
        )

    def parse_create_table(self):
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_op("(")
        columns = []
        primary_key = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_op("(")
                primary_key = self.expect_ident()
                self.expect_op(")")
            else:
                col_name = self.expect_ident()
                type_name = self.parse_type_name()
                is_pk = False
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    is_pk = True
                columns.append(ast.ColumnDef(col_name, type_name, is_pk))
                if is_pk:
                    primary_key = col_name
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateTableStatement(name, columns, primary_key, if_not_exists)

    def parse_type_name(self):
        token = self.current
        if token.kind in ("KEYWORD", "IDENT"):
            self.advance()
            type_name = token.value
            # swallow parenthesized lengths: VARCHAR(100)
            if self.accept_op("("):
                while not self.accept_op(")"):
                    self.advance()
            return type_name
        raise SqlSyntaxError(
            f"expected type name, found {token.value!r}", token.position
        )

    def parse_create_index(self, unique):
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_op("(")
        expressions = [self.parse_expression()]
        while self.accept_op(","):
            expressions.append(self.parse_expression())
        self.expect_op(")")
        using = "hash"
        if self.accept_keyword("USING"):
            using = self.expect_ident().lower()
            if using not in ("hash", "sorted", "btree"):
                raise SqlSyntaxError(f"unknown index method {using!r}")
            if using == "btree":
                using = "sorted"
        return ast.CreateIndexStatement(name, table, expressions, unique, using)

    def parse_drop(self):
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident()
        return ast.DropTableStatement(name, if_exists)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        items = [left]
        while self.accept_keyword("OR"):
            items.append(self.parse_and())
        if len(items) == 1:
            return left
        return ex.Or(items)

    def parse_and(self):
        left = self.parse_not()
        items = [left]
        while self.accept_keyword("AND"):
            items.append(self.parse_not())
        if len(items) == 1:
            return left
        return ex.And(items)

    def parse_not(self):
        if self.accept_keyword("NOT"):
            return ex.Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self):
        left = self.parse_additive()
        while True:
            if self.accept_keyword("IS"):
                negated = self.accept_keyword("NOT") is not None
                self.expect_keyword("NULL")
                left = ex.IsNull(left, negated)
                continue
            negated = False
            if self.check_keyword("NOT"):
                after = self._tokens[self._pos + 1]
                if after.kind == "KEYWORD" and after.value in ("LIKE", "IN", "BETWEEN"):
                    self.advance()
                    negated = True
                else:
                    return left
            if self.accept_keyword("LIKE"):
                pattern = self.parse_additive()
                left = ex.Like(left, pattern, negated)
                continue
            if self.accept_keyword("BETWEEN"):
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                between = ex.And(
                    [ex.Comparison(">=", left, low), ex.Comparison("<=", left, high)]
                )
                left = ex.Not(between) if negated else between
                continue
            if self.accept_keyword("IN"):
                self.expect_op("(")
                if self.check_keyword("SELECT", "WITH"):
                    query = self.parse_select_statement()
                    self.expect_op(")")
                    left = ex.InSubquery(left, query, negated)
                else:
                    items = [self.parse_expression()]
                    while self.accept_op(","):
                        items.append(self.parse_expression())
                    self.expect_op(")")
                    left = ex.InList(left, items, negated)
                continue
            op = None
            for candidate in ("=", "<>", "!=", "<=", ">=", "<", ">"):
                if self.check_op(candidate):
                    op = candidate
                    break
            if op is None:
                return left
            self.advance()
            right = self.parse_additive()
            left = ex.Comparison(op, left, right)

    def parse_additive(self):
        left = self.parse_multiplicative()
        while True:
            if self.accept_op("+"):
                left = ex.BinaryOp("+", left, self.parse_multiplicative())
            elif self.accept_op("-"):
                left = ex.BinaryOp("-", left, self.parse_multiplicative())
            elif self.accept_op("||"):
                left = ex.BinaryOp("||", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while True:
            if self.accept_op("*"):
                left = ex.BinaryOp("*", left, self.parse_unary())
            elif self.accept_op("/"):
                left = ex.BinaryOp("/", left, self.parse_unary())
            elif self.accept_op("%"):
                left = ex.BinaryOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self):
        if self.accept_op("-"):
            operand = self.parse_unary()
            if isinstance(operand, ex.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ex.Literal(-operand.value)
            return ex.BinaryOp("-", ex.Literal(0), operand)
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self):
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ex.Literal(float(text))
            return ex.Literal(int(text))
        if token.kind == "STRING":
            self.advance()
            return ex.Literal(token.value)
        if self.accept_op("?"):
            param = ex.Parameter(self._param_count)
            self._param_count += 1
            return param
        if self.accept_keyword("NULL"):
            return ex.Literal(None)
        if self.accept_keyword("TRUE"):
            return ex.Literal(True)
        if self.accept_keyword("FALSE"):
            return ex.Literal(False)
        if self.accept_keyword("CAST"):
            self.expect_op("(")
            operand = self.parse_expression()
            self.expect_keyword("AS")
            type_name = self.parse_type_name()
            self.expect_op(")")
            return ex.Cast(operand, ColumnType.from_name(type_name))
        if self.accept_keyword("CASE"):
            return self.parse_case()
        if self.accept_keyword("EXISTS"):
            self.expect_op("(")
            query = self.parse_select_statement()
            self.expect_op(")")
            return ex.Exists(query)
        if self.accept_keyword("COUNT"):
            return self.parse_function_call("count")
        if self.accept_op("("):
            if self.check_keyword("SELECT", "WITH"):
                query = self.parse_select_statement()
                self.expect_op(")")
                return ex.ScalarSubquery(query)
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if token.kind == "IDENT":
            name = self.advance().value
            if self.check_op("("):
                return self.parse_function_call(name)
            if self.accept_op("."):
                column = self.expect_ident()
                return ex.ColumnRef(name, column)
            return ex.ColumnRef(None, name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def parse_function_call(self, name):
        self.expect_op("(")
        distinct = self.accept_keyword("DISTINCT") is not None
        args = []
        star = False
        if self.accept_op("*"):
            star = True
        elif not self.check_op(")"):
            args.append(self.parse_expression())
            while self.accept_op(","):
                args.append(self.parse_expression())
        self.expect_op(")")
        call = ex.FuncCall(name, args)
        call.star = star
        call.distinct = distinct
        return call

    def parse_case(self):
        whens = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expression()
        self.expect_keyword("END")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        return ex.CaseWhen(whens, otherwise)
