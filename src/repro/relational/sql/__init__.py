"""SQL dialect: lexer, AST and parser.

The dialect covers what the Gremlin translator emits plus general-purpose
DML/DDL: ``WITH [RECURSIVE]`` CTEs, inner/left-outer joins, lateral
``TABLE(VALUES ...)`` unnesting, set operations, grouping and aggregates,
``ORDER BY``/``LIMIT``/``OFFSET``, ``INSERT``/``UPDATE``/``DELETE``,
``CREATE TABLE``/``CREATE INDEX``/``DROP TABLE`` and positional ``?``
parameters.
"""

from repro.relational.sql.parser import parse_statement

__all__ = ["parse_statement"]
